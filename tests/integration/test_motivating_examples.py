"""Integration tests: the paper's §2 motivating examples end to end.

These assert the paper's *qualitative* outcomes: the published snippet
appears, at the published rank or better (allowing a small slack where the
paper itself reports rank > 1), with correct structure and typing.
"""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.synthesizer import Synthesizer
from repro.core.typecheck import check_lnf_subsumed
from repro.javamodel.scenes import (drawing_layout_scene,
                                    sequence_of_streams_scene,
                                    tree_filter_scene)


@pytest.fixture(scope="module")
def figure1():
    scene = sequence_of_streams_scene()
    synthesizer = Synthesizer(scene.environment, subtypes=scene.subtypes)
    return scene, synthesizer, synthesizer.synthesize(scene.goal, n=5)


@pytest.fixture(scope="module")
def tree_filter():
    scene = tree_filter_scene()
    synthesizer = Synthesizer(scene.environment, subtypes=scene.subtypes)
    return scene, synthesizer, synthesizer.synthesize(scene.goal, n=5)


@pytest.fixture(scope="module")
def drawing_layout():
    scene = drawing_layout_scene()
    synthesizer = Synthesizer(scene.environment, subtypes=scene.subtypes)
    return scene, synthesizer, synthesizer.synthesize(scene.goal, n=10)


class TestSequenceOfStreams:
    """§2.1 / Figure 1."""

    def test_environment_size_matches_paper(self, figure1):
        scene, _, _ = figure1
        assert scene.initial_count == 3356

    def test_five_ranked_snippets_returned(self, figure1):
        _, _, result = figure1
        assert len(result.snippets) == 5
        assert [snippet.rank for snippet in result.snippets] == [1, 2, 3, 4, 5]

    def test_expected_snippet_in_top_five(self, figure1):
        _, _, result = figure1
        codes = [snippet.code for snippet in result.snippets]
        assert "new SequenceInputStream(body, sig)" in codes

    def test_all_snippets_type_check_with_subsumption(self, figure1):
        scene, synthesizer, result = figure1
        variable_types = scene.environment.variable_types()
        for snippet in result.snippets:
            check_lnf_subsumed(snippet.surface_term, scene.goal,
                               variable_types, scene.subtypes)

    def test_interactive_latency(self, figure1):
        # The paper reports < 250 ms; allow generous slack for Python.
        _, _, result = figure1
        assert result.total_seconds < 2.5


class TestTreeFilter:
    """§2.2 — higher-order function synthesis."""

    def test_expected_snippet_ranked_first(self, tree_filter):
        _, _, result = tree_filter
        top = result.snippets[0]
        # new FilterTypeTreeTraverser(var1 => p(var1))
        term = top.surface_term
        assert term.head.endswith("FilterTypeTreeTraverser.new(Tree -> Boolean)")
        (argument,) = term.arguments
        assert len(argument.binders) == 1
        assert argument.head == "p"
        assert argument.arguments[0].head == argument.binders[0].name

    def test_rendering_shows_scala_closure(self, tree_filter):
        _, _, result = tree_filter
        code = result.snippets[0].code
        assert code.startswith("new FilterTypeTreeTraverser(")
        assert "=>" in code
        assert "p(" in code

    def test_latency(self, tree_filter):
        _, _, result = tree_filter
        assert result.total_seconds < 3.0


class TestDrawingLayout:
    """§2.3 — subtyping through coercion functions."""

    def test_environment_size_matches_paper(self, drawing_layout):
        scene, _, _ = drawing_layout
        assert scene.initial_count == 4965

    def test_panel_get_layout_in_top_two(self, drawing_layout):
        # The paper reports the desired expression at rank 2.
        _, _, result = drawing_layout
        codes = [snippet.code for snippet in result.snippets[:2]]
        assert "panel.getLayout()" in codes

    def test_coercions_erased_from_surface(self, drawing_layout):
        _, _, result = drawing_layout
        for snippet in result.snippets:
            assert "$coerce$" not in snippet.code

    def test_raw_term_contains_coercion_for_panel(self, drawing_layout):
        from repro.core.subtyping import count_coercions

        _, _, result = drawing_layout
        target = next(snippet for snippet in result.snippets
                      if snippet.code == "panel.getLayout()")
        assert count_coercions(target.term) >= 1
        assert count_coercions(target.surface_term) == 0
