"""Failure injection and budget semantics.

The paper's deployment is interactive: users set time limits for the
prover and reconstruction (§5.6, §7.5).  These tests pin down what the
library guarantees when budgets bite or inputs are hostile: truncation is
*reported*, never silent; partial results stay sound; budget-zero runs
do not crash.
"""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.errors import SynthesisError
from repro.core.synthesizer import Synthesizer
from repro.core.typecheck import check_lnf
from repro.core.types import parse
from repro.bench.suite import benchmark_by_number, build_scene


def parse(text):
    from repro.lang.parser import parse_type

    return parse_type(text)


@pytest.fixture(scope="module")
def big_scene():
    return build_scene(benchmark_by_number(15))


class TestProverBudget:
    def test_zero_prover_budget_reports_truncation(self, big_scene):
        synthesizer = Synthesizer(
            big_scene.environment,
            config=SynthesisConfig(prover_time_limit=0.0),
            subtypes=big_scene.subtypes)
        result = synthesizer.synthesize(big_scene.goal)
        assert result.explore_truncated
        # Whatever was synthesized from the partial space must type-check.
        variable_types = synthesizer.environment.variable_types()
        for snippet in result.snippets:
            check_lnf(snippet.term, big_scene.goal, variable_types)

    def test_max_explore_nodes_cap(self, big_scene):
        synthesizer = Synthesizer(
            big_scene.environment,
            config=SynthesisConfig(prover_time_limit=None,
                                   max_explore_nodes=3),
            subtypes=big_scene.subtypes)
        result = synthesizer.synthesize(big_scene.goal)
        assert result.explore_truncated
        assert result.nodes_explored <= 3

    def test_interleaved_partial_space_still_yields_patterns(self, big_scene):
        # §5.6: with interleaving, patterns exist for whatever was explored.
        synthesizer = Synthesizer(
            big_scene.environment,
            config=SynthesisConfig(max_explore_nodes=50, interleaved=True),
            subtypes=big_scene.subtypes)
        space, patterns = synthesizer.prove(big_scene.goal)
        assert space.truncated
        assert len(patterns) > 0


class TestReconstructionBudget:
    def test_zero_reconstruction_budget(self, big_scene):
        synthesizer = Synthesizer(
            big_scene.environment,
            config=SynthesisConfig(reconstruction_time_limit=0.0),
            subtypes=big_scene.subtypes)
        result = synthesizer.synthesize(big_scene.goal)
        assert result.reconstruction_truncated
        assert result.inhabited  # the prover already decided

    def test_step_cap_truncates(self):
        env = Environment([
            Declaration("a", parse("A"), DeclKind.LOCAL),
            Declaration("f", parse("A -> A"), DeclKind.LOCAL),
        ])
        synthesizer = Synthesizer(
            env, config=SynthesisConfig(max_reconstruction_steps=2,
                                        max_snippets=100))
        result = synthesizer.synthesize(parse("A"), n=100)
        assert result.reconstruction_truncated
        assert len(result.snippets) <= 2

    def test_term_size_cap_limits_depth(self):
        env = Environment([
            Declaration("a", parse("A"), DeclKind.LOCAL),
            Declaration("f", parse("A -> A"), DeclKind.LOCAL),
        ])
        synthesizer = Synthesizer(
            env, config=SynthesisConfig(max_term_size=3,
                                        reconstruction_time_limit=1.0))
        result = synthesizer.synthesize(parse("A"), n=10)
        from repro.core.terms import lnf_size

        assert result.snippets
        assert all(lnf_size(snippet.term) <= 3
                   for snippet in result.snippets)


class TestHostileInputs:
    def test_empty_environment(self):
        result = Synthesizer(Environment([])).synthesize(parse("A"))
        assert not result.inhabited
        assert result.snippets == []

    def test_goal_type_not_mentioned_anywhere(self, big_scene):
        synthesizer = Synthesizer(big_scene.environment,
                                  subtypes=big_scene.subtypes)
        result = synthesizer.synthesize(parse("CompletelyUnknownType"))
        assert not result.inhabited

    def test_negative_snippet_count_rejected(self):
        env = Environment([Declaration("a", parse("A"), DeclKind.LOCAL)])
        with pytest.raises(SynthesisError):
            Synthesizer(env).synthesize(parse("A"), n=-1)

    def test_self_referential_types_terminate(self):
        env = Environment([
            Declaration("grow", parse("A -> A"), DeclKind.LOCAL),
            Declaration("shrink", parse("(A -> A) -> A"), DeclKind.LOCAL),
        ])
        result = Synthesizer(env).synthesize(parse("A"), n=5)
        assert result.inhabited
        assert len(result.snippets) == 5

    def test_deep_subtype_chain(self):
        from repro.core.subtyping import SubtypeGraph

        graph = SubtypeGraph()
        names = [f"T{i}" for i in range(40)]
        graph.add_chain(*names)
        env = Environment([
            Declaration("bottom", parse("T0"), DeclKind.LOCAL),
            Declaration("use", parse("T39 -> Result"), DeclKind.LOCAL),
        ])
        result = Synthesizer(env, subtypes=graph).synthesize(parse("Result"))
        assert result.inhabited
        assert result.snippets[0].code == "use(bottom)"
