"""Unit tests for the G4ip prover on known theorems and non-theorems."""

import pytest

from repro.core.errors import BudgetExhaustedError
from repro.provers.formulas import (Atom, Bottom, atom, conj, disj, implies)
from repro.provers.g4ip import G4ipProver, prove_g4ip

a, b, c, p, q = atom("a"), atom("b"), atom("c"), atom("p"), atom("q")


class TestTheorems:
    """Valid intuitionistic formulas must be provable from no hypotheses."""

    @pytest.mark.parametrize("theorem", [
        implies(a, a),                                    # identity
        implies(a, b, a),                                 # K
        implies(implies(a, b, c), implies(a, b), a, c),   # S
        implies(a, implies(a, b), b),                     # modus ponens
        implies(conj(a, b), a),
        implies(conj(a, b), b),
        implies(a, b, conj(a, b)),
        implies(a, disj(a, b)),
        implies(b, disj(a, b)),
        implies(disj(a, b), implies(a, c), implies(b, c), c),
        implies(Bottom(), a),                             # ex falso
        implies(implies(a, b), implies(b, c), a, c),      # composition
        # Peirce's law restricted (intuitionistically valid form):
        implies(implies(implies(a, b), a), implies(a, b), a, b),
        # double-negation introduction
        implies(a, implies(implies(a, Bottom()), Bottom())),
        # triple negation collapses to single
        implies(
            implies(implies(implies(a, Bottom()), Bottom()), Bottom()),
            implies(a, Bottom())),
    ])
    def test_valid(self, theorem):
        assert prove_g4ip([], theorem)


class TestNonTheorems:
    """Classically valid but intuitionistically invalid (or plain invalid)."""

    @pytest.mark.parametrize("formula", [
        a,
        implies(a, b),
        disj(a, implies(a, Bottom())),                    # excluded middle
        implies(implies(implies(a, b), a), a),            # Peirce's law
        implies(implies(implies(a, Bottom()), Bottom()), a),  # DNE
        implies(implies(conj(a, b), Bottom()),
                disj(implies(a, Bottom()), implies(b, Bottom()))),
    ])
    def test_invalid(self, formula):
        assert not prove_g4ip([], formula)


class TestWithHypotheses:
    def test_modus_ponens_from_context(self):
        assert prove_g4ip([a, implies(a, b)], b)

    def test_chained_implications(self):
        assert prove_g4ip([a, implies(a, b), implies(b, c)], c)

    def test_unrelated_hypotheses_do_not_help(self):
        assert not prove_g4ip([p, q, implies(p, q)], a)

    def test_nested_implication_hypothesis(self):
        # (a -> b) -> c together with b proves c (since b makes a -> b).
        assert prove_g4ip([implies(implies(a, b), c), b], c)

    def test_disjunctive_hypothesis(self):
        assert prove_g4ip([disj(a, b), implies(a, c), implies(b, c)], c)

    def test_conjunctive_hypothesis(self):
        assert prove_g4ip([conj(a, b)], a)

    def test_bottom_hypothesis_proves_anything(self):
        assert prove_g4ip([Bottom()], a)

    def test_large_irrelevant_context(self):
        noise = [implies(atom(f"x{i}"), atom(f"y{i}")) for i in range(300)]
        assert prove_g4ip(noise + [a, implies(a, b)], b)
        assert not prove_g4ip(noise + [implies(a, b)], b)


class TestProverObject:
    def test_memo_reused_across_queries(self):
        prover = G4ipProver()
        assert prover.prove([a, implies(a, b)], b)
        before = prover.stats.sequents_visited
        assert prover.prove([a, implies(a, b)], b)
        assert prover.stats.cache_hits > 0
        assert prover.stats.sequents_visited == before

    def test_time_limit_raises(self):
        # A hard query family for G4ip with a tiny budget.
        hard = [implies(implies(implies(atom(f"a{i}"), atom(f"b{i}")),
                                atom(f"c{i}")), atom(f"d{i}"))
                for i in range(40)]
        prover = G4ipProver(time_limit=0.0)
        with pytest.raises(BudgetExhaustedError):
            prover.prove(hard, atom("zzz"))
