"""Unit tests for the inverse-method prover."""

import pytest

from repro.provers.formulas import atom, conj, implies
from repro.provers.inverse import InverseMethodProver, prove_inverse

a, b, c = atom("a"), atom("b"), atom("c")


class TestTheorems:
    @pytest.mark.parametrize("theorem", [
        implies(a, a),
        implies(a, b, a),
        implies(implies(a, b, c), implies(a, b), a, c),
        implies(a, implies(a, b), b),
        implies(implies(a, b), implies(b, c), a, c),
    ])
    def test_valid(self, theorem):
        assert prove_inverse([], theorem)


class TestNonTheorems:
    @pytest.mark.parametrize("formula", [
        a,
        implies(a, b),
        implies(implies(implies(a, b), a), a),  # Peirce
        implies(implies(a, b), b),
    ])
    def test_invalid(self, formula):
        assert not prove_inverse([], formula)


class TestWithHypotheses:
    def test_modus_ponens(self):
        assert prove_inverse([a, implies(a, b)], b)

    def test_chain(self):
        assert prove_inverse([a, implies(a, b), implies(b, c)], c)

    def test_underivable(self):
        assert not prove_inverse([implies(a, b)], b)

    def test_nested_hypothesis(self):
        assert prove_inverse([implies(implies(a, b), c), b], c)

    def test_higher_order_goal(self):
        assert prove_inverse([implies(a, b)], implies(a, b))

    def test_irrelevant_context(self):
        noise = [implies(atom(f"x{i}"), atom(f"y{i}")) for i in range(30)]
        assert prove_inverse(noise + [a, implies(a, b)], b)
        assert not prove_inverse(noise + [implies(a, b)], b)


class TestRestrictions:
    def test_non_implicational_rejected(self):
        with pytest.raises(ValueError):
            prove_inverse([], conj(a, b))
        with pytest.raises(ValueError):
            prove_inverse([conj(a, b)], a)

    def test_stats_populated(self):
        prover = InverseMethodProver()
        prover.prove([a, implies(a, b)], b)
        assert prover.stats.kept > 0
