"""Three-way prover agreement: succinct engine == G4ip == inverse method.

Type inhabitation in the simply typed lambda calculus is provability in
implicational intuitionistic logic (the paper's §1, citing Statman and
Urzyczyn).  All three engines must therefore agree on every query.  Random
implicational formulas provide the adversarial workload.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.synthesizer import Synthesizer
from repro.core.config import SynthesisConfig
from repro.provers.formulas import Implication, atom
from repro.provers.g4ip import G4ipProver
from repro.provers.interface import SuccinctProver, prove_timed
from repro.provers.inverse import InverseMethodProver
from repro.provers.translation import (environment_to_sequent,
                                       formula_to_type, type_to_formula)
from tests.helpers import environment_and_goal

ATOMS = [atom(name) for name in ["a", "b", "c", "d"]]


def implicational_formulas(max_leaves: int = 8):
    return st.recursive(
        st.sampled_from(ATOMS),
        lambda inner: st.builds(Implication, inner, inner),
        max_leaves=max_leaves,
    )


@settings(max_examples=120, deadline=None)
@given(st.lists(implicational_formulas(), max_size=5),
       implicational_formulas())
def test_three_way_agreement_on_random_formulas(hypotheses, goal):
    succinct = SuccinctProver().prove(hypotheses, goal)
    g4ip = G4ipProver().prove(hypotheses, goal)
    inverse = InverseMethodProver().prove(hypotheses, goal)
    assert succinct == g4ip == inverse


@settings(max_examples=60, deadline=None)
@given(environment_and_goal())
def test_provers_agree_with_synthesizer_on_environments(env_goal):
    environment, goal = env_goal
    hypotheses, goal_formula = environment_to_sequent(environment, goal)
    config = SynthesisConfig(prover_time_limit=None)
    synthesizer_says = Synthesizer(environment, config=config).is_inhabited(goal)
    assert G4ipProver().prove(hypotheses, goal_formula) == synthesizer_says
    assert InverseMethodProver().prove(hypotheses, goal_formula) == \
        synthesizer_says


@settings(max_examples=60, deadline=None)
@given(implicational_formulas(max_leaves=10))
def test_translation_round_trip(formula):
    assert type_to_formula(formula_to_type(formula)) == formula


class TestProveTimed:
    def test_result_fields(self):
        result = prove_timed(G4ipProver(), [atom("a")], atom("a"))
        assert result.prover == "g4ip"
        assert result.provable is True
        assert not result.timed_out
        assert result.seconds >= 0
        assert result.milliseconds == result.seconds * 1000.0

    def test_timeout_reported(self):
        hard = [Implication(Implication(atom(f"a{i}"), atom(f"b{i}")),
                            atom(f"c{i}")) for i in range(60)]
        result = prove_timed(G4ipProver(time_limit=0.0), hard, atom("z"))
        assert result.timed_out
        assert result.provable is None
