"""Unit tests for repro.provers.formulas."""

import pytest

from repro.provers.formulas import (Atom, Bottom, Conjunction, Disjunction,
                                    Implication, atom, atoms_of, conj, disj,
                                    format_formula, formula_size, implies,
                                    is_implicational)

A, B, C = atom("a"), atom("b"), atom("c")


class TestConstruction:
    def test_implies_right_associative(self):
        assert implies(A, B, C) == Implication(A, Implication(B, C))

    def test_implies_single(self):
        assert implies(A) == A

    def test_implies_empty_rejected(self):
        with pytest.raises(ValueError):
            implies()

    def test_conj_and_disj(self):
        assert conj(A, B) == Conjunction(A, B)
        assert disj(A, B) == Disjunction(A, B)

    def test_formulas_hashable(self):
        assert len({implies(A, B), implies(A, B), A}) == 2


class TestPredicates:
    def test_is_implicational(self):
        assert is_implicational(implies(A, B, C))
        assert not is_implicational(conj(A, B))
        assert not is_implicational(implies(A, disj(B, C)))
        assert not is_implicational(Bottom())

    def test_atoms_of(self):
        assert atoms_of(implies(A, conj(B, C))) == {"a", "b", "c"}
        assert atoms_of(Bottom()) == frozenset()

    def test_formula_size(self):
        assert formula_size(A) == 1
        assert formula_size(implies(A, B)) == 3
        assert formula_size(conj(implies(A, B), C)) == 5


class TestFormatting:
    def test_atom(self):
        assert format_formula(A) == "a"

    def test_implication_right_assoc_no_parens(self):
        assert format_formula(implies(A, B, C)) == "a -> b -> c"

    def test_nested_implication_parenthesised(self):
        assert format_formula(Implication(implies(A, B), C)) == "(a -> b) -> c"

    def test_conjunction(self):
        assert format_formula(conj(A, B)) == "a /\\ b"

    def test_bottom(self):
        assert format_formula(Bottom()) == "_|_"
