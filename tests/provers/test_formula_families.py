"""Prover stress tests on classic intuitionistic formula families.

Scaling families with known provability status — the kind of inputs
intuitionistic-prover papers (including Dyckhoff's and Imogen's) evaluate
on.  Each family is checked on both baseline provers and, through the
Curry–Howard reading, on the succinct engine.
"""

import pytest

from repro.provers.formulas import Atom, Formula, Implication, atom, implies
from repro.provers.g4ip import prove_g4ip
from repro.provers.interface import SuccinctProver
from repro.provers.inverse import prove_inverse


def _atoms(prefix: str, count: int) -> list[Atom]:
    return [atom(f"{prefix}{index}") for index in range(count)]


def chain(length: int) -> tuple[list[Formula], Formula]:
    """a0, a0->a1, ..., a_{n-1}->a_n |- a_n — linear forward chaining."""
    names = _atoms("a", length + 1)
    hypotheses: list[Formula] = [names[0]]
    hypotheses += [Implication(names[i], names[i + 1])
                   for i in range(length)]
    return hypotheses, names[length]


def diamond(width: int) -> tuple[list[Formula], Formula]:
    """Every layer reachable through `width` parallel implications."""
    top, bottom = atom("top"), atom("bottom")
    mids = _atoms("m", width)
    hypotheses: list[Formula] = [top]
    hypotheses += [Implication(top, mid) for mid in mids]
    hypotheses += [implies(mids[0], mids[-1], bottom)]
    return hypotheses, bottom


def kleene_disjunction_free(count: int) -> Formula:
    """((...((a1 -> a2) -> a3) ...) -> an) — right-heavy nesting; valid
    forms only when the nesting bottoms out in an assumption."""
    names = _atoms("k", count)
    formula: Formula = names[0]
    for name in names[1:]:
        formula = Implication(formula, name)
    # (...) -> an  with everything hypothetical: not provable in general.
    return formula


@pytest.mark.parametrize("length", [1, 5, 25, 100])
def test_chains_provable(length):
    hypotheses, goal = chain(length)
    assert prove_g4ip(hypotheses, goal)
    assert SuccinctProver().prove(hypotheses, goal)
    if length <= 25:
        # The inverse method's subsumption is quadratic in the derived
        # sequent count; chain(100) takes minutes (precisely the scaling
        # weakness Table 2's comparison exposes), so keep it in range.
        assert prove_inverse(hypotheses, goal)


@pytest.mark.parametrize("length", [1, 5, 25])
def test_broken_chains_unprovable(length):
    hypotheses, goal = chain(length)
    hypotheses = hypotheses[1:]  # drop the base fact
    assert not prove_g4ip(hypotheses, goal)
    assert not prove_inverse(hypotheses, goal)
    assert not SuccinctProver().prove(hypotheses, goal)


@pytest.mark.parametrize("width", [2, 8, 32])
def test_diamonds_provable(width):
    hypotheses, goal = diamond(width)
    assert prove_g4ip(hypotheses, goal)
    assert prove_inverse(hypotheses, goal)
    assert SuccinctProver().prove(hypotheses, goal)


@pytest.mark.parametrize("count", [2, 4, 6])
def test_nested_kleene_forms_unprovable(count):
    formula = kleene_disjunction_free(count)
    assert not prove_g4ip([], formula)
    assert not prove_inverse([], formula)
    assert not SuccinctProver().prove([], formula)


class TestHigherOrderFamilies:
    def test_church_numeral_type_inhabited(self):
        # (a -> a) -> a -> a: the Church numerals; trivially inhabited.
        a = atom("a")
        goal = implies(implies(a, a), a, a)
        assert prove_g4ip([], goal)
        assert prove_inverse([], goal)
        assert SuccinctProver().prove([], goal)

    def test_cps_translation_shape(self):
        # a -> ((a -> r) -> r): the CPS return — valid.
        a, r = atom("a"), atom("r")
        goal = implies(a, implies(implies(a, r), r))
        assert prove_g4ip([], goal)
        assert prove_inverse([], goal)
        assert SuccinctProver().prove([], goal)

    def test_call_cc_shape_invalid(self):
        # ((a -> r) -> a) -> a is Peirce-like: intuitionistically invalid.
        a, r = atom("a"), atom("r")
        goal = Implication(Implication(Implication(a, r), a), a)
        assert not prove_g4ip([], goal)
        assert not prove_inverse([], goal)
        assert not SuccinctProver().prove([], goal)

    def test_double_negation_shift_instance_invalid(self):
        a, b = atom("a"), atom("b")
        bot = atom("bot")  # falsum encoded as an atom: stays implicational
        negate = lambda f: Implication(f, bot)
        goal = Implication(negate(negate(Implication(a, b))),
                           Implication(a, negate(negate(b))))
        # With falsum as an uninterpreted atom this *is* provable
        # intuitionistically (no ex falso needed for this direction).
        assert prove_g4ip([], goal)
        assert prove_inverse([], goal)
        assert SuccinctProver().prove([], goal)
