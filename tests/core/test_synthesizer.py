"""Unit tests for repro.core.synthesizer (the Fig. 5 pipeline)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.environment import (Declaration, DeclKind, Environment,
                                    RenderSpec, RenderStyle)
from repro.core.errors import SynthesisError
from repro.core.subtyping import SubtypeGraph
from repro.core.synthesizer import Synthesizer, synthesize
from repro.core.terms import lnf_heads
from repro.core.typecheck import check_lnf
from repro.core.types import parse
from repro.core.weights import WeightPolicy


def _decl(name, text, kind=DeclKind.LOCAL, frequency=0, render=None):
    return Declaration(name, parse(text), kind, frequency=frequency,
                       render=render)


@pytest.fixture
def stream_environment():
    return Environment([
        _decl("body", "InputStream"),
        _decl("sig", "String"),
        _decl("java.io.SequenceInputStream.new",
              "InputStream -> InputStream -> SequenceInputStream",
              DeclKind.IMPORTED, frequency=50,
              render=RenderSpec(RenderStyle.CONSTRUCTOR, "SequenceInputStream")),
        _decl("java.io.FileInputStream.new", "String -> FileInputStream",
              DeclKind.IMPORTED, frequency=300,
              render=RenderSpec(RenderStyle.CONSTRUCTOR, "FileInputStream")),
    ])


@pytest.fixture
def stream_subtypes():
    graph = SubtypeGraph()
    graph.add_edge("FileInputStream", "InputStream")
    graph.add_edge("SequenceInputStream", "InputStream")
    return graph


class TestBasicSynthesis:
    def test_simple_goal(self):
        env = Environment([_decl("a", "A"), _decl("f", "A -> B")])
        result = synthesize(env, parse("B"))
        assert result.inhabited
        assert lnf_heads(result.snippets[0].term) == ("f", "a")

    def test_uninhabited_goal(self):
        env = Environment([_decl("f", "A -> B")])
        result = synthesize(env, parse("B"))
        assert not result.inhabited
        assert result.snippets == []

    def test_snippets_ranked_and_weight_sorted(self):
        env = Environment([
            _decl("cheap", "B"),
            _decl("a", "A"),
            _decl("f", "A -> B", DeclKind.IMPORTED, frequency=10),
        ])
        result = synthesize(env, parse("B"), n=5)
        assert [s.rank for s in result.snippets] == list(
            range(1, len(result.snippets) + 1))
        weights = [s.weight for s in result.snippets]
        assert weights == sorted(weights)

    def test_n_limits_output(self):
        env = Environment([_decl("a", "A"), _decl("f", "A -> A")])
        result = synthesize(env, parse("A"), n=3)
        assert len(result.snippets) == 3

    def test_invalid_n_rejected(self):
        env = Environment([_decl("a", "A")])
        with pytest.raises(SynthesisError):
            Synthesizer(env).synthesize(parse("A"), n=0)

    def test_all_snippets_type_check(self, stream_environment,
                                      stream_subtypes):
        synthesizer = Synthesizer(stream_environment,
                                  subtypes=stream_subtypes)
        result = synthesizer.synthesize(parse("SequenceInputStream"), n=8)
        variable_types = synthesizer.environment.variable_types()
        for snippet in result.snippets:
            check_lnf(snippet.term, parse("SequenceInputStream"),
                      variable_types)

    def test_timing_fields_populated(self, stream_environment):
        result = Synthesizer(stream_environment).synthesize(
            parse("FileInputStream"))
        assert result.total_seconds >= 0
        assert result.prove_seconds >= 0
        assert result.nodes_explored > 0


class TestSubtyping:
    def test_coercions_used_and_erased(self, stream_environment,
                                       stream_subtypes):
        result = Synthesizer(stream_environment,
                             subtypes=stream_subtypes).synthesize(
            parse("SequenceInputStream"), n=5)
        codes = [snippet.code for snippet in result.snippets]
        assert any("new FileInputStream(sig)" in code for code in codes)
        assert all("$coerce$" not in code for code in codes)

    def test_surface_duplicates_removed(self, stream_environment,
                                        stream_subtypes):
        result = Synthesizer(stream_environment,
                             subtypes=stream_subtypes).synthesize(
            parse("SequenceInputStream"), n=10)
        codes = [snippet.code for snippet in result.snippets]
        assert len(codes) == len(set(codes))

    def test_subtype_chain_through_two_levels(self):
        env = Environment([
            _decl("x", "Bottom"),
            _decl("use", "Top -> Result", DeclKind.IMPORTED, frequency=5),
        ])
        graph = SubtypeGraph()
        graph.add_chain("Bottom", "Middle", "Top")
        result = Synthesizer(env, subtypes=graph).synthesize(parse("Result"))
        assert result.inhabited
        assert lnf_heads(result.snippets[0].surface_term) == ("use", "x")


class TestVariants:
    def test_uniform_policy_runs(self, stream_environment):
        result = Synthesizer(stream_environment,
                             policy=WeightPolicy.uniform_policy()).synthesize(
            parse("FileInputStream"))
        assert result.inhabited

    def test_interleaved_and_batch_agree(self, stream_environment,
                                         stream_subtypes):
        goal = parse("SequenceInputStream")
        interleaved = Synthesizer(
            stream_environment, subtypes=stream_subtypes,
            config=SynthesisConfig(interleaved=True)).synthesize(goal, n=6)
        batch = Synthesizer(
            stream_environment, subtypes=stream_subtypes,
            config=SynthesisConfig(interleaved=False)).synthesize(goal, n=6)
        assert [s.code for s in interleaved.snippets] == \
            [s.code for s in batch.snippets]

    def test_fifo_and_priority_same_solutions(self, stream_environment):
        goal = parse("FileInputStream")
        priority = Synthesizer(
            stream_environment,
            config=SynthesisConfig(prioritised_exploration=True)).synthesize(goal)
        fifo = Synthesizer(
            stream_environment,
            config=SynthesisConfig(prioritised_exploration=False)).synthesize(goal)
        assert {s.code for s in priority.snippets} == \
            {s.code for s in fifo.snippets}


class TestProverMode:
    def test_is_inhabited_positive(self, stream_environment, stream_subtypes):
        synthesizer = Synthesizer(stream_environment, subtypes=stream_subtypes)
        assert synthesizer.is_inhabited(parse("SequenceInputStream"))

    def test_is_inhabited_negative(self, stream_environment):
        synthesizer = Synthesizer(stream_environment)
        assert not synthesizer.is_inhabited(parse("Unbuildable"))

    def test_higher_order_goal(self):
        env = Environment([_decl("f", "A -> B")])
        synthesizer = Synthesizer(env)
        assert synthesizer.is_inhabited(parse("A -> B"))
        assert synthesizer.is_inhabited(parse("A -> A"))
        assert not synthesizer.is_inhabited(parse("B -> A"))
