"""Unit tests for repro.core.succinct (the sigma conversion, §3.2)."""

from repro.core.succinct import (SuccinctType, arguments_of, compression_ratio,
                                 format_succinct, primitive, result_of, sigma,
                                 sort_key, succinct, succinct_subterms)
from repro.core.types import arrow, base, parse

A, B, C = base("A"), base("B"), base("C")


class TestSigma:
    def test_base_type_becomes_primitive(self):
        assert sigma(A) == primitive("A")
        assert sigma(A).is_primitive

    def test_simple_arrow(self):
        assert sigma(arrow(A, B)) == succinct({primitive("A")}, "B")

    def test_curried_arguments_merge_into_set(self):
        # A -> B -> C  ==>  {A, B} -> C
        assert sigma(arrow(A, B, C)) == succinct(
            {primitive("A"), primitive("B")}, "C")

    def test_argument_order_irrelevant(self):
        assert sigma(arrow(A, B, C)) == sigma(arrow(B, A, C))

    def test_duplicate_arguments_collapse(self):
        # A -> A -> B  ==>  {A} -> B, the idempotence of conjunction.
        assert sigma(arrow(A, A, B)) == sigma(arrow(A, B))

    def test_higher_order_argument_preserved(self):
        tpe = arrow(arrow(A, B), C)
        expected = succinct({succinct({primitive("A")}, "B")}, "C")
        assert sigma(tpe) == expected

    def test_sigma_on_paper_example(self):
        # f : Int -> Int -> Int -> String  ==>  {Int} -> String  (§3.4)
        tpe = parse("Int -> Int -> Int -> String")
        assert sigma(tpe) == succinct({primitive("Int")}, "String")

    def test_nested_result_flattening(self):
        # A -> (B -> C)  ==  A -> B -> C
        assert sigma(parse("A -> (B -> C)")) == sigma(parse("A -> B -> C"))


class TestAccessors:
    def test_arguments_and_result(self):
        stype = sigma(arrow(A, B, C))
        assert arguments_of(stype) == frozenset({primitive("A"), primitive("B")})
        assert result_of(stype) == "C"

    def test_sorted_arguments_deterministic(self):
        stype = sigma(arrow(B, A, C))
        names = [argument.result for argument in stype.sorted_arguments()]
        assert names == sorted(names)

    def test_sort_key_total_order(self):
        types = [sigma(arrow(A, B)), primitive("A"), sigma(arrow(A, B, C)),
                 sigma(arrow(arrow(A, B), C))]
        ordered = sorted(types, key=sort_key)
        assert sorted(ordered, key=sort_key) == ordered
        assert len(set(ordered)) == len(types)


class TestSubterms:
    def test_primitive_subterms(self):
        assert succinct_subterms(primitive("A")) == {primitive("A")}

    def test_nested_subterms(self):
        stype = sigma(arrow(arrow(A, B), C))
        inner = sigma(arrow(A, B))
        assert succinct_subterms(stype) == {stype, inner, primitive("A")}

    def test_subterms_shared_structure_is_memoised(self):
        # Fibonacci-style sharing: t[n] = {t[n-1], t[n-2]} -> A.  The bare
        # recursion re-walks shared arguments (exponential in n); the
        # per-instance memo makes this linear — depth 60 must be instant.
        previous, current = primitive("A"), succinct({primitive("A")}, "A")
        for _ in range(60):
            previous, current = current, succinct({previous, current}, "A")
        subterms = succinct_subterms(current)
        assert current in subterms
        assert primitive("A") in subterms
        assert len(subterms) == 62

    def test_subterms_memo_survives_equal_fresh_instances(self):
        inner = succinct({primitive("A")}, "B")
        stype = SuccinctType(frozenset((inner,)), "C")  # not interned
        assert succinct_subterms(stype) == \
            succinct_subterms(succinct({inner}, "C"))


class TestFormatting:
    def test_primitive_formats_bare(self):
        assert format_succinct(primitive("Int")) == "Int"

    def test_function_format(self):
        stype = sigma(arrow(A, B, C))
        assert format_succinct(stype) == "{A, B} -> C"

    def test_nested_format(self):
        stype = sigma(arrow(arrow(A, B), C))
        assert format_succinct(stype) == "{{A} -> B} -> C"


class TestCompression:
    def test_compression_ratio_counts_distinct_images(self):
        types = [arrow(A, B, C), arrow(B, A, C), arrow(A, A, B), arrow(A, B)]
        total, distinct = compression_ratio(types)
        assert total == 4
        assert distinct == 2  # {A,B}->C twice, {A}->B twice

    def test_compression_never_increases(self):
        types = [arrow(A, B), arrow(A, C), A, B]
        total, distinct = compression_ratio(types)
        assert distinct <= total


class TestInterning:
    def test_constructors_return_canonical_instances(self):
        from repro.core.succinct import intern_succinct

        first = succinct({primitive("A")}, "B")
        second = succinct({primitive("A")}, "B")
        assert first is second
        assert intern_succinct(SuccinctType(frozenset((primitive("A"),)),
                                            "B")) is first

    def test_sigma_produces_interned_types(self):
        assert sigma(arrow(A, B)) is succinct({primitive("A")}, "B")

    def test_primitives_are_interned(self):
        assert primitive("A") is primitive("A")

    def test_table_grows_and_clears(self):
        from repro.core.succinct import (clear_intern_table,
                                         intern_table_size)

        before = intern_table_size()
        succinct({primitive("A"), primitive("B")},
                 "FreshlyMintedResultType")
        assert intern_table_size() > before
        clear_intern_table()
        assert intern_table_size() == 0
        # the library still works after a clear (fresh canonical instances)
        assert sigma(arrow(A, B)) == succinct({primitive("A")}, "B")
