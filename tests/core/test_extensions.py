"""Tests for the §9 extensions: evaluation, example filtering, combinators."""

import pytest

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.subtyping import SubtypeGraph, coercion_name
from repro.core.synthesizer import Synthesizer
from repro.core.terms import Binder, LNFTerm, lnf
from repro.core.types import base, parse
from repro.extensions.combinators import (bounded_iteration_declaration,
                                          control_flow_declarations,
                                          denotations_for, fold_declaration,
                                          if_then_else_declaration)
from repro.extensions.semantics import (EvaluationError, Example,
                                        evaluate_term, filter_snippets,
                                        satisfies_examples)


def parse(text):
    from repro.lang.parser import parse_type

    return parse_type(text)


class TestEvaluate:
    def test_ground_value(self):
        assert evaluate_term(lnf("x"), {"x": 42}) == 42

    def test_application(self):
        term = lnf("double", lnf("x"))
        assert evaluate_term(term, {"double": lambda v: v * 2, "x": 21}) == 42

    def test_nested_application(self):
        term = lnf("add", lnf("one"), lnf("double", lnf("one")))
        denotations = {"add": lambda a, b: a + b,
                       "double": lambda v: v * 2, "one": 1}
        assert evaluate_term(term, denotations) == 3

    def test_lambda_becomes_closure(self):
        term = LNFTerm((Binder("x", base("Int")),), "double", (lnf("x"),))
        closure = evaluate_term(term, {"double": lambda v: v * 2})
        assert closure(5) == 10

    def test_higher_order_argument(self):
        # apply (\x. inc x) 10
        inner = LNFTerm((Binder("x", base("Int")),), "inc", (lnf("x"),))
        term = lnf("apply", inner, lnf("ten"))
        denotations = {"apply": lambda f, v: f(v),
                       "inc": lambda v: v + 1, "ten": 10}
        assert evaluate_term(term, denotations) == 11

    def test_coercions_are_identity(self):
        term = lnf(coercion_name("Sub", "Super"), lnf("x"))
        assert evaluate_term(term, {"x": 7}) == 7

    def test_missing_denotation(self):
        with pytest.raises(EvaluationError):
            evaluate_term(lnf("ghost"), {})

    def test_non_callable_applied(self):
        with pytest.raises(EvaluationError):
            evaluate_term(lnf("x", lnf("y")), {"x": 3, "y": 4})

    def test_wrong_lambda_arity(self):
        term = LNFTerm((Binder("x", base("Int")),), "x", ())
        closure = evaluate_term(term, {})
        with pytest.raises(EvaluationError):
            closure(1, 2)

    def test_exception_wrapped(self):
        term = lnf("boom", lnf("x"))
        with pytest.raises(EvaluationError):
            evaluate_term(term, {"boom": lambda v: 1 // 0, "x": 0})


class TestExamples:
    def test_example_of(self):
        example = Example.of(2, 3, 5)
        assert example.inputs == (2, 3)
        assert example.output == 5

    def test_example_of_requires_output(self):
        with pytest.raises(ValueError):
            Example.of()

    def test_satisfies_ground(self):
        assert satisfies_examples(lnf("x"), [Example.of(42)], {"x": 42})
        assert not satisfies_examples(lnf("x"), [Example.of(41)], {"x": 42})

    def test_satisfies_function(self):
        term = LNFTerm((Binder("x", base("Int")),), "double", (lnf("x"),))
        denotations = {"double": lambda v: v * 2}
        assert satisfies_examples(
            term, [Example.of(2, 4), Example.of(5, 10)], denotations)
        assert not satisfies_examples(
            term, [Example.of(2, 5)], denotations)

    def test_errors_count_as_disagreement(self):
        assert not satisfies_examples(lnf("ghost"), [Example.of(1)], {})


class TestFilterSnippets:
    def test_semantic_filtering_pipeline(self):
        # Synthesize Int -> Int candidates, keep the ones matching f(x)=x*2.
        env = Environment([
            Declaration("double", parse("Int -> Int"), DeclKind.LOCAL),
            Declaration("inc", parse("Int -> Int"), DeclKind.LOCAL),
            Declaration("zero", parse("Int"), DeclKind.LOCAL),
        ])
        result = Synthesizer(env).synthesize(parse("Int -> Int"), n=10)
        denotations = {"double": lambda v: v * 2,
                       "inc": lambda v: v + 1, "zero": 0}
        survivors = filter_snippets(result.snippets,
                                    [Example.of(2, 4), Example.of(3, 6)],
                                    denotations)
        assert survivors, "a doubling candidate must survive"
        value = evaluate_term(survivors[0].surface_term, denotations)
        assert value(7) == 14

    def test_rank_order_preserved(self):
        env = Environment([
            Declaration("a", parse("Int"), DeclKind.LOCAL),
            Declaration("inc", parse("Int -> Int"), DeclKind.LOCAL),
        ])
        result = Synthesizer(env).synthesize(parse("Int"), n=6)
        survivors = filter_snippets(
            result.snippets, [Example.of(2)],
            {"a": 1, "inc": lambda v: v + 1})
        ranks = [snippet.rank for snippet in survivors]
        assert ranks == sorted(ranks)


class TestCombinators:
    def test_if_then_else_declaration_type(self):
        decl = if_then_else_declaration("Int")
        assert decl.type == parse("Boolean -> Int -> Int -> Int")

    def test_iterate_declaration_type(self):
        decl = bounded_iteration_declaration("Int")
        assert decl.type == parse("int -> (Int -> Int) -> Int -> Int")

    def test_fold_declaration_type(self):
        decl = fold_declaration("Int", "IntList", "Int")
        assert decl.type == parse(
            "(Int -> Int -> Int) -> Int -> IntList -> Int")

    def test_control_flow_declarations_per_type(self):
        declarations = control_flow_declarations(["Int", "String"])
        assert len(declarations) == 4

    def test_denotations_execute(self):
        declarations = [if_then_else_declaration("Int"),
                        bounded_iteration_declaration("Int"),
                        fold_declaration("Int", "IntList", "Int")]
        semantics = denotations_for(declarations)
        ite = semantics["$ite[Int]"]
        assert ite(True, 1, 2) == 1 and ite(False, 1, 2) == 2
        iterate = semantics["$iterate[Int]"]
        assert iterate(3, lambda v: v + 5, 0) == 15
        fold = semantics["$fold[Int,IntList,Int]"]
        assert fold(lambda a, b: a + b, 0, [1, 2, 3]) == 6

    def test_synthesis_with_conditional(self):
        env = Environment([
            Declaration("flag", parse("Boolean"), DeclKind.LOCAL),
            Declaration("small", parse("Int"), DeclKind.LOCAL),
            Declaration("big", parse("Int"), DeclKind.LOCAL),
            if_then_else_declaration("Int"),
        ])
        result = Synthesizer(env).synthesize(parse("Int"), n=10)
        codes = [snippet.code for snippet in result.snippets]
        assert any(code.startswith("if(") for code in codes)

    def test_conditional_filtered_by_examples(self):
        # goal Boolean -> Int; examples pin down if(b) big else small.
        declarations = [
            Declaration("small", parse("Int"), DeclKind.LOCAL),
            Declaration("big", parse("Int"), DeclKind.LOCAL),
            if_then_else_declaration("Int"),
        ]
        env = Environment(declarations)
        result = Synthesizer(env).synthesize(parse("Boolean -> Int"), n=30)
        denotations = {"small": 1, "big": 9}
        denotations.update(denotations_for(declarations))
        survivors = filter_snippets(
            result.snippets,
            [Example.of(True, 9), Example.of(False, 1)],
            denotations)
        assert survivors
        chosen = evaluate_term(survivors[0].surface_term, denotations)
        assert chosen(True) == 9 and chosen(False) == 1
