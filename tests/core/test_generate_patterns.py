"""Unit tests for repro.core.generate_patterns (Fig. 8/9)."""

from hypothesis import given, settings

from repro.core.explore import explore
from repro.core.generate_patterns import (IncrementalPatternGenerator,
                                          Pattern, PatternSet,
                                          generate_patterns,
                                          generate_patterns_incremental,
                                          generate_patterns_with_predecessor_map,
                                          goal_is_inhabited)
from repro.core.succinct import primitive, sigma
from repro.core.types import base, parse
from tests.helpers import environment_and_goal


def _env(*types):
    return frozenset(sigma(parse(t)) for t in types)


def _space(env_types, goal_text):
    env = _env(*env_types)
    return explore(env, sigma(parse(goal_text)))


class TestFixpoint:
    def test_nullary_member_inhabits(self):
        space = _space(["A"], "A")
        patterns = generate_patterns(space)
        assert patterns.is_inhabited(space.root)
        assert len(patterns) == 1

    def test_paper_example_section_3_4(self):
        # Gamma_o = {a : Int, f : Int -> Int -> Int -> String}
        # Patterns: Gamma@{} : Int  and  Gamma@{Int} : String.
        space = _space(["Int", "Int -> Int -> Int -> String"], "String")
        patterns = generate_patterns(space)
        premise_sets = {(pattern.result, pattern.premises)
                        for pattern in patterns.patterns}
        assert ("Int", frozenset()) in premise_sets
        assert ("String", frozenset({primitive("Int")})) in premise_sets
        assert patterns.is_inhabited(space.root)

    def test_missing_premise_blocks(self):
        # f : A -> B with no A: B not inhabited.
        space = _space(["A -> B"], "B")
        patterns = generate_patterns(space)
        assert not patterns.is_inhabited(space.root)
        assert len(patterns) == 0

    def test_cycle_is_not_self_justifying(self):
        # f : A -> B, g : B -> A — neither is inhabited (least fixpoint).
        space = _space(["A -> B", "B -> A"], "A")
        patterns = generate_patterns(space)
        assert not patterns.is_inhabited(space.root)

    def test_cycle_with_seed_inhabits(self):
        space = _space(["A -> B", "B -> A", "A"], "B")
        patterns = generate_patterns(space)
        assert patterns.is_inhabited(space.root)

    def test_function_goal_with_stripped_argument(self):
        # Goal A -> B with f : A -> B: the stripped argument A inhabits B.
        space = _space(["A -> B"], "A -> B")
        patterns = generate_patterns(space)
        assert patterns.is_inhabited(space.root)

    def test_all_satisfied_edges_become_patterns(self):
        # Two distinct ways to get B must both appear as patterns.
        space = _space(["A", "C", "A -> B", "C -> B"], "B")
        patterns = generate_patterns(space)
        results = [pattern for pattern in patterns.patterns
                   if pattern.result == "B"]
        assert len(results) == 2

    def test_lookup_by_env_and_result(self):
        space = _space(["A", "A -> B"], "B")
        patterns = generate_patterns(space)
        found = patterns.lookup(space.root.env, "B")
        assert len(found) == 1
        assert found[0].premises == frozenset({primitive("A")})

    def test_goal_is_inhabited_helper(self):
        space = _space(["A", "A -> B"], "B")
        assert goal_is_inhabited(space)
        space2 = _space(["A -> B"], "B")
        assert not goal_is_inhabited(space2)


class TestIncremental:
    def test_matches_fixpoint_on_simple_chain(self):
        space = _space(["A", "A -> B", "B -> C"], "C")
        assert (generate_patterns(space).patterns
                == generate_patterns_incremental(space).patterns)

    def test_matches_fixpoint_on_cycles(self):
        space = _space(["A -> B", "B -> A", "A"], "B")
        assert (generate_patterns(space).patterns
                == generate_patterns_incremental(space).patterns)

    def test_online_feeding_matches_batch(self):
        space = _space(["A", "A -> B", "B -> C", "C -> D"], "D")
        online = IncrementalPatternGenerator()
        for edge in space.all_edges():
            online.add_edges([edge])  # one at a time, worst case
        assert online.result().patterns == generate_patterns(space).patterns

    def test_goal_reached_flag(self):
        space = _space(["A", "A -> B"], "B")
        online = IncrementalPatternGenerator()
        online.add_edges(space.all_edges())
        assert online.goal_reached(space.root)

    @settings(max_examples=60, deadline=None)
    @given(environment_and_goal())
    def test_agreement_on_random_environments(self, env_goal):
        environment, goal = env_goal
        space = explore(environment.succinct_environment(), sigma(goal))
        batch = generate_patterns(space)
        online = generate_patterns_incremental(space)
        assert batch.patterns == online.patterns
        assert batch.inhabited == online.inhabited


class TestPredecessorMap:
    """The §5.7 optimisation must be observationally identical."""

    def test_predecessor_map_built_during_exploration(self):
        space = _space(["A", "A -> B"], "B")
        a_node = next(request for request in space.nodes()
                      if request.target == "A")
        predecessor_edges = space.predecessors[a_node]
        assert any(edge.request.target == "B" for edge in predecessor_edges)

    def test_matches_fixpoint_on_simple_chain(self):
        space = _space(["A", "A -> B", "B -> C"], "C")
        assert (generate_patterns(space).patterns
                == generate_patterns_with_predecessor_map(space).patterns)

    def test_matches_fixpoint_on_cycles(self):
        space = _space(["A -> B", "B -> A"], "A")
        assert (generate_patterns(space).inhabited
                == generate_patterns_with_predecessor_map(space).inhabited)

    def test_duplicate_premise_children_handled(self):
        # Premises A and ({A} -> A) strip to the same child when A is
        # already in the environment — the backward map then holds the edge
        # twice, which must not break the countdown.
        space = _space(["A", "(A -> A) -> A -> B"], "B")
        assert (generate_patterns(space).patterns
                == generate_patterns_with_predecessor_map(space).patterns)

    def test_duplicate_child_with_missing_sibling_premise(self):
        # Like the case above, B is watched twice by the C edge (direct
        # premise and stripped {B} -> B) — but here the third premise A is
        # *uninhabited*.  A double decrement for B would bring the
        # countdown to zero and wrongly mark C inhabited (found by
        # hypothesis; the fixpoint reference correctly says uninhabited).
        space = _space(["B", "(B -> B) -> A -> B -> C"], "C")
        batch = generate_patterns(space)
        via_map = generate_patterns_with_predecessor_map(space)
        assert not batch.is_inhabited(space.root)
        assert batch.patterns == via_map.patterns
        assert batch.inhabited == via_map.inhabited

    @settings(max_examples=60, deadline=None)
    @given(environment_and_goal())
    def test_agreement_on_random_environments(self, env_goal):
        environment, goal = env_goal
        space = explore(environment.succinct_environment(), sigma(goal))
        batch = generate_patterns(space)
        via_map = generate_patterns_with_predecessor_map(space)
        assert batch.patterns == via_map.patterns
        assert batch.inhabited == via_map.inhabited
