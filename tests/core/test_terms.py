"""Unit tests for repro.core.terms (generic terms and long normal forms)."""

import pytest

from repro.core.terms import (Abstraction, Application, Binder, LNFTerm,
                              Variable, abstraction, alpha_equivalent,
                              application, beta_normalize, canonicalize_lnf,
                              eta_long_form, format_lnf, format_term,
                              free_variables, is_long_normal_form, lnf,
                              lnf_alpha_equivalent, lnf_depth, lnf_heads,
                              lnf_size, lnf_to_term, substitute)
from repro.core.types import arrow, base

A, B, C = base("A"), base("B"), base("C")


class TestGenericTerms:
    def test_free_variables(self):
        term = application(Variable("f"), Variable("x"))
        assert free_variables(term) == {"f", "x"}

    def test_abstraction_binds(self):
        term = Abstraction("x", A, application(Variable("f"), Variable("x")))
        assert free_variables(term) == {"f"}

    def test_substitute_free_occurrence(self):
        term = application(Variable("f"), Variable("x"))
        replaced = substitute(term, "x", Variable("y"))
        assert replaced == application(Variable("f"), Variable("y"))

    def test_substitute_respects_binding(self):
        term = Abstraction("x", A, Variable("x"))
        assert substitute(term, "x", Variable("y")) == term

    def test_substitute_avoids_capture(self):
        # (\x. y x)[y := x]  must not capture the bound x.
        term = Abstraction("x", A, application(Variable("y"), Variable("x")))
        replaced = substitute(term, "y", Variable("x"))
        assert isinstance(replaced, Abstraction)
        assert replaced.parameter != "x"
        assert free_variables(replaced) == {"x"}

    def test_beta_normalize_identity_application(self):
        identity = Abstraction("x", A, Variable("x"))
        term = Application(identity, Variable("a"))
        assert beta_normalize(term) == Variable("a")

    def test_beta_normalize_nested(self):
        # (\x. \y. x) a b  ->  a
        const = Abstraction("x", A, Abstraction("y", B, Variable("x")))
        term = application(const, Variable("a"), Variable("b"))
        assert beta_normalize(term) == Variable("a")

    def test_alpha_equivalence_of_renamed_binders(self):
        left = Abstraction("x", A, Variable("x"))
        right = Abstraction("y", A, Variable("y"))
        assert alpha_equivalent(left, right)

    def test_alpha_inequivalence_of_different_types(self):
        left = Abstraction("x", A, Variable("x"))
        right = Abstraction("x", B, Variable("x"))
        assert not alpha_equivalent(left, right)

    def test_alpha_inequivalence_free_vs_bound(self):
        left = Abstraction("x", A, Variable("x"))
        right = Abstraction("x", A, Variable("y"))
        assert not alpha_equivalent(left, right)

    def test_format_term(self):
        term = Abstraction("x", A, application(Variable("f"), Variable("x")))
        assert format_term(term) == "\\x:A. f x"


class TestLNFTerms:
    def test_lnf_depth_bare_head(self):
        assert lnf_depth(lnf("a")) == 1

    def test_lnf_depth_application(self):
        term = lnf("f", lnf("a"), lnf("g", lnf("b")))
        assert lnf_depth(term) == 3

    def test_lnf_depth_ignores_binders(self):
        term = LNFTerm((Binder("x", A),), "x", ())
        assert lnf_depth(term) == 1

    def test_lnf_size_counts_heads(self):
        term = lnf("f", lnf("a"), lnf("g", lnf("b")))
        assert lnf_size(term) == 4

    def test_lnf_heads_preorder(self):
        term = lnf("f", lnf("a"), lnf("g", lnf("b")))
        assert lnf_heads(term) == ("f", "a", "g", "b")

    def test_lnf_to_term(self):
        term = LNFTerm((Binder("x", A),), "f", (lnf("x"),))
        generic = lnf_to_term(term)
        assert generic == Abstraction(
            "x", A, Application(Variable("f"), Variable("x")))

    def test_lnf_alpha_equivalence(self):
        left = LNFTerm((Binder("x", A),), "f", (lnf("x"),))
        right = LNFTerm((Binder("y", A),), "f", (lnf("y"),))
        assert lnf_alpha_equivalent(left, right)

    def test_canonicalize_lnf_renames_consistently(self):
        left = LNFTerm((Binder("x", A), Binder("y", B)), "f",
                       (lnf("y"), lnf("x")))
        right = LNFTerm((Binder("p", A), Binder("q", B)), "f",
                        (lnf("q"), lnf("p")))
        assert canonicalize_lnf(left) == canonicalize_lnf(right)

    def test_canonicalize_preserves_free_heads(self):
        term = lnf("f", lnf("free"))
        assert canonicalize_lnf(term) == term

    def test_format_lnf(self):
        term = LNFTerm((Binder("x", A),), "f", (lnf("x"), lnf("g", lnf("a"))))
        assert format_lnf(term) == "\\x:A. f x (g a)"


class TestEtaLongForm:
    def test_already_long(self):
        scope = {"a": A}
        term = Variable("a")
        assert eta_long_form(term, A, scope) == lnf("a")

    def test_eta_expands_underapplied_head(self):
        # f : A -> B used at type A -> B must become \x. f x.
        scope = {"f": arrow(A, B)}
        result = eta_long_form(Variable("f"), arrow(A, B), scope)
        assert len(result.binders) == 1
        assert result.head == "f"
        assert result.arguments[0].head == result.binders[0].name

    def test_eta_expansion_nested_argument(self):
        # g : (A -> B) -> C applied to f : A -> B.
        scope = {"g": arrow(arrow(A, B), C), "f": arrow(A, B)}
        term = Application(Variable("g"), Variable("f"))
        result = eta_long_form(term, C, scope)
        assert result.head == "g"
        inner = result.arguments[0]
        assert inner.head == "f"
        assert len(inner.binders) == 1

    def test_rejects_non_normal_term(self):
        redex = Application(Abstraction("x", A, Variable("x")), Variable("a"))
        with pytest.raises(ValueError):
            eta_long_form(redex, A, {"a": A})

    def test_rejects_untyped_free_variable(self):
        with pytest.raises(ValueError):
            eta_long_form(Variable("mystery"), A, {})

    def test_result_is_long_normal_form(self):
        scope = {"g": arrow(arrow(A, B), C), "f": arrow(A, B)}
        term = Application(Variable("g"), Variable("f"))
        result = eta_long_form(term, C, scope)
        assert is_long_normal_form(result, C, scope)


class TestIsLongNormalForm:
    def test_underapplied_head_is_not_lnf(self):
        scope = {"f": arrow(A, B)}
        term = lnf("f")  # f alone at type A -> B: not LNF
        assert not is_long_normal_form(term, arrow(A, B), scope)

    def test_missing_binder_is_not_lnf(self):
        scope = {"b": B}
        assert not is_long_normal_form(lnf("b"), arrow(A, B), scope)

    def test_correct_lnf_accepted(self):
        scope = {"f": arrow(A, B), "a": A}
        term = lnf("f", lnf("a"))
        assert is_long_normal_form(term, B, scope)
