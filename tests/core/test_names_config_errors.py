"""Unit tests for names, config and errors modules."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.errors import (ReproError, SynthesisError, TypeCheckError,
                               TypeSyntaxError)
from repro.core.names import CountingSupply, NameSupply


class TestNameSupply:
    def test_sequential_names(self):
        supply = NameSupply(prefix="x")
        assert supply.fresh_many(3) == ["x0", "x1", "x2"]

    def test_reserved_names_skipped(self):
        supply = NameSupply(prefix="x", reserved=["x0", "x2"])
        assert supply.fresh_many(3) == ["x1", "x3", "x4"]

    def test_reserve_after_construction(self):
        supply = NameSupply(prefix="v")
        supply.reserve(["v0"])
        assert supply.fresh() == "v1"

    def test_never_repeats(self):
        supply = NameSupply()
        names = supply.fresh_many(50)
        assert len(set(names)) == 50

    def test_iterator_protocol(self):
        supply = NameSupply(prefix="n")
        iterator = iter(supply)
        assert next(iterator) == "n0"
        assert next(iterator) == "n1"


class TestCountingSupply:
    def test_monotone_ids(self):
        supply = CountingSupply()
        assert [supply.next_id() for _ in range(3)] == [0, 1, 2]


class TestSynthesisConfig:
    def test_paper_defaults(self):
        config = SynthesisConfig.paper_defaults()
        assert config.max_snippets == 10
        assert config.prover_time_limit == 0.5
        assert config.reconstruction_time_limit == 7.0

    def test_exhaustive_has_no_limits(self):
        config = SynthesisConfig.exhaustive()
        assert config.prover_time_limit is None
        assert config.reconstruction_time_limit is None

    def test_with_overrides(self):
        config = SynthesisConfig().with_(max_snippets=3)
        assert config.max_snippets == 3
        assert SynthesisConfig().max_snippets == 10  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            SynthesisConfig().max_snippets = 5  # type: ignore[misc]


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SynthesisError, ReproError)
        assert issubclass(TypeCheckError, ReproError)
        assert issubclass(TypeSyntaxError, ReproError)

    def test_syntax_error_position(self):
        error = TypeSyntaxError("bad token", line=3, column=7)
        assert error.line == 3
        assert "line 3" in str(error)


class TestFrozenReservedNames:
    def test_frozen_set_is_shared_not_copied(self):
        frozen = frozenset({"x0", "x2"})
        supply = NameSupply(prefix="x", frozen=frozen)
        assert supply.fresh_many(3) == ["x1", "x3", "x4"]
        # The shared set itself must never be mutated by draws.
        assert frozen == {"x0", "x2"}

    def test_frozen_and_reserved_combine(self):
        supply = NameSupply(prefix="x", reserved=["x1"],
                            frozen=frozenset({"x0"}))
        assert supply.fresh_many(2) == ["x2", "x3"]

    def test_environment_reserved_names_cached_and_shared(self):
        from repro.core.environment import Environment
        from tests.helpers import simple_env

        environment = simple_env(("a", "A"), ("f", "A -> B"))
        first = environment.reserved_names()
        assert first == {"a", "f"}
        assert environment.reserved_names() is first  # cached, not rebuilt
        child = environment.extended([])
        assert child.reserved_names() == {"a", "f"}
        assert isinstance(first, frozenset)
        supply = NameSupply(prefix="x", frozen=first)
        assert supply.fresh() == "x0"
        assert isinstance(environment, Environment)
