"""Bounded memo tables: intern-table limits, trimming, capped lru_caches."""

import pytest

from repro.core import succinct
from repro.core.succinct import (clear_intern_table, intern_table_size,
                                 intern_table_stats, primitive,
                                 set_intern_table_limit, sigma, sort_key,
                                 trim_intern_table)
from repro.core.types import BaseType


@pytest.fixture(autouse=True)
def fresh_tables():
    """Isolate the global tables and restore the default limit."""
    clear_intern_table()
    previous = set_intern_table_limit(succinct.DEFAULT_INTERN_LIMIT)
    yield
    set_intern_table_limit(succinct.DEFAULT_INTERN_LIMIT)
    clear_intern_table()
    del previous


class TestInternTableBound:
    def test_limit_evicts_oldest(self):
        set_intern_table_limit(5)
        for index in range(8):
            primitive(f"T{index}")
        assert intern_table_size() == 5
        stats = intern_table_stats()
        assert stats["limit"] == 5
        assert stats["evictions"] >= 3

    def test_eviction_is_safe_for_live_references(self):
        set_intern_table_limit(2)
        first = primitive("Alpha")
        primitive("Beta")
        primitive("Gamma")                  # evicts Alpha from the table
        # A fresh intern of the same structure yields an *equal* type, even
        # though the canonical instance was shed.
        again = primitive("Alpha")
        assert again == first
        assert hash(again) == hash(first)

    def test_shrinking_limit_applies_immediately(self):
        for index in range(10):
            primitive(f"T{index}")
        set_intern_table_limit(3)
        assert intern_table_size() == 3

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            set_intern_table_limit(0)


class TestTrim:
    def test_trim_to_zero_clears_everything(self):
        for index in range(6):
            sigma(BaseType(f"T{index}"))
        assert intern_table_size() == 6
        assert trim_intern_table(0) == 6
        assert intern_table_size() == 0
        # The memo caches were cleared with it (they pin interned types).
        assert sigma.cache_info().currsize == 0

    def test_trim_keeps_newest(self):
        for index in range(6):
            primitive(f"T{index}")
        assert trim_intern_table(2) == 4
        assert intern_table_size() == 2

    def test_trim_below_target_is_noop(self):
        primitive("Only")
        before = sort_key(primitive("Only"))
        assert trim_intern_table(10) == 0
        assert intern_table_size() == 1
        assert sort_key(primitive("Only")) == before


class TestThreadSafety:
    def test_concurrent_interning_with_eviction_pressure(self):
        """Executor threads intern while the bound forces evictions.

        The server interns from synthesis threads and trims from the
        event loop; concurrent mutation must never raise or overshoot
        the bound."""
        from concurrent.futures import ThreadPoolExecutor

        set_intern_table_limit(16)

        def hammer(worker: int):
            for index in range(300):
                primitive(f"W{worker}_T{index % 40}")
                if index % 50 == 0:
                    trim_intern_table(4)

        with ThreadPoolExecutor(max_workers=4) as pool:
            for future in [pool.submit(hammer, worker)
                           for worker in range(4)]:
                future.result()             # raises if any thread blew up

        assert intern_table_size() <= 16


class TestCappedMemoCaches:
    def test_sigma_and_sort_key_are_bounded(self):
        assert sigma.cache_info().maxsize == succinct.MEMO_CACHE_SIZE
        assert sort_key.cache_info().maxsize == succinct.MEMO_CACHE_SIZE

    def test_sigma_still_interns_after_trim(self):
        tpe = BaseType("Roundtrip")
        first = sigma(tpe)
        trim_intern_table(0)
        second = sigma(tpe)
        assert first == second
        assert sigma(tpe) is second         # re-memoised and re-interned
