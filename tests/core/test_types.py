"""Unit tests for repro.core.types."""

import pytest

from repro.core.types import (Arrow, BaseType, argument_types, arity, arrow,
                              base, base_types, depth, final_result,
                              format_type, function_type, is_arrow, is_base,
                              parse, size, subterms, uncurry)


class TestConstruction:
    def test_base_type_equality(self):
        assert base("Int") == BaseType("Int")
        assert base("Int") != base("String")

    def test_arrow_right_associative(self):
        tpe = arrow(base("A"), base("B"), base("C"))
        assert tpe == Arrow(base("A"), Arrow(base("B"), base("C")))

    def test_arrow_single_argument_is_identity(self):
        assert arrow(base("A")) == base("A")

    def test_arrow_requires_an_argument(self):
        with pytest.raises(ValueError):
            arrow()

    def test_function_type_empty_arguments(self):
        assert function_type([], base("A")) == base("A")

    def test_function_type_builds_curried_arrows(self):
        tpe = function_type([base("A"), base("B")], base("C"))
        assert uncurry(tpe) == ((base("A"), base("B")), base("C"))

    def test_types_are_hashable(self):
        types = {arrow(base("A"), base("B")), base("A"),
                 arrow(base("A"), base("B"))}
        assert len(types) == 2


class TestPredicates:
    def test_is_base(self):
        assert is_base(base("A"))
        assert not is_base(arrow(base("A"), base("B")))

    def test_is_arrow(self):
        assert is_arrow(arrow(base("A"), base("B")))
        assert not is_arrow(base("A"))


class TestViews:
    def test_uncurry_base(self):
        assert uncurry(base("V")) == ((), base("V"))

    def test_uncurry_nested(self):
        tpe = arrow(arrow(base("A"), base("B")), base("C"), base("D"))
        args, result = uncurry(tpe)
        assert args == (arrow(base("A"), base("B")), base("C"))
        assert result == base("D")

    def test_argument_types_and_final_result(self):
        tpe = arrow(base("A"), base("B"), base("C"))
        assert argument_types(tpe) == (base("A"), base("B"))
        assert final_result(tpe) == base("C")

    def test_arity(self):
        assert arity(base("A")) == 0
        assert arity(arrow(base("A"), base("B"), base("C"))) == 2

    def test_higher_order_argument_does_not_add_arity(self):
        tpe = arrow(arrow(base("A"), base("B")), base("C"))
        assert arity(tpe) == 1


class TestMeasures:
    def test_size(self):
        assert size(base("A")) == 1
        assert size(arrow(base("A"), base("B"), base("C"))) == 3

    def test_depth(self):
        assert depth(base("A")) == 1
        assert depth(arrow(base("A"), base("B"))) == 2
        assert depth(arrow(arrow(base("A"), base("B")), base("C"))) == 3

    def test_base_types_collects_names(self):
        tpe = arrow(arrow(base("A"), base("B")), base("A"), base("C"))
        assert base_types(tpe) == {"A", "B", "C"}

    def test_subterms_includes_self_and_components(self):
        inner = arrow(base("A"), base("B"))
        tpe = arrow(inner, base("C"))
        assert subterms(tpe) == {tpe, inner, base("A"), base("B"), base("C")}


class TestFormatting:
    def test_format_base(self):
        assert format_type(base("Int")) == "Int"

    def test_format_right_association_no_parens(self):
        assert format_type(arrow(base("A"), base("B"), base("C"))) == "A -> B -> C"

    def test_format_left_nesting_parenthesised(self):
        tpe = arrow(arrow(base("A"), base("B")), base("C"))
        assert format_type(tpe) == "(A -> B) -> C"

    def test_parse_round_trip(self):
        for text in ["A", "A -> B", "(A -> B) -> C", "A -> (B -> C) -> D"]:
            assert format_type(parse(text)) == text

    def test_parse_redundant_parens(self):
        assert parse("((A))") == base("A")
        assert parse("A -> (B -> C)") == parse("A -> B -> C")

    def test_parse_qualified_names(self):
        assert parse("java.io.File") == base("java.io.File")
