"""Unit tests for repro.core.rcn (the Fig. 4 oracle)."""

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.rcn import SuccinctDecider, cl, rcn
from repro.core.succinct import primitive, sigma
from repro.core.terms import canonicalize_lnf, lnf, lnf_depth
from repro.core.types import parse


def _env(*pairs):
    return Environment([Declaration(name, parse(text), DeclKind.LOCAL)
                        for name, text in pairs])


class TestDecider:
    def test_simple_inhabitation(self):
        env = _env(("a", "A"), ("f", "A -> B"))
        decider = SuccinctDecider()
        key = env.succinct_environment()
        assert decider.inhabited(key, primitive("B"))
        assert not decider.inhabited(key, primitive("Z"))

    def test_function_type_inhabitation(self):
        env = _env(("f", "A -> B"))
        decider = SuccinctDecider()
        key = env.succinct_environment()
        assert decider.inhabited(key, sigma(parse("A -> B")))
        assert decider.inhabited(key, sigma(parse("A -> A")))
        assert not decider.inhabited(key, sigma(parse("B -> A")))


class TestCL:
    def test_finds_witnessing_members(self):
        env = _env(("a", "A"), ("f", "A -> B"))
        key = env.succinct_environment()
        found = cl(key, sigma(parse("B")))
        assert len(found) == 1
        _, premises, result = found[0]
        assert premises == frozenset({primitive("A")})
        assert result == "B"

    def test_goal_arguments_extend_environment(self):
        env = _env(("f", "A -> B"))
        key = env.succinct_environment()
        # Goal A -> B: the argument A becomes available.
        found = cl(key, sigma(parse("A -> B")))
        assert len(found) == 1

    def test_unsatisfiable_premises_excluded(self):
        env = _env(("f", "A -> B"))  # no A anywhere
        key = env.succinct_environment()
        assert cl(key, sigma(parse("B"))) == []


class TestRCN:
    def test_depth_zero_is_empty(self):
        env = _env(("a", "A"))
        assert rcn(env, parse("A"), 0) == set()

    def test_single_constant(self):
        env = _env(("a", "A"))
        assert rcn(env, parse("A"), 1) == {lnf("a")}

    def test_depth_limits_output(self):
        env = _env(("a", "A"), ("f", "A -> A"))
        depth1 = rcn(env, parse("A"), 1)
        depth2 = rcn(env, parse("A"), 2)
        depth3 = rcn(env, parse("A"), 3)
        assert len(depth1) == 1
        assert len(depth2) == 2
        assert len(depth3) == 3
        assert depth1 < depth2 < depth3

    def test_every_term_within_depth(self):
        env = _env(("a", "A"), ("f", "A -> A"))
        for term in rcn(env, parse("A"), 4):
            assert lnf_depth(term) <= 4

    def test_higher_order_goal(self):
        env = _env(("f", "A -> B"))
        terms = rcn(env, parse("A -> B"), 2)
        # \x. f x  — canonicalised binder name.
        assert any(term.head == "f" and len(term.binders) == 1
                   for term in terms)

    def test_identity_synthesised(self):
        env = Environment([])
        terms = rcn(env, parse("A -> A"), 1)
        assert len(terms) == 1
        (term,) = terms
        assert term.head == term.binders[0].name

    def test_multiple_declarations_same_succinct_type(self):
        env = _env(("a", "A"), ("f", "A -> B"), ("g", "A -> A -> B"))
        terms = rcn(env, parse("B"), 2)
        heads = {term.head for term in terms}
        assert heads == {"f", "g"}
        arities = {term.head: len(term.arguments) for term in terms}
        assert arities == {"f": 1, "g": 2}

    def test_terms_are_canonical(self):
        env = _env(("f", "A -> B"))
        terms = rcn(env, parse("A -> B"), 2)
        assert all(canonicalize_lnf(term) == term for term in terms)
