"""Unit tests for repro.core.space (the environment arena)."""

from repro.core.environment import Environment
from repro.core.space import EnvArena, arena_stats
from repro.core.succinct import primitive, sort_key, succinct, type_id
from tests.helpers import simple_env


def _env(*pairs):
    return simple_env(*pairs).succinct_environment()


class TestInterning:
    def test_same_environment_same_id(self):
        env = _env(("a", "A"), ("f", "A -> B"))
        arena = EnvArena()
        assert arena.intern(env) == arena.intern(frozenset(env))

    def test_distinct_environments_distinct_ids(self):
        arena = EnvArena()
        first = arena.intern(_env(("a", "A")))
        second = arena.intern(_env(("b", "B")))
        assert first != second
        assert len(arena) == 2

    def test_members_round_trip(self):
        env = _env(("a", "A"), ("f", "A -> B"), ("g", "A -> B -> C"))
        arena = EnvArena(env)
        assert arena.members(arena.intern(env)) == env


class TestStrip:
    def test_primitive_target_keeps_environment(self):
        env = _env(("a", "A"))
        arena = EnvArena(env)
        env_id = arena.intern(env)
        assert arena.strip(primitive("B"), env_id) == ("B", env_id)

    def test_subset_arguments_keep_environment(self):
        env = _env(("a", "A"), ("f", "A -> B"))
        arena = EnvArena(env)
        env_id = arena.intern(env)
        target = succinct({primitive("A")}, "B")   # {A} -> B; A is a member
        result, extended = arena.strip(target, env_id)
        assert result == "B"
        assert extended == env_id

    def test_new_arguments_extend_environment(self):
        env = _env(("a", "A"))
        arena = EnvArena(env)
        env_id = arena.intern(env)
        target = succinct({primitive("Z")}, "B")
        result, extended = arena.strip(target, env_id)
        assert result == "B"
        assert extended != env_id
        assert primitive("Z") in arena.members(extended)

    def test_transition_memo_hits(self):
        env = _env(("a", "A"))
        arena = EnvArena(env)
        env_id = arena.intern(env)
        target = succinct({primitive("Z")}, "B")
        first = arena.strip(target, env_id)
        misses = arena.transition_misses
        second = arena.strip(target, env_id)
        assert first == second
        assert arena.transition_misses == misses
        assert arena.transition_hits >= 1

    def test_incremental_index_matches_full_sort(self):
        env = _env(("a", "A"), ("f", "A -> B"), ("g", "B -> B"),
                   ("h", "A -> B -> C"))
        arena = EnvArena(env)
        env_id = arena.intern(env)
        target = succinct({primitive("Z"), succinct({primitive("Z")}, "B")},
                          "C")
        _, extended = arena.strip(target, env_id)
        merged = arena.members_returning(extended, "B")
        # The merged group must equal a from-scratch sort+group of the
        # extended environment.
        extended_env = arena.members(extended)
        expected = tuple(sorted(
            (member for member in extended_env if member.result == "B"),
            key=sort_key))
        assert merged == expected
        assert arena.index_merges >= 1


class TestLifecycle:
    def test_oversized_flags_past_bound(self):
        arena = EnvArena(max_envs=1)
        arena.intern(_env(("a", "A")))
        assert not arena.oversized()
        arena.intern(_env(("b", "B")))
        assert arena.oversized()

    def test_environment_replaces_oversized_arena(self):
        environment = simple_env(("a", "A"), ("f", "A -> B"))
        arena = environment.succinct_arena()
        arena.max_envs = 0  # force: any content is now oversized
        arena.intern(_env(("z", "C")))
        replacement = environment.succinct_arena()
        assert replacement is not arena
        assert environment.succinct_arena() is replacement

    def test_release_retires_and_detaches(self):
        environment = simple_env(("a", "A"))
        arena = environment.succinct_arena()
        before = arena_stats()["retired_arenas"]
        environment.release_arena()
        assert arena_stats()["retired_arenas"] == before + 1
        assert environment.succinct_arena() is not arena

    def test_retire_is_idempotent(self):
        arena = EnvArena(_env(("a", "A")))
        before = arena_stats()["retired_arenas"]
        arena.retire()
        arena.retire()
        assert arena_stats()["retired_arenas"] == before + 1

    def test_stats_shape(self):
        arena = EnvArena(_env(("a", "A"), ("f", "A -> B")))
        stats = arena.stats()
        assert stats["env_count"] == 1
        assert set(stats) == {"env_count", "max_envs", "transitions",
                              "transition_hits", "transition_misses",
                              "index_merges"}
        aggregate = arena_stats()
        for key in ("live_arenas", "env_count", "transition_memo_hits",
                    "transition_memo_misses", "index_merges",
                    "retired_arenas", "retired_envs"):
            assert key in aggregate

    def test_type_ids_stable_and_distinct(self):
        first = primitive("A")
        second = succinct({primitive("A")}, "B")
        assert type_id(first) == type_id(primitive("A"))
        assert type_id(first) != type_id(second)

    def test_environment_pickles_without_arena(self):
        import pickle

        environment = simple_env(("a", "A"), ("f", "A -> B"))
        environment.succinct_arena()
        clone = pickle.loads(pickle.dumps(environment))
        assert clone._arena is None
        assert clone.succinct_environment() == \
            environment.succinct_environment()
        assert isinstance(clone.succinct_arena(), EnvArena)


class TestSimpleTypeIds:
    def test_ids_stable_and_distinct(self):
        from repro.core.space import simple_type_id
        from repro.core.types import arrow, base

        a1 = arrow(base("SA"), base("SB"))
        a2 = arrow(base("SA"), base("SB"))
        other = arrow(base("SB"), base("SA"))
        assert a1 is not a2
        assert simple_type_id(a1) == simple_type_id(a2)
        assert simple_type_id(a1) != simple_type_id(other)
        # Second lookup is served from the instance cache.
        assert simple_type_id(a1) == simple_type_id(a1)

    def test_trim_keeps_instance_ids_and_never_reuses(self):
        from repro.core.space import (simple_type_id, simple_type_stats,
                                      trim_simple_type_ids)
        from repro.core.types import arrow, base

        kept = arrow(base("TrimKeep"), base("TrimKeep2"))
        kept_id = simple_type_id(kept)
        trim_simple_type_ids(0)
        # The instance keeps its id; a fresh structural twin gets a new
        # one (never a reused one).
        assert simple_type_id(kept) == kept_id
        twin = arrow(base("TrimKeep"), base("TrimKeep2"))
        twin_id = simple_type_id(twin)
        assert twin_id > kept_id
        stats = simple_type_stats()
        assert stats["ids_assigned"] > stats["size"] >= 1

    def test_pickle_never_ships_cached_ids(self):
        import pickle

        from repro.core.space import simple_type_id
        from repro.core.types import arrow, base

        tpe = arrow(base("PickleA"), base("PickleB"))
        simple_type_id(tpe)
        simple_type_id(tpe.argument)
        clone = pickle.loads(pickle.dumps(tpe))
        assert "_simple_type_id" not in clone.__dict__
        assert "_simple_type_id" not in clone.argument.__dict__
        assert clone == tpe
