"""Unit tests for repro.core.explore (backward search, Fig. 6/7)."""

from repro.core.explore import (ReachabilityEdge, Request, child_request,
                                explore, strip)
from repro.core.succinct import primitive, sigma, succinct
from repro.core.types import arrow, base, parse

A, B, C = base("A"), base("B"), base("C")


def _env(*types):
    return frozenset(sigma(parse(t)) for t in types)


class TestStrip:
    def test_base_goal_unchanged_environment(self):
        env = _env("A")
        request = strip(primitive("B"), env)
        assert request == Request("B", env)

    def test_function_goal_extends_environment(self):
        env = _env("A")
        goal = sigma(parse("B -> C"))
        request = strip(goal, env)
        assert request.target == "C"
        assert request.env == env | {primitive("B")}

    def test_higher_order_goal(self):
        env = _env("A")
        goal = sigma(parse("(A -> B) -> C"))
        request = strip(goal, env)
        assert sigma(parse("A -> B")) in request.env

    def test_child_request_is_prop_plus_strip(self):
        env = _env("A")
        premise = sigma(parse("A -> B"))
        child = child_request(premise, env)
        assert child.target == "B"
        assert child.env == env | {primitive("A")}


class TestExplore:
    def test_trivial_goal_in_environment(self):
        env = _env("A")
        space = explore(env, primitive("A"))
        assert space.root.target == "A"
        assert len(space.edges[space.root]) == 1
        assert space.edges[space.root][0].source == primitive("A")

    def test_unreachable_goal_has_no_edges(self):
        env = _env("A")
        space = explore(env, primitive("Z"))
        assert space.edges[space.root] == ()

    def test_chain_is_followed(self):
        # a : A,  f : A -> B,  g : B -> C;  goal C
        env = _env("A", "A -> B", "B -> C")
        space = explore(env, primitive("C"))
        targets = {request.target for request in space.nodes()}
        assert targets == {"C", "B", "A"}

    def test_only_reachable_space_explored(self):
        # x : X is irrelevant to goal B.
        env = _env("A", "A -> B", "X", "X -> Y")
        space = explore(env, primitive("B"))
        targets = {request.target for request in space.nodes()}
        assert "Y" not in targets
        assert "X" not in targets

    def test_edge_children_match_premises(self):
        env = _env("A", "A -> B")
        space = explore(env, primitive("B"))
        edge = space.edges[space.root][0]
        assert edge.source == sigma(parse("A -> B"))
        children = edge.children()
        assert len(children) == 1
        assert children[0].target == "A"

    def test_higher_order_environment_extension(self):
        # apply : (A -> B) -> B.  Exploring B requests (A -> B), which strips
        # to B in an environment extended with A.
        env = _env("(A -> B) -> B")
        space = explore(env, primitive("B"))
        extended_envs = [request.env for request in space.nodes()
                         if primitive("A") in request.env]
        assert extended_envs, "expected an environment extended by STRIP"

    def test_cycles_terminate(self):
        # f : A -> B, g : B -> A — cyclic reachability must terminate.
        env = _env("A -> B", "B -> A")
        space = explore(env, primitive("A"))
        assert len(space.nodes()) == 2

    def test_self_recursive_declaration_terminates(self):
        env = _env("A -> A")
        space = explore(env, primitive("A"))
        assert len(space.nodes()) == 1
        assert len(space.edges[space.root]) == 1

    def test_max_nodes_truncates(self):
        env = _env("A", "A -> B", "B -> C")
        space = explore(env, primitive("C"), max_nodes=1)
        assert space.truncated

    def test_visit_order_recorded(self):
        env = _env("A", "A -> B")
        space = explore(env, primitive("B"))
        assert space.order[0] == space.root

    def test_priority_discipline_changes_order(self):
        # Two premises for the goal; priority should visit the cheap one
        # first.  B <- A (cheap=0) and B <- X (pricey=100).
        env = _env("A", "X", "A -> B", "X -> B")
        costs = {primitive("A"): 0.0, primitive("X"): 100.0}

        def priority(stype):
            return costs.get(stype, 50.0)

        space = explore(env, primitive("B"), priority=priority)
        order = [request.target for request in space.order]
        assert order.index("A") < order.index("X")

    def test_on_edges_callback_sees_every_edge(self):
        env = _env("A", "A -> B")
        seen = []
        space = explore(env, primitive("B"), on_edges=seen.extend)
        flat = [edge for edge in seen]
        assert sorted(map(str, flat)) == sorted(map(str, space.all_edges()))

    def test_edge_count(self):
        env = _env("A", "A -> B", "B")
        space = explore(env, primitive("B"))
        assert space.edge_count() == len(space.all_edges())
