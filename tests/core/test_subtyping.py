"""Unit tests for repro.core.subtyping (coercion functions, §6)."""

from repro.core.environment import DeclKind, Environment
from repro.core.subtyping import (SubtypeGraph, coercion_declarations,
                                  coercion_name, count_coercions,
                                  environment_with_subtyping, erase_coercions,
                                  is_coercion_name)
from repro.core.terms import Binder, LNFTerm, lnf
from repro.core.types import arrow, base, parse


class TestSubtypeGraph:
    def test_reflexive(self):
        graph = SubtypeGraph()
        assert graph.is_subtype("A", "A")

    def test_direct_edge(self):
        graph = SubtypeGraph()
        graph.add_edge("Sub", "Super")
        assert graph.is_subtype("Sub", "Super")
        assert not graph.is_subtype("Super", "Sub")

    def test_transitive(self):
        graph = SubtypeGraph()
        graph.add_chain("A", "B", "C")
        assert graph.is_subtype("A", "C")

    def test_self_edge_ignored(self):
        graph = SubtypeGraph()
        graph.add_edge("A", "A")
        assert len(graph) == 0

    def test_supertypes_of(self):
        graph = SubtypeGraph()
        graph.add_chain("FileInputStream", "InputStream", "Object")
        assert graph.supertypes_of("FileInputStream") == {
            "FileInputStream", "InputStream", "Object"}

    def test_edges_deterministic(self):
        graph = SubtypeGraph()
        graph.add_edge("B", "C")
        graph.add_edge("A", "C")
        assert graph.edges() == [("A", "C"), ("B", "C")]

    def test_cycle_detection(self):
        graph = SubtypeGraph()
        graph.add_edge("A", "B")
        assert not graph.has_cycle()
        graph.add_edge("B", "A")
        assert graph.has_cycle()

    def test_arrow_subtyping_contravariant(self):
        graph = SubtypeGraph()
        graph.add_edge("Sub", "Super")
        # Super -> Sub  <:  Sub -> Super
        left = arrow(base("Super"), base("Sub"))
        right = arrow(base("Sub"), base("Super"))
        assert graph.is_subtype_type(left, right)
        assert not graph.is_subtype_type(right, left)


class TestCoercionDeclarations:
    def test_one_declaration_per_edge(self):
        graph = SubtypeGraph()
        graph.add_chain("A", "B", "C")
        declarations = coercion_declarations(graph)
        assert len(declarations) == 2
        assert all(decl.kind is DeclKind.COERCION for decl in declarations)

    def test_declaration_type_is_unary_arrow(self):
        graph = SubtypeGraph()
        graph.add_edge("Sub", "Super")
        (decl,) = coercion_declarations(graph)
        assert decl.type == parse("Sub -> Super")
        assert decl.name == coercion_name("Sub", "Super")

    def test_environment_with_subtyping(self):
        graph = SubtypeGraph()
        graph.add_edge("Sub", "Super")
        env = Environment([])
        extended = environment_with_subtyping(env, graph)
        assert len(extended) == 1

    def test_no_edges_returns_same_environment(self):
        env = Environment([])
        assert environment_with_subtyping(env, SubtypeGraph()) is env


class TestErasure:
    def test_coercion_names_recognised(self):
        assert is_coercion_name(coercion_name("A", "B"))
        assert not is_coercion_name("FileInputStream.new")

    def test_simple_erasure(self):
        inner = lnf("x")
        wrapped = lnf(coercion_name("Sub", "Super"), inner)
        assert erase_coercions(wrapped) == inner

    def test_nested_erasure(self):
        term = lnf("f", lnf(coercion_name("A", "B"), lnf("a")))
        erased = erase_coercions(term)
        assert erased == lnf("f", lnf("a"))

    def test_chained_coercions_erase_fully(self):
        term = lnf(coercion_name("B", "C"),
                   lnf(coercion_name("A", "B"), lnf("a")))
        assert erase_coercions(term) == lnf("a")

    def test_binders_preserved_on_erasure(self):
        binder = Binder("x", base("A"))
        term = LNFTerm((binder,), coercion_name("A", "B"), (lnf("x"),))
        erased = erase_coercions(term)
        assert erased.binders == (binder,)
        assert erased.head == "x"

    def test_count_coercions(self):
        term = lnf("f", lnf(coercion_name("A", "B"), lnf("a")),
                   lnf(coercion_name("C", "D"), lnf("c")))
        assert count_coercions(term) == 2
        assert count_coercions(erase_coercions(term)) == 0
