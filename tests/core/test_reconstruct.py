"""Unit tests for repro.core.reconstruct (GenerateT, Fig. 10)."""

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.explore import explore
from repro.core.generate_patterns import generate_patterns
from repro.core.reconstruct import (AppNode, HoleNode, Reconstructor,
                                    find_first_hole, hole_count, is_complete,
                                    reconstruct, substitute_hole, to_lnf)
from repro.core.succinct import sigma
from repro.core.terms import Binder, lnf_depth, lnf_heads
from repro.core.types import arrow, base, parse
from repro.core.weights import WeightPolicy

A, B, C = base("A"), base("B"), base("C")


def _pipeline(declarations, goal_text):
    env = Environment(declarations)
    goal = parse(goal_text)
    space = explore(env.succinct_environment(), sigma(goal))
    patterns = generate_patterns(space)
    return env, goal, patterns


def _decl(name, text, kind=DeclKind.LOCAL, frequency=0):
    return Declaration(name, parse(text), kind, frequency=frequency)


class TestPartialNodes:
    def test_hole_is_incomplete(self):
        assert not is_complete(HoleNode(0, A))

    def test_application_without_holes_is_complete(self):
        node = AppNode((), "a", ())
        assert is_complete(node)

    def test_hole_count(self):
        node = AppNode((), "f", (HoleNode(0, A), HoleNode(1, B)))
        assert hole_count(node) == 2

    def test_find_first_hole_leftmost(self):
        node = AppNode((), "f", (HoleNode(0, A), HoleNode(1, B)))
        found = find_first_hole(node)
        assert found is not None
        _, hole = found
        assert hole.hole_id == 0

    def test_find_first_hole_collects_binders(self):
        binder = Binder("x", A)
        node = AppNode((binder,), "f", (HoleNode(0, B),))
        path_binders, _ = find_first_hole(node)
        assert path_binders == (binder,)

    def test_find_first_hole_none_when_complete(self):
        assert find_first_hole(AppNode((), "a", ())) is None

    def test_substitute_hole(self):
        node = AppNode((), "f", (HoleNode(0, A),))
        replacement = AppNode((), "a", ())
        replaced = substitute_hole(node, 0, replacement)
        assert is_complete(replaced)
        assert to_lnf(replaced).arguments[0].head == "a"

    def test_to_lnf_rejects_holes(self):
        import pytest

        with pytest.raises(ValueError):
            to_lnf(HoleNode(0, A))


class TestReconstruction:
    def test_single_constant(self):
        env, goal, patterns = _pipeline([_decl("a", "A")], "A")
        snippets = reconstruct(patterns, env, goal, WeightPolicy.standard())
        assert [s.term.head for s in snippets] == ["a"]

    def test_application_chain(self):
        env, goal, patterns = _pipeline(
            [_decl("a", "A"), _decl("f", "A -> B")], "B")
        snippets = reconstruct(patterns, env, goal, WeightPolicy.standard())
        assert len(snippets) == 1
        assert lnf_heads(snippets[0].term) == ("f", "a")

    def test_weights_order_output(self):
        env, goal, patterns = _pipeline(
            [_decl("cheap", "B", DeclKind.LOCAL),
             _decl("pricey", "B", DeclKind.IMPORTED),
             _decl("a", "A"), _decl("f", "A -> B", DeclKind.CLASS_MEMBER)],
            "B")
        snippets = reconstruct(patterns, env, goal, WeightPolicy.standard())
        heads = [s.term.head for s in snippets]
        assert heads[0] == "cheap"          # 5
        assert heads[1] == "f"              # 20 + 5
        assert heads[2] == "pricey"         # 1000
        weights = [s.weight for s in snippets]
        assert weights == sorted(weights)

    def test_infinite_solutions_enumerable(self):
        # a : A, f : A -> A gives a, f a, f (f a), ...
        env, goal, patterns = _pipeline(
            [_decl("a", "A"), _decl("f", "A -> A")], "A")
        snippets = reconstruct(patterns, env, goal, WeightPolicy.standard(),
                               limit=5)
        assert len(snippets) == 5
        depths = sorted(lnf_depth(s.term) for s in snippets)
        assert depths == [1, 2, 3, 4, 5]

    def test_higher_order_goal_introduces_binders(self):
        # goal A -> B with f : A -> B: expect \x. f x.
        env, goal, patterns = _pipeline([_decl("f", "A -> B")], "A -> B")
        snippets = reconstruct(patterns, env, goal, WeightPolicy.standard(),
                               limit=1)
        term = snippets[0].term
        assert len(term.binders) == 1
        assert term.head == "f"
        assert term.arguments[0].head == term.binders[0].name

    def test_binder_used_as_leaf(self):
        # goal A -> A: the identity \x. x must be found even with no decls.
        env, goal, patterns = _pipeline([_decl("unused", "Z")], "A -> A")
        snippets = reconstruct(patterns, env, goal, WeightPolicy.standard(),
                               limit=1)
        term = snippets[0].term
        assert term.head == term.binders[0].name

    def test_higher_order_argument(self):
        # h : (A -> B) -> C, f : A -> B; goal C: expect h (\x. f x).
        env, goal, patterns = _pipeline(
            [_decl("h", "(A -> B) -> C"), _decl("f", "A -> B")], "C")
        snippets = reconstruct(patterns, env, goal, WeightPolicy.standard(),
                               limit=1)
        term = snippets[0].term
        assert term.head == "h"
        inner = term.arguments[0]
        assert inner.head == "f"
        assert len(inner.binders) == 1

    def test_multiple_arguments_all_filled(self):
        env, goal, patterns = _pipeline(
            [_decl("a", "A"), _decl("b", "B"), _decl("f", "A -> B -> C")],
            "C")
        snippets = reconstruct(patterns, env, goal, WeightPolicy.standard(),
                               limit=1)
        assert lnf_heads(snippets[0].term) == ("f", "a", "b")

    def test_same_succinct_type_different_arity(self):
        # f : A -> B and g : A -> A -> B share succinct type {A} -> B; both
        # must be reconstructed with their true arity.
        env, goal, patterns = _pipeline(
            [_decl("a", "A"), _decl("f", "A -> B"), _decl("g", "A -> A -> B")],
            "B")
        snippets = reconstruct(patterns, env, goal, WeightPolicy.standard(),
                               limit=10)
        by_head = {s.term.head: s.term for s in snippets}
        assert len(by_head["f"].arguments) == 1
        assert len(by_head["g"].arguments) == 2

    def test_no_snippets_for_uninhabited(self):
        env, goal, patterns = _pipeline([_decl("f", "A -> B")], "B")
        snippets = reconstruct(patterns, env, goal, WeightPolicy.standard())
        assert snippets == []

    def test_max_steps_truncates(self):
        env, goal, patterns = _pipeline(
            [_decl("a", "A"), _decl("f", "A -> A")], "A")
        reconstructor = Reconstructor(patterns, env, WeightPolicy.standard(),
                                      max_steps=3)
        list(reconstructor.enumerate(goal))
        assert reconstructor.stats.truncated

    def test_determinism(self):
        declarations = [_decl("a", "A"), _decl("b", "A"),
                        _decl("f", "A -> B"), _decl("g", "A -> B")]
        env, goal, patterns = _pipeline(declarations, "B")
        first = [s.term for s in
                 reconstruct(patterns, env, goal, WeightPolicy.standard())]
        env2, goal2, patterns2 = _pipeline(declarations, "B")
        second = [s.term for s in
                  reconstruct(patterns2, env2, goal2, WeightPolicy.standard())]
        assert first == second


class TestPackedFrontier:
    """Unit tests for the spine/cursor structure behind the packed
    Reconstructor (frames, scopes, incremental bookkeeping)."""

    def _packed(self, declarations, goal_text, **kwargs):
        env, goal, patterns = _pipeline(declarations, goal_text)
        return env, goal, Reconstructor(patterns, env,
                                        WeightPolicy.standard(), **kwargs)

    def test_deep_nesting_assembles_in_preorder(self):
        # g : C, f : C -> B, h : B -> A builds h (f g) purely through
        # frame pushes/pops; the assembled term must match the tree shape.
        env, goal, reconstructor = self._packed(
            [_decl("g", "C"), _decl("f", "C -> B"), _decl("h", "B -> A")],
            "A")
        snippets = list(reconstructor.enumerate(goal))
        assert len(snippets) == 1
        from repro.core.terms import lnf_heads
        assert lnf_heads(snippets[0].term) == ("h", "f", "g")

    def test_sibling_holes_fill_left_to_right(self):
        # f : A -> B -> A -> C exercises an ancestor frame that regains
        # the cursor twice after child completions.
        env, goal, reconstructor = self._packed(
            [_decl("a", "A"), _decl("b", "B"),
             _decl("f", "A -> B -> A -> C")], "C")
        snippets = list(reconstructor.enumerate(goal))
        term = snippets[0].term
        assert term.head == "f"
        assert tuple(argument.head for argument in term.arguments) == \
            ("a", "b", "a")

    def test_scopes_interned_per_binder_path(self):
        env, goal, reconstructor = self._packed(
            [_decl("h", "(A -> B) -> C"), _decl("f", "A -> B")], "C")
        list(reconstructor.enumerate(goal))
        # Root scope plus one scope per distinct realized binder tuple.
        assert () in reconstructor._scopes
        binder_scopes = [scope for path, scope
                         in reconstructor._scopes.items() if path]
        assert binder_scopes
        for scope in binder_scopes:
            assert scope.has_binders
            assert scope.binder_sigmas

    def test_incremental_size_matches_term_size(self):
        # max_term_size uses the incrementally tracked node count; a cap
        # exactly at the solution size admits it, one below rejects it.
        declarations = [_decl("a", "A"), _decl("f", "A -> B")]
        for cap, expected in ((2, 1), (1, 0)):
            env, goal, reconstructor = self._packed(
                declarations, "B", max_term_size=cap, max_steps=50)
            assert len(list(reconstructor.enumerate(goal))) == expected

    def test_cross_query_candidate_memo_is_deterministic(self):
        # Two fresh reconstructors over one environment share the
        # candidate-list memo; the second (warm) run must draw the same
        # fresh names and emit identical terms.
        declarations = [_decl("a", "A"), _decl("f", "A -> B"),
                        _decl("g", "A -> A -> B")]
        env, goal, patterns = _pipeline(declarations, "B")
        first = list(Reconstructor(patterns, env, WeightPolicy.standard(),
                                   max_steps=200).enumerate(goal))
        assert env.candidate_list_memo(WeightPolicy.standard())
        second = list(Reconstructor(patterns, env, WeightPolicy.standard(),
                                    max_steps=200).enumerate(goal))
        assert [s.term for s in first] == [s.term for s in second]
        assert [s.weight for s in first] == [s.weight for s in second]

    def test_reference_reconstructor_agrees_on_unit_scene(self):
        from repro.core.reconstruct import reconstruct_reference

        declarations = [_decl("a", "A"), _decl("f", "A -> A")]
        env, goal, patterns = _pipeline(declarations, "A")
        packed = reconstruct(patterns, env, goal, WeightPolicy.standard(),
                             limit=6)
        env2, goal2, patterns2 = _pipeline(declarations, "A")
        reference = reconstruct_reference(patterns2, env2, goal2,
                                          WeightPolicy.standard(), limit=6)
        assert [(s.term, s.weight, s.order) for s in packed] == \
            [(s.term, s.weight, s.order) for s in reference]
