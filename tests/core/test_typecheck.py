"""Unit tests for repro.core.typecheck."""

import pytest

from repro.core.errors import TypeCheckError, UnknownDeclarationError
from repro.core.subtyping import SubtypeGraph
from repro.core.terms import (Abstraction, Application, Binder, LNFTerm,
                              Variable, lnf)
from repro.core.typecheck import (check_lnf, check_lnf_subsumed, check_term,
                                  infer_type, lnf_type_checks)
from repro.core.types import arrow, base

A, B, C = base("A"), base("B"), base("C")


class TestInferType:
    def test_variable(self):
        assert infer_type(Variable("a"), {"a": A}) == A

    def test_unbound_variable(self):
        with pytest.raises(UnknownDeclarationError):
            infer_type(Variable("a"), {})

    def test_abstraction(self):
        term = Abstraction("x", A, Variable("x"))
        assert infer_type(term, {}) == arrow(A, A)

    def test_application(self):
        term = Application(Variable("f"), Variable("a"))
        assert infer_type(term, {"f": arrow(A, B), "a": A}) == B

    def test_application_of_non_function(self):
        term = Application(Variable("a"), Variable("a"))
        with pytest.raises(TypeCheckError):
            infer_type(term, {"a": A})

    def test_argument_mismatch(self):
        term = Application(Variable("f"), Variable("b"))
        with pytest.raises(TypeCheckError):
            infer_type(term, {"f": arrow(A, B), "b": B})

    def test_check_term(self):
        check_term(Variable("a"), A, {"a": A})
        with pytest.raises(TypeCheckError):
            check_term(Variable("a"), B, {"a": A})


class TestCheckLNF:
    def test_constant(self):
        check_lnf(lnf("a"), A, {"a": A})

    def test_application(self):
        check_lnf(lnf("f", lnf("a")), B, {"f": arrow(A, B), "a": A})

    def test_partial_application_rejected(self):
        # f : A -> B -> C applied to one argument is not in LNF.
        with pytest.raises(TypeCheckError):
            check_lnf(lnf("f", lnf("a")), arrow(B, C),
                      {"f": arrow(A, B, C), "a": A})

    def test_abstraction_binders_must_match(self):
        term = LNFTerm((Binder("x", A),), "f", (lnf("x"),))
        check_lnf(term, arrow(A, B), {"f": arrow(A, B)})
        with pytest.raises(TypeCheckError):
            check_lnf(term, arrow(B, B), {"f": arrow(A, B)})

    def test_wrong_result_type(self):
        with pytest.raises(TypeCheckError):
            check_lnf(lnf("a"), B, {"a": A})

    def test_unbound_head(self):
        with pytest.raises(UnknownDeclarationError):
            check_lnf(lnf("ghost"), A, {})

    def test_binder_shadow_scoping(self):
        # \x:A. f x with f : A -> B — binder visible inside arguments.
        term = LNFTerm((Binder("x", A),), "f", (lnf("x"),))
        check_lnf(term, arrow(A, B), {"f": arrow(A, B)})

    def test_higher_order_argument(self):
        # h (\x. f x) : C with h : (A -> B) -> C.
        inner = LNFTerm((Binder("x", A),), "f", (lnf("x"),))
        term = lnf("h", inner)
        check_lnf(term, C, {"h": arrow(arrow(A, B), C), "f": arrow(A, B)})


class TestCheckLNFSubsumed:
    def _graph(self):
        graph = SubtypeGraph()
        graph.add_chain("Sub", "Mid", "Super")
        return graph

    def test_result_subsumption(self):
        check_lnf_subsumed(lnf("s"), base("Super"), {"s": base("Sub")},
                           self._graph())

    def test_argument_subsumption(self):
        scope = {"f": arrow(base("Super"), B), "s": base("Sub")}
        check_lnf_subsumed(lnf("f", lnf("s")), B, scope, self._graph())

    def test_unrelated_types_rejected(self):
        with pytest.raises(TypeCheckError):
            check_lnf_subsumed(lnf("s"), base("Other"), {"s": base("Sub")},
                               self._graph())

    def test_wrong_direction_rejected(self):
        with pytest.raises(TypeCheckError):
            check_lnf_subsumed(lnf("s"), base("Sub"), {"s": base("Super")},
                               self._graph())

    def test_boolean_wrapper(self):
        assert lnf_type_checks(lnf("a"), A, {"a": A})
        assert not lnf_type_checks(lnf("a"), B, {"a": A})
        assert lnf_type_checks(lnf("s"), base("Super"), {"s": base("Sub")},
                               self._graph())
