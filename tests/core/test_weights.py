"""Unit tests for repro.core.weights (Table 1 of the paper)."""

import math

import pytest

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.succinct import primitive, sigma, succinct
from repro.core.terms import Binder, LNFTerm, lnf
from repro.core.types import arrow, base
from repro.core.weights import HOLE_WEIGHT, WeightPolicy

A, B = base("A"), base("B")


def _decl(name, tpe, kind, frequency=0):
    return Declaration(name, tpe, kind, frequency=frequency)


class TestTable1Constants:
    """The published weight constants, verbatim from Table 1."""

    policy = WeightPolicy.standard()

    @pytest.mark.parametrize("kind,expected", [
        (DeclKind.LAMBDA, 1.0),
        (DeclKind.LOCAL, 5.0),
        (DeclKind.COERCION, 10.0),
        (DeclKind.CLASS_MEMBER, 20.0),
        (DeclKind.PACKAGE_MEMBER, 25.0),
        (DeclKind.LITERAL, 200.0),
    ])
    def test_fixed_kind_weights(self, kind, expected):
        assert self.policy.declaration_weight(_decl("d", A, kind)) == expected

    def test_imported_unseen_symbol_costs_1000(self):
        decl = _decl("d", A, DeclKind.IMPORTED, frequency=0)
        assert self.policy.declaration_weight(decl) == 215.0 + 785.0

    def test_imported_weight_decreases_with_frequency(self):
        weights = [
            self.policy.declaration_weight(
                _decl("d", A, DeclKind.IMPORTED, frequency=f))
            for f in [0, 1, 10, 100, 5162]
        ]
        assert weights == sorted(weights, reverse=True)

    def test_imported_weight_approaches_base(self):
        decl = _decl("d", A, DeclKind.IMPORTED, frequency=10_000_000)
        assert abs(self.policy.declaration_weight(decl) - 215.0) < 0.01

    def test_imported_formula_exact(self):
        decl = _decl("d", A, DeclKind.IMPORTED, frequency=99)
        assert self.policy.declaration_weight(decl) == 215.0 + 785.0 / 100.0


class TestVariants:
    def test_uniform_policy_flattens_everything(self):
        policy = WeightPolicy.uniform_policy()
        for kind in DeclKind:
            assert policy.declaration_weight(_decl("d", A, kind)) == 1.0

    def test_without_corpus_ignores_frequency(self):
        policy = WeightPolicy.without_corpus()
        high = _decl("h", A, DeclKind.IMPORTED, frequency=5000)
        low = _decl("l", A, DeclKind.IMPORTED, frequency=0)
        assert policy.declaration_weight(high) == policy.declaration_weight(low)
        assert policy.declaration_weight(high) == 1000.0

    def test_without_corpus_keeps_locality(self):
        policy = WeightPolicy.without_corpus()
        local = _decl("l", A, DeclKind.LOCAL)
        imported = _decl("i", A, DeclKind.IMPORTED, frequency=5000)
        assert policy.declaration_weight(local) < policy.declaration_weight(imported)

    def test_with_constants_override(self):
        policy = WeightPolicy.standard().with_constants(local_weight=7.0)
        assert policy.declaration_weight(_decl("d", A, DeclKind.LOCAL)) == 7.0


class TestTermWeight:
    def test_hole_weight_is_zero(self):
        assert HOLE_WEIGHT == 0.0

    def test_single_head(self):
        env = Environment([_decl("a", A, DeclKind.LOCAL)])
        policy = WeightPolicy.standard()
        assert policy.term_weight(lnf("a"), env) == 5.0

    def test_sum_over_structure(self):
        env = Environment([
            _decl("f", arrow(A, B), DeclKind.IMPORTED, frequency=0),
            _decl("a", A, DeclKind.LOCAL),
        ])
        policy = WeightPolicy.standard()
        term = lnf("f", lnf("a"))
        assert policy.term_weight(term, env) == 1000.0 + 5.0

    def test_binders_count_as_lambda(self):
        env = Environment([_decl("f", arrow(A, B), DeclKind.LOCAL)])
        policy = WeightPolicy.standard()
        term = LNFTerm((Binder("x", A),), "f", (lnf("x"),))
        # binder (1) + head f (5) + binder reference treated as lambda (1)
        assert policy.term_weight(term, env) == 1.0 + 5.0 + 1.0


class TestTypeWeight:
    def test_min_over_select(self):
        env = Environment([
            _decl("cheap", A, DeclKind.LOCAL),
            _decl("pricey", A, DeclKind.IMPORTED, frequency=0),
        ])
        policy = WeightPolicy.standard()
        assert policy.type_weight(primitive("A"), env) == 5.0

    def test_unselectable_type_is_infinite(self):
        env = Environment([_decl("a", A, DeclKind.LOCAL)])
        policy = WeightPolicy.standard()
        assert math.isinf(policy.type_weight(primitive("Z"), env))
