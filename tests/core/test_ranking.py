"""The post-reconstruction ranking pipeline: contexts, weighers, chain.

Unit-level: weighers are pure functions of (snippet, environment,
context, frequencies), so most tests build tiny snippets by hand.  The
integration-level checks run the real synthesizer over a small scene and
assert the chain's observable contract — same-object parity when nothing
applies, stable re-sort and renumbered ranks when something does.
"""

import dataclasses

import pytest

from repro.core.environment import (Declaration, DeclKind, Environment,
                                    RenderSpec, RenderStyle)
from repro.core.ranking import (CONTEXT_FIELDS, CompletionContext,
                                ConstructorBoostWeigher, ContextError,
                                EMPTY_CONTEXT, KindWeigher, POSITION_KINDS,
                                ProjectFrequencyWeigher, RankingPipeline,
                                ReceiverAffinityWeigher, ScopeDistanceWeigher,
                                declaration_owner, pipeline_from_names,
                                term_heads, type_name_matches,
                                used_declarations)
from repro.core.synthesizer import Snippet, SynthesisResult
from repro.core.terms import Binder, lnf
from repro.core.types import BaseType

STRING = BaseType("String")
FILE = BaseType("File")


def _decl(name, kind=DeclKind.IMPORTED, style=RenderStyle.METHOD):
    return Declaration(name, STRING, kind=kind,
                       render=RenderSpec(style=style, display=name))


def _env(*decls):
    return Environment(decls)


def _snippet(term, weight, rank, code="code"):
    return Snippet(term=term, surface_term=term, weight=weight, rank=rank,
                   code=code)


def _result(*snippets):
    return SynthesisResult(snippets=list(snippets), inhabited=True)


class TestCompletionContext:
    def test_round_trip(self):
        context = CompletionContext.from_payload(
            {"receiver_type": "java.io.File", "position_kind": "after_new"})
        assert context.receiver_type == "java.io.File"
        assert context.enclosing_class is None
        assert not context.is_empty
        assert context.to_payload() == {"receiver_type": "java.io.File",
                                        "position_kind": "after_new"}

    def test_empty_payload_is_empty_context(self):
        assert CompletionContext.from_payload({}).is_empty
        assert EMPTY_CONTEXT.to_payload() == {}

    def test_unknown_key_is_rejected_with_accepted_list(self):
        with pytest.raises(ContextError) as excinfo:
            CompletionContext.from_payload({"reciever_type": "File"})
        message = str(excinfo.value)
        assert "reciever_type" in message
        for accepted in CONTEXT_FIELDS:
            assert accepted in message

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(ContextError):
            CompletionContext.from_payload("after_new")

    def test_empty_string_values_are_rejected(self):
        with pytest.raises(ContextError):
            CompletionContext.from_payload({"receiver_type": ""})
        with pytest.raises(ContextError):
            CompletionContext.from_payload({"enclosing_class": 7})

    def test_position_kind_whitelist(self):
        for kind in POSITION_KINDS:
            assert CompletionContext.from_payload(
                {"position_kind": kind}).position_kind == kind
        with pytest.raises(ContextError):
            CompletionContext.from_payload({"position_kind": "after_dot"})

    def test_context_fields_track_the_dataclass(self):
        assert set(CONTEXT_FIELDS) == {
            f.name for f in dataclasses.fields(CompletionContext)}


class TestTermHelpers:
    def test_term_heads_walk_nested_arguments(self):
        term = lnf("outer", lnf("a"), lnf("b", lnf("c")))
        assert list(term_heads(term)) == ["outer", "a", "b", "c"]

    def test_used_declarations_distinct_and_binder_free(self):
        env = _env(_decl("f"), Declaration("x", STRING, kind=DeclKind.LOCAL))
        term = lnf("f", lnf("x"), lnf("x"), lnf("bound"),
                   binders=(Binder("bound", STRING),))
        used = used_declarations(term, env)
        assert [decl.name for decl in used] == ["f", "x"]

    def test_declaration_owner(self):
        assert declaration_owner(_decl("java.io.File.exists")) == \
            "java.io.File"
        assert declaration_owner(_decl("name")) == ""

    def test_type_name_matches_qualified_and_simple(self):
        assert type_name_matches("java.io.File", "java.io.File")
        assert type_name_matches("java.io.File", "File")
        assert type_name_matches("File", "java.io.File")
        assert not type_name_matches("java.io.File", "Reader")
        assert not type_name_matches("", "File")


class TestWeighers:
    def test_kind_weigher_buckets(self):
        env = _env(Declaration("x", STRING, kind=DeclKind.LOCAL),
                   Declaration("lit", STRING, kind=DeclKind.LITERAL),
                   _decl("api.call", kind=DeclKind.IMPORTED))
        weigher = KindWeigher()
        assert weigher.adjust(_snippet(lnf("x"), 5, 1), env,
                              EMPTY_CONTEXT) < 0
        assert weigher.adjust(_snippet(lnf("lit"), 5, 1), env,
                              EMPTY_CONTEXT) > 0
        assert weigher.adjust(_snippet(lnf("api.call"), 5, 1), env,
                              EMPTY_CONTEXT) == 0.0
        assert weigher.adjust(_snippet(lnf("ghost"), 5, 1), env,
                              EMPTY_CONTEXT) == 0.0

    def test_scope_weigher_counts_distinct_locals_capped(self):
        locals_ = [Declaration(f"x{i}", STRING, kind=DeclKind.LOCAL)
                   for i in range(5)]
        env = _env(_decl("f"), *locals_)
        weigher = ScopeDistanceWeigher()
        one = weigher.adjust(_snippet(lnf("f", lnf("x0"), lnf("x0")), 5, 1),
                             env, EMPTY_CONTEXT)
        two = weigher.adjust(_snippet(lnf("f", lnf("x0"), lnf("x1")), 5, 1),
                             env, EMPTY_CONTEXT)
        assert two < one < 0                 # distinct locals, not uses
        capped = weigher.adjust(
            _snippet(lnf("f", *[lnf(f"x{i}") for i in range(5)]), 5, 1),
            env, EMPTY_CONTEXT)
        assert capped == weigher.BONUS_PER_LOCAL * weigher.MAX_LOCALS

    def test_receiver_weigher_needs_a_hint(self):
        env = _env(_decl("java.io.File.exists"))
        snippet = _snippet(lnf("java.io.File.exists"), 5, 1)
        weigher = ReceiverAffinityWeigher()
        assert weigher.adjust(snippet, env, EMPTY_CONTEXT) == 0.0
        hinted = CompletionContext(receiver_type="File")
        assert weigher.adjust(snippet, env, hinted) == \
            weigher.RECEIVER_BONUS
        both = CompletionContext(receiver_type="java.io.File",
                                 enclosing_class="File")
        assert weigher.adjust(snippet, env, both) == \
            weigher.RECEIVER_BONUS + weigher.ENCLOSING_BONUS
        other = CompletionContext(receiver_type="Reader")
        assert weigher.adjust(snippet, env, other) == 0.0

    def test_constructor_boost_gated_on_position(self):
        env = _env(_decl("java.io.File.new", style=RenderStyle.CONSTRUCTOR),
                   _decl("java.io.File.exists", style=RenderStyle.METHOD))
        ctor = _snippet(lnf("java.io.File.new"), 5, 1)
        method = _snippet(lnf("java.io.File.exists"), 5, 2)
        weigher = ConstructorBoostWeigher()
        assert weigher.adjust(ctor, env, EMPTY_CONTEXT) == 0.0
        after_new = CompletionContext(position_kind="after_new")
        assert weigher.adjust(ctor, env, after_new) == weigher.BONUS
        assert weigher.adjust(method, env, after_new) == 0.0

    def test_project_frequency_saturates(self):
        env = _env(_decl("api.hot"), _decl("api.cold"))
        weigher = ProjectFrequencyWeigher()
        hot = _snippet(lnf("api.hot"), 5, 1)
        assert weigher.adjust(hot, env, EMPTY_CONTEXT) == 0.0   # no table
        small = weigher.adjust(hot, env, EMPTY_CONTEXT,
                               frequencies={"api.hot": 2})
        large = weigher.adjust(hot, env, EMPTY_CONTEXT,
                               frequencies={"api.hot": 10_000})
        assert large < small < 0
        assert large >= weigher.SCALE        # saturation bound
        assert weigher.adjust(_snippet(lnf("api.cold"), 5, 1), env,
                              EMPTY_CONTEXT,
                              frequencies={"api.hot": 5}) == 0.0


class TestRankingPipeline:
    def test_empty_chain_returns_the_same_object(self):
        result = _result(_snippet(lnf("a"), 5, 1))
        outcome = RankingPipeline.empty().rerank(result, _env())
        assert outcome.result is result
        assert not outcome.applied and not outcome.reordered

    def test_no_adjustment_returns_the_same_object(self):
        env = _env(_decl("api.a"), _decl("api.b"))
        result = _result(_snippet(lnf("api.a"), 5, 1),
                         _snippet(lnf("api.b"), 7, 2))
        pipeline = RankingPipeline((KindWeigher(),))   # imported: no delta
        outcome = pipeline.rerank(result, env)
        assert outcome.result is result
        assert not outcome.applied

    def test_rerank_promotes_and_renumbers(self):
        env = _env(Declaration("x", STRING, kind=DeclKind.LOCAL),
                   _decl("f"), _decl("g"))
        uses_local = _snippet(lnf("f", lnf("x")), 10, 2, code="f(x)")
        bare = _snippet(lnf("g"), 9, 1, code="g")
        result = _result(bare, uses_local)
        outcome = RankingPipeline((ScopeDistanceWeigher(),)).rerank(
            result, env)
        assert outcome.applied and outcome.reordered
        codes = [snippet.code for snippet in outcome.result.snippets]
        assert codes == ["f(x)", "g"]
        assert [s.rank for s in outcome.result.snippets] == [1, 2]
        weights = [s.weight for s in outcome.result.snippets]
        assert weights == sorted(weights)
        assert result.snippets[0].code == "g"    # input untouched

    def test_ties_keep_original_order(self):
        env = _env(_decl("api.a"), _decl("api.b"),
                   Declaration("lit", STRING, kind=DeclKind.LITERAL))
        first = _snippet(lnf("api.a"), 5, 1, code="a")
        second = _snippet(lnf("api.b"), 5, 2, code="b")
        moved = _snippet(lnf("lit"), 5, 3, code="lit")
        outcome = RankingPipeline((KindWeigher(),)).rerank(
            _result(first, second, moved), env)
        assert [s.code for s in outcome.result.snippets] == \
            ["a", "b", "lit"]

    def test_adjustment_counters_per_weigher(self):
        env = _env(Declaration("x", STRING, kind=DeclKind.LOCAL), _decl("f"))
        result = _result(_snippet(lnf("x"), 5, 1),
                         _snippet(lnf("f", lnf("x")), 8, 2))
        outcome = RankingPipeline.standard().rerank(result, env)
        assert outcome.adjustments["kind"] == 1       # the bare local head
        assert outcome.adjustments["scope"] == 2      # both use a local
        assert outcome.adjustments["receiver"] == 0   # no hint given

    def test_pipeline_from_names(self):
        pipeline = pipeline_from_names(["scope", "kind"])
        assert pipeline.names == ("scope", "kind")
        with pytest.raises(ValueError) as excinfo:
            pipeline_from_names(["scope", "typo"])
        assert "typo" in str(excinfo.value)

    def test_standard_names_are_stable(self):
        assert RankingPipeline.standard().names == (
            "kind", "scope", "receiver", "constructor", "project_freq")
