"""Unit tests for repro.core.environment."""

import pytest

from repro.core.environment import (Declaration, DeclKind, Environment,
                                    RenderSpec, RenderStyle)
from repro.core.errors import EnvironmentError_
from repro.core.succinct import primitive, sigma, succinct
from repro.core.types import arrow, base, parse

A, B = base("A"), base("B")


def _decl(name, text, kind=DeclKind.LOCAL, **kwargs):
    return Declaration(name, parse(text) if isinstance(text, str) else text,
                       kind, **kwargs)


def parse(text):
    from repro.lang.parser import parse_type

    return parse_type(text)


class TestDeclaration:
    def test_succinct_type(self):
        decl = _decl("f", "A -> A -> B")
        assert decl.succinct_type == succinct({primitive("A")}, "B")

    def test_is_coercion(self):
        decl = _decl("c", "A -> B", DeclKind.COERCION)
        assert decl.is_coercion
        assert not _decl("f", "A -> B").is_coercion

    def test_str(self):
        assert str(_decl("f", "A -> B")) == "f : A -> B"


class TestEnvironment:
    def test_lookup(self):
        env = Environment([_decl("a", "A"), _decl("f", "A -> B")])
        assert env.lookup("a").type == A
        assert env.lookup("missing") is None

    def test_contains(self):
        env = Environment([_decl("a", "A")])
        assert "a" in env
        assert "b" not in env

    def test_duplicate_names_rejected(self):
        with pytest.raises(EnvironmentError_):
            Environment([_decl("a", "A"), _decl("a", "B")])

    def test_select_groups_by_succinct_type(self):
        env = Environment([
            _decl("f", "A -> B"),
            _decl("g", "A -> A -> B"),  # same succinct type {A} -> B
            _decl("h", "B"),
        ])
        selected = env.select(succinct({primitive("A")}, "B"))
        assert {decl.name for decl in selected} == {"f", "g"}

    def test_select_empty_for_unknown(self):
        env = Environment([_decl("a", "A")])
        assert env.select(succinct({primitive("A")}, "Z")) == ()

    def test_succinct_environment(self):
        env = Environment([_decl("a", "A"), _decl("f", "A -> B"),
                           _decl("g", "A -> A -> B")])
        assert env.succinct_environment() == {
            primitive("A"), succinct({primitive("A")}, "B")}

    def test_len_and_iteration(self):
        env = Environment([_decl("a", "A"), _decl("b", "B")])
        assert len(env) == 2
        assert [decl.name for decl in env] == ["a", "b"]

    def test_variable_types(self):
        env = Environment([_decl("a", "A")])
        assert env.variable_types() == {"a": A}


class TestExtension:
    def test_extended_lookup_falls_through(self):
        parent = Environment([_decl("a", "A")])
        child = parent.extended([_decl("x", "B", DeclKind.LAMBDA)])
        assert child.lookup("a").name == "a"
        assert child.lookup("x").kind is DeclKind.LAMBDA
        assert parent.lookup("x") is None

    def test_extended_rejects_shadowing(self):
        parent = Environment([_decl("a", "A")])
        with pytest.raises(EnvironmentError_):
            parent.extended([_decl("a", "B")])

    def test_extended_select_merges(self):
        parent = Environment([_decl("f", "A -> B")])
        child = parent.extended([_decl("g", "A -> A -> B")])
        names = {d.name for d in child.select(succinct({primitive("A")}, "B"))}
        assert names == {"f", "g"}

    def test_extended_succinct_environment_union(self):
        parent = Environment([_decl("a", "A")])
        child = parent.extended([_decl("b", "B")])
        assert child.succinct_environment() == {primitive("A"), primitive("B")}

    def test_extended_len(self):
        parent = Environment([_decl("a", "A")])
        child = parent.extended([_decl("b", "B"), _decl("c", "A -> B")])
        assert len(child) == 3
        assert len(parent) == 1

    def test_deep_chain(self):
        env = Environment([_decl("a", "A")])
        for index in range(20):
            env = env.extended([_decl(f"x{index}", "A", DeclKind.LAMBDA)])
        assert len(env) == 21
        assert env.lookup("x0") is not None
        assert env.lookup("a") is not None


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        build = lambda: Environment([_decl("a", "A"), _decl("f", "A -> B")])
        assert build().fingerprint() == build().fingerprint()

    def test_cached_on_instance(self):
        env = Environment([_decl("a", "A")])
        assert env.fingerprint() is env.fingerprint()

    def test_content_changes_fingerprint(self):
        base_env = Environment([_decl("a", "A")])
        renamed = Environment([_decl("b", "A")])
        retyped = Environment([_decl("a", "B")])
        rekinded = Environment([_decl("a", "A", DeclKind.IMPORTED)])
        refreq = Environment([_decl("a", "A", frequency=7)])
        prints = {env.fingerprint()
                  for env in (base_env, renamed, retyped, rekinded, refreq)}
        assert len(prints) == 5

    def test_render_metadata_participates(self):
        plain = Environment([_decl("a", "A")])
        styled = Environment([_decl(
            "a", "A", render=RenderSpec(RenderStyle.FIELD, "a"))])
        assert plain.fingerprint() != styled.fingerprint()

    def test_declaration_order_matters(self):
        forward = Environment([_decl("a", "A"), _decl("b", "B")])
        backward = Environment([_decl("b", "B"), _decl("a", "A")])
        assert forward.fingerprint() != backward.fingerprint()

    def test_extension_changes_fingerprint(self):
        parent = Environment([_decl("a", "A")])
        child = parent.extended([_decl("b", "B")])
        assert parent.fingerprint() != child.fingerprint()

    def test_chained_equals_flat_content_hash(self):
        chained = Environment([_decl("a", "A")]).extended([_decl("b", "B")])
        # Chained fingerprints mix the parent digest, so they are *stable*
        # per chain shape; two identical chains agree.
        again = Environment([_decl("a", "A")]).extended([_decl("b", "B")])
        assert chained.fingerprint() == again.fingerprint()
