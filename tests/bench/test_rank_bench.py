"""Unit tests for the BENCH_rank emitter/regression gate.

Rank quality is deterministic (ranks, not timings), so unlike the
timing benches a small real measurement runs in-process here and the
committed ``BENCH_rank.json`` can be checked for structural honesty.
"""

import json
from pathlib import Path

from repro.bench.rank_bench import (SCHEMA, build_report, check_regression,
                                    measure_scenes, summarize_scenes)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _rows(rank_standard: int, rank_base: int = 3) -> dict:
    return {
        "url_reader": {
            "rank_base": rank_base, "rank_standard": rank_standard,
            "found_base": True, "found_standard": True,
        },
    }


def _trace(mrr: float) -> dict:
    return {"profile": "smoke", "events": 10, "distinct_scenes": 4,
            "rank_sum_base": 12, "rank_sum_standard": 10,
            "mrr_base": 0.8, "mrr_standard": mrr}


def _session() -> dict:
    return {"script": "url_reader_session.json", "complete_steps": 3,
            "rank_sum_base": 3, "rank_sum_standard": 3}


def _report(rank_standard: int, rank_base: int = 3,
            trace_mrr: float = 0.9) -> dict:
    return build_report(_rows(rank_standard, rank_base),
                        _trace(trace_mrr), _session())


class TestRegressionGate:
    def test_within_bound_passes(self):
        committed = _report(2)
        assert check_regression(committed, _report(2), 0.25) == []

    def test_structural_gate_rejects_a_worsening_chain(self):
        failures = check_regression(_report(2), _report(5, rank_base=3),
                                    0.25)
        assert any("structural" in failure for failure in failures)

    def test_rank_sum_regression_fails(self):
        committed = _report(2)
        # 3 > 2 * 1.25: over the bound, but still <= base (structural ok).
        failures = check_regression(committed, _report(3), 0.25)
        assert any("rank regression" in failure for failure in failures)

    def test_mrr_floor_fails(self):
        committed = _report(1)          # MRR 1.0 committed
        measured = _report(2)           # MRR 0.5 < 0.75 floor
        failures = check_regression(committed, measured, 0.25)
        assert any("MRR regression" in failure for failure in failures)

    def test_trace_mrr_floor_fails_independently(self):
        committed = _report(2, trace_mrr=1.0)
        measured = _report(2, trace_mrr=0.5)
        failures = check_regression(committed, measured, 0.25)
        assert failures == [failure for failure in failures
                            if "trace-replay" in failure]

    def test_empty_committed_report_only_gates_structure(self):
        assert check_regression({}, _report(2), 0.25) == []


class TestReportShape:
    def test_report_carries_schema_protocol_and_summary(self):
        report = _report(2)
        assert report["schema"] == SCHEMA
        assert report["protocol"]["deterministic"] is True
        assert report["protocol"]["weighers"] == [
            "kind", "scope", "receiver", "constructor", "project_freq"]
        assert report["summary"]["scenes"] == 1

    def test_summary_counts_absent_snippets_via_found_flags(self):
        rows = {"a": {"rank_base": 11, "rank_standard": 1,
                      "found_base": False, "found_standard": True}}
        summary = summarize_scenes(rows)
        assert summary["mrr_base"] == 0.0
        assert summary["mrr_standard"] == 1.0


class TestRealMeasurement:
    def test_small_scene_run_is_deterministic_and_sound(self):
        first = measure_scenes(rows=(9,), n=5)
        second = measure_scenes(rows=(9,), n=5)
        assert first == second
        for observation in first.values():
            assert 1 <= observation["rank_base"] <= 6
            assert 1 <= observation["rank_standard"] <= 6


class TestCommittedReport:
    def test_committed_report_is_structurally_honest(self):
        """The repo's BENCH_rank.json must itself satisfy the structural
        gate — the standard chain improves (or matches) the base order."""
        path = REPO_ROOT / "BENCH_rank.json"
        committed = json.loads(path.read_text())
        assert committed["schema"] == SCHEMA
        summary = committed["summary"]
        assert summary["rank_sum_standard"] <= summary["rank_sum_base"]
        assert summary["mrr_standard"] >= summary["mrr_base"]
        # And at least one weigher demonstrably improves the rank sum —
        # the acceptance claim of the ranking PR, pinned to the artifact.
        assert summary["rank_sum_standard"] < summary["rank_sum_base"]
        assert check_regression(committed, committed, 0.25) == []
