"""Tests for CSV/JSON export of benchmark results."""

import csv
import json

import pytest

from repro.bench.export import (prover_rows, result_rows, write_csv,
                                write_json, write_prover_csv)
from repro.bench.runner import run_benchmark, run_provers
from repro.bench.suite import benchmark_by_number


@pytest.fixture(scope="module")
def results():
    return [run_benchmark(benchmark_by_number(9))]


@pytest.fixture(scope="module")
def comparisons():
    return [run_provers(benchmark_by_number(9), time_limit=10.0,
                        import_cap=50)]


class TestResultExport:
    def test_rows_contain_measured_and_paper(self, results):
        (row,) = result_rows(results)
        assert row["number"] == 9
        assert row["name"] == "DatagramSocket"
        assert row["rank_full"] == "1"
        assert row["paper_rank_full"] == "1"
        assert row["paper_rank_no_weights"] == ""  # paper: >10
        assert float(row["total_ms"]) > 0

    def test_csv_round_trip(self, results, tmp_path):
        path = tmp_path / "table2.csv"
        write_csv(results, path)
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert rows[0]["name"] == "DatagramSocket"

    def test_json_round_trip(self, results, tmp_path):
        path = tmp_path / "table2.json"
        write_json(results, path)
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data[0]["number"] == 9


class TestProverExport:
    def test_rows(self, comparisons):
        (row,) = prover_rows(comparisons)
        assert row["number"] == 9
        assert "succinct_ms" in row and "g4ip_ms" in row
        assert row["succinct_provable"] is True

    def test_csv(self, comparisons, tmp_path):
        path = tmp_path / "provers.csv"
        write_prover_csv(comparisons, path)
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["number"] == "9"

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_prover_csv([], path)
        assert path.read_text(encoding="utf-8") == ""
