"""Static checks over the 50 benchmark definitions (no synthesis)."""

import pytest

from repro.bench.goldens import PAPER_ROWS, paper_row, paper_summary
from repro.bench.suite import (BENCHMARKS, benchmark_by_name,
                               benchmark_by_number, build_scene)
from repro.lang.parser import parse_type


class TestGoldens:
    def test_fifty_rows(self):
        assert len(PAPER_ROWS) == 50

    def test_rows_numbered_in_order(self):
        assert [row.number for row in PAPER_ROWS] == list(range(1, 51))

    def test_paper_headline_claims_recomputed(self):
        summary = paper_summary()
        # §7.5: 48/50 = 96% in top ten, 32/50 = 64% at rank one.
        assert summary["full_top10_fraction"] == pytest.approx(0.96)
        assert summary["full_rank1_fraction"] == pytest.approx(0.64)
        # "finds the goal expressions in only 4 out of 50 cases".
        assert summary["no_weights_found"] == 4
        # "fails to find the goal expression in only 2 cases".
        assert summary["no_corpus_failed"] == 2

    def test_size_string(self):
        assert paper_row(44).size == "5/3"

    def test_initial_counts_in_published_range(self):
        for row in PAPER_ROWS:
            assert 3000 <= row.n_initial <= 10700


class TestSpecs:
    def test_fifty_specs_matching_rows(self):
        assert len(BENCHMARKS) == 50
        for spec in BENCHMARKS:
            assert spec.row.number == spec.number

    def test_lookup_by_number_and_name(self):
        assert benchmark_by_number(44).goal == "SequenceInputStream"
        assert benchmark_by_name("DatagramSocket").number == 9

    def test_goal_types_parse(self):
        for spec in BENCHMARKS:
            parse_type(spec.goal)

    def test_locals_types_parse(self):
        for spec in BENCHMARKS:
            for _name, type_text in spec.locals:
                parse_type(type_text)

    def test_expected_snippets_nonempty(self):
        for spec in BENCHMARKS:
            assert spec.expected
            assert all(expected.strip() for expected in spec.expected)

    def test_every_spec_has_imports(self):
        for spec in BENCHMARKS:
            assert spec.imports


class TestSceneConstruction:
    @pytest.mark.parametrize("number", [9, 15, 44])
    def test_scene_padded_to_paper_initial(self, number):
        spec = benchmark_by_number(number)
        scene = build_scene(spec)
        assert scene.initial_count == spec.row.n_initial

    def test_scene_without_padding(self):
        spec = benchmark_by_number(15)
        scene = build_scene(spec, pad_to_initial=False)
        assert scene.initial_count < spec.row.n_initial

    def test_scene_goal_set(self):
        scene = build_scene(benchmark_by_number(9))
        assert scene.goal == parse_type("DatagramSocket")

    def test_scenes_deterministic(self):
        first = build_scene(benchmark_by_number(15))
        second = build_scene(benchmark_by_number(15))
        assert ([decl.name for decl in first.environment]
                == [decl.name for decl in second.environment])
