"""Unit tests for the BENCH_core emitter/regression gate (no timing)."""

import json
from pathlib import Path

from repro.bench.core_bench import (DEFAULT_ROWS, LARGEST_ROW, SCHEMA,
                                    build_report, check_regression)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _rows(prove: float, recon: float = 2.0) -> dict:
    return {
        "28": {"name": "x", "declarations": 10700, "cold_total_ms": 1.0,
               "prove_ms": prove, "recon_ms": recon,
               "total_ms": prove + recon, "best_total_ms": prove},
    }


class TestRegressionGate:
    def test_within_bound_passes(self):
        committed = build_report(_rows(100.0))
        assert check_regression(committed, _rows(120.0), 0.25) == []

    def test_over_bound_fails(self):
        committed = build_report(_rows(100.0))
        failures = check_regression(committed, _rows(130.0), 0.25)
        assert failures and "prove-time regression" in failures[0]

    def test_recon_regression_fails_even_with_prove_improvement(self):
        committed = build_report(_rows(100.0, recon=100.0))
        failures = check_regression(committed,
                                    _rows(50.0, recon=130.0), 0.25)
        assert len(failures) == 1
        assert "recon-time regression" in failures[0]

    def test_both_phases_can_fail_together(self):
        committed = build_report(_rows(100.0, recon=100.0))
        failures = check_regression(committed,
                                    _rows(130.0, recon=130.0), 0.25)
        assert len(failures) == 2
        assert "prove-time regression" in failures[0]
        assert "recon-time regression" in failures[1]

    def test_recon_within_bound_passes(self):
        committed = build_report(_rows(100.0, recon=100.0))
        assert check_regression(committed,
                                _rows(90.0, recon=120.0), 0.25) == []

    def test_disjoint_row_sets_are_reported(self):
        committed = build_report(_rows(100.0))
        failures = check_regression(
            committed, {"9": _rows(1.0)["28"]}, 0.25)
        assert failures and "no comparable rows" in failures[0]


class TestReportShape:
    def test_report_carries_schema_protocol_and_summary(self):
        report = build_report(_rows(100.0), baseline=_rows(250.0))
        assert report["schema"] == SCHEMA
        assert report["protocol"]["largest_scene"] == LARGEST_ROW
        assert report["summary"]["prove_ms_sum"] == 100.0
        assert report["speedup_total"]["28"] == round(252.0 / 102.0, 2)

    def test_committed_bench_core_is_valid_and_meets_acceptance(self):
        """The repo-root BENCH_core.json must parse, cover the default
        rows, and record the packed-frontier acceptance: >= 1.5x summed
        warm recon time against the committed pre-change baseline."""
        path = REPO_ROOT / "BENCH_core.json"
        committed = json.loads(path.read_text(encoding="utf-8"))
        assert committed["schema"] == SCHEMA
        for number in DEFAULT_ROWS:
            row = committed["current"][str(number)]
            assert row["prove_ms"] > 0
            assert row["recon_ms"] >= 0
            assert row["total_ms"] > 0
            assert str(number) in committed["baseline"]
        baseline_recon = sum(committed["baseline"][str(n)]["recon_ms"]
                             for n in DEFAULT_ROWS)
        current_recon = sum(committed["current"][str(n)]["recon_ms"]
                            for n in DEFAULT_ROWS)
        assert current_recon > 0
        assert baseline_recon / current_recon >= 1.5
        # The end-to-end trajectory must not have regressed either.
        largest = str(committed["protocol"]["largest_scene"])
        assert committed["speedup_total"][largest] >= 1.0
        # The gate must accept its own committed numbers.
        assert check_regression(committed, committed["current"], 0.25) == []


class TestMedianTotalTriple:
    """The shared bench statistic: one real run's triple, median total."""

    def test_odd_count_picks_median_total_run(self):
        from repro.bench.timing import median_total_triple
        samples = [(10.0, 5.0, 15.0), (99.0, 99.0, 2500.0), (9.0, 5.5, 14.5)]
        assert median_total_triple(samples) == (10.0, 5.0, 15.0)

    def test_even_count_picks_lower_middle(self):
        from repro.bench.timing import median_total_triple
        samples = [(1.0, 1.0, 2.0), (2.0, 2.0, 4.0),
                   (3.0, 3.0, 6.0), (4.0, 4.0, 8.0)]
        assert median_total_triple(samples) == (2.0, 2.0, 4.0)

    def test_single_sample(self):
        from repro.bench.timing import median_total_triple
        assert median_total_triple([(1.0, 2.0, 3.0)]) == (1.0, 2.0, 3.0)

    def test_triple_is_one_run_never_a_field_mix(self):
        from repro.bench.timing import median_total_triple
        samples = [(30.0, 5.0, 35.0), (5.0, 30.0, 36.0), (20.0, 20.0, 40.0)]
        prove, recon, total = median_total_triple(samples)
        assert (prove, recon, total) in samples
        assert prove + recon <= total
