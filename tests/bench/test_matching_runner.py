"""Tests for rank matching and the benchmark runner (on fast scenes)."""

import pytest

from repro.bench.matching import LITERAL_PLACEHOLDER, find_rank, masked_code
from repro.bench.runner import (policy_for, run_benchmark, run_provers,
                                run_suite)
from repro.bench.reporting import (format_prover_table, format_table,
                                   summarize)
from repro.bench.suite import benchmark_by_number
from repro.core.environment import (Declaration, DeclKind, Environment,
                                    RenderSpec, RenderStyle)
from repro.core.synthesizer import Snippet
from repro.core.terms import lnf
from repro.core.types import parse
from repro.core.weights import WeightPolicy


def parse(text):
    from repro.lang.parser import parse_type

    return parse_type(text)


@pytest.fixture
def literal_env():
    return Environment([
        Declaration('"LPT1"', parse("String"), DeclKind.LITERAL,
                    render=RenderSpec(RenderStyle.LITERAL, '"LPT1"')),
        Declaration("java.io.FileWriter.new", parse("String -> FileWriter"),
                    DeclKind.IMPORTED,
                    render=RenderSpec(RenderStyle.CONSTRUCTOR, "FileWriter")),
        Declaration("name", parse("String"), DeclKind.LOCAL),
    ])


class TestMaskedCode:
    def test_literal_masked(self, literal_env):
        term = lnf("java.io.FileWriter.new", lnf('"LPT1"'))
        assert masked_code(term, literal_env) == \
            f"new FileWriter({LITERAL_PLACEHOLDER})"

    def test_non_literals_untouched(self, literal_env):
        term = lnf("java.io.FileWriter.new", lnf("name"))
        assert masked_code(term, literal_env) == "new FileWriter(name)"


class TestFindRank:
    def _snippet(self, term, rank, env):
        from repro.lang.printer import render_snippet

        return Snippet(term, term, float(rank), rank,
                       render_snippet(term, env))

    def test_rank_found(self, literal_env):
        term1 = lnf("name")
        term2 = lnf("java.io.FileWriter.new", lnf("name"))
        snippets = [self._snippet(term1, 1, literal_env),
                    self._snippet(term2, 2, literal_env)]
        assert find_rank(snippets, "new FileWriter(name)", literal_env) == 2

    def test_literal_wildcard_matches_any_literal(self, literal_env):
        term = lnf("java.io.FileWriter.new", lnf('"LPT1"'))
        snippets = [self._snippet(term, 1, literal_env)]
        assert find_rank(snippets, f"new FileWriter({LITERAL_PLACEHOLDER})",
                         literal_env) == 1

    def test_alternatives_accepted(self, literal_env):
        term = lnf("java.io.FileWriter.new", lnf("name"))
        snippets = [self._snippet(term, 1, literal_env)]
        rank = find_rank(snippets,
                         ["new FileWriter(other)", "new FileWriter(name)"],
                         literal_env)
        assert rank == 1

    def test_absent_returns_none(self, literal_env):
        assert find_rank([], "new FileWriter(name)", literal_env) is None


class TestPolicies:
    def test_policy_for_variants(self):
        assert policy_for("no_weights").uniform
        assert not policy_for("no_corpus").use_frequency
        assert policy_for("full").use_frequency

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            policy_for("fancy")


class TestRunner:
    @pytest.fixture(scope="class")
    def result(self):
        return run_benchmark(benchmark_by_number(9))  # small, fast scene

    def test_all_variants_measured(self, result):
        assert set(result.outcomes) == {"no_weights", "no_corpus", "full"}

    def test_full_variant_finds_goal(self, result):
        assert result.outcomes["full"].rank == 1
        assert result.outcomes["full"].inhabited

    def test_timings_positive(self, result):
        outcome = result.outcomes["full"]
        assert outcome.total_ms > 0
        assert outcome.total_ms == pytest.approx(
            outcome.prove_ms + outcome.recon_ms, rel=0.01)

    def test_run_suite_subset(self):
        results = run_suite(numbers=[9], variants=("full",))
        assert len(results) == 1
        assert results[0].spec.number == 9

    def test_report_formatting(self):
        results = run_suite(numbers=[9])
        table = format_table(results)
        assert "DatagramSocket" in table
        summary = summarize(results)
        assert summary.benchmarks == 1
        assert "top 10" in summary.as_text()


class TestProverRunner:
    def test_provers_agree_on_benchmark_9(self):
        comparison = run_provers(benchmark_by_number(9), time_limit=10.0,
                                 import_cap=60)
        verdicts = {result.provable for result in comparison.results()
                    if not result.timed_out}
        assert verdicts == {True}
        table = format_prover_table([comparison])
        assert "succinct" in table
