"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SCENE = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
goal File
"""

BAD_SCENE = "local broken :\n"

NO_GOAL_SCENE = """
local name : String
"""


@pytest.fixture
def scene_file(tmp_path):
    path = tmp_path / "scene.ins"
    path.write_text(SCENE, encoding="utf-8")
    return str(path)


class TestSynthesizeCommand:
    def test_prints_ranked_snippets(self, scene_file, capsys):
        code = main(["synthesize", scene_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "new File(name)" in out
        assert "goal: File" in out

    def test_n_limits_output(self, scene_file, capsys):
        code = main(["synthesize", scene_file, "--n", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("\n  1.") + out.count("  1.") >= 1
        assert "  2." not in out

    def test_show_weights(self, scene_file, capsys):
        main(["synthesize", scene_file, "--show-weights"])
        out = capsys.readouterr().out
        assert "[" in out and "]" in out

    def test_goal_override(self, scene_file, capsys):
        code = main(["synthesize", scene_file, "--goal", "String"])
        out = capsys.readouterr().out
        assert code == 0
        assert "name" in out

    def test_uninhabited_goal_exit_code(self, scene_file, capsys):
        code = main(["synthesize", scene_file, "--goal", "Unobtainium"])
        out = capsys.readouterr().out
        assert code == 1
        assert "not inhabited" in out

    def test_variant_flag(self, scene_file, capsys):
        code = main(["synthesize", scene_file, "--variant", "no_weights"])
        assert code == 0
        assert "no_weights" in capsys.readouterr().out

    def test_missing_goal_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "nogoal.ins"
        path.write_text(NO_GOAL_SCENE, encoding="utf-8")
        code = main(["synthesize", str(path)])
        assert code == 2
        assert "no goal" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.ins"
        path.write_text(BAD_SCENE, encoding="utf-8")
        code = main(["synthesize", str(path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_reported(self, capsys):
        code = main(["synthesize", "/nonexistent/scene.ins"])
        assert code == 2

    def test_shipped_example_scene(self, capsys):
        code = main(["synthesize", "examples/scenes/url_reader.ins",
                     "--n", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "new BufferedReader" in out


class TestBatchCommand:
    def test_many_scenes_one_invocation(self, scene_file, tmp_path, capsys):
        other = tmp_path / "reader.ins"
        other.write_text(
            "local path : String\n"
            "imported java.io.FileReader.new : String -> FileReader "
            "[freq=90] [style=constructor] [display=FileReader]\n"
            "goal FileReader\n", encoding="utf-8")
        code = main(["batch", scene_file, str(other), "--n", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "new File(name)" in out
        assert "new FileReader(path)" in out
        assert "2 queries over 2 scenes" in out

    def test_many_goals_one_scene(self, scene_file, capsys):
        code = main(["batch", scene_file, "--goals", "File,String"])
        out = capsys.readouterr().out
        assert code == 0
        assert "goal File" in out
        assert "goal String" in out

    def test_workers_flag_accepted(self, scene_file, capsys):
        code = main(["batch", scene_file, "--workers", "2"])
        assert code == 0
        assert "new File(name)" in capsys.readouterr().out

    def test_uninhabited_goal_reported(self, scene_file, capsys):
        code = main(["batch", scene_file, "--goals", "Unobtainium"])
        out = capsys.readouterr().out
        assert code == 1
        assert "not inhabited" in out

    def test_scene_without_goal_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "nogoal.ins"
        path.write_text(NO_GOAL_SCENE, encoding="utf-8")
        code = main(["batch", str(path)])
        assert code == 2
        assert "no goal" in capsys.readouterr().err

    def test_no_scenes_and_no_stdin_is_an_error(self, capsys):
        code = main(["batch"])
        assert code == 2
        assert "stdin" in capsys.readouterr().err


class TestBatchStdinQueries:
    def _feed(self, monkeypatch, lines):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines)))

    def test_json_lines_queries(self, scene_file, monkeypatch, capsys):
        import json
        self._feed(monkeypatch, [
            json.dumps({"scene": scene_file, "goal": "File"}),
            "",                                       # blank lines skipped
            json.dumps({"scene": scene_file, "goal": "String", "n": 1}),
        ])
        code = main(["batch", "-"])
        out = capsys.readouterr().out
        assert code == 0
        assert "new File(name)" in out
        assert "goal String" in out
        assert "2 queries over 1 scenes" in out

    def test_stdin_flag_equivalent_to_dash(self, scene_file, monkeypatch,
                                           capsys):
        import json
        self._feed(monkeypatch,
                   [json.dumps({"scene": scene_file})])   # scene's own goal
        code = main(["batch", "--stdin"])
        out = capsys.readouterr().out
        assert code == 0
        assert "new File(name)" in out

    def test_stdin_queries_combine_with_file_scenes(self, scene_file,
                                                    monkeypatch, capsys):
        import json
        self._feed(monkeypatch, [
            json.dumps({"scene": scene_file, "goal": "String",
                        "variant": "no_weights"}),
        ])
        code = main(["batch", scene_file, "-"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no_weights" in out
        assert "2 queries over 1 scenes" in out

    def test_invalid_json_line_is_an_error(self, monkeypatch, capsys):
        self._feed(monkeypatch, ["{broken"])
        code = main(["batch", "-"])
        assert code == 2
        assert "line 1" in capsys.readouterr().err

    def test_missing_scene_field_is_an_error(self, scene_file, monkeypatch,
                                             capsys):
        self._feed(monkeypatch, ['{"goal": "File"}'])
        code = main(["batch", "-"])
        assert code == 2
        assert "'scene'" in capsys.readouterr().err

    def test_wrongly_typed_fields_are_clean_errors(self, scene_file,
                                                   monkeypatch, capsys):
        import json
        for bad in ({"scene": scene_file, "n": "5"},
                    {"scene": 5},
                    {"scene": scene_file, "goal": 7},
                    {"scene": scene_file, "variant": "turbo"}):
            self._feed(monkeypatch, [json.dumps(bad)])
            code = main(["batch", "-"])
            assert code == 2, f"{bad} should be a usage error"
            assert "error:" in capsys.readouterr().err

    def test_empty_stdin_is_an_error(self, monkeypatch, capsys):
        self._feed(monkeypatch, [])
        code = main(["batch", "-"])
        assert code == 2
        assert "no queries" in capsys.readouterr().err


class TestServeCommand:
    def test_parser_accepts_serving_flags(self):
        from repro.cli import _build_parser
        args = _build_parser().parse_args(
            ["serve", "--port", "0", "--max-pending", "8",
             "--max-scenes", "4", "--deadline-ms", "500",
             "--scenes", "a.ins", "b.ins"])
        assert args.command == "serve"
        assert args.port == 0
        assert args.max_pending == 8
        assert args.scenes == ["a.ins", "b.ins"]

    def test_invalid_deadline_is_a_usage_error(self, capsys):
        code = main(["serve", "--port", "0", "--deadline-ms", "0"])
        assert code == 2
        assert "--deadline-ms" in capsys.readouterr().err

    def test_workers_flag_parsed_and_validated(self, capsys):
        from repro.cli import _build_parser
        args = _build_parser().parse_args(["serve", "--workers", "4"])
        assert args.workers == 4
        code = main(["serve", "--port", "0", "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_registers_scenes_and_answers(self, scene_file):
        """Boot the real server via the CLI path and complete against it."""
        import asyncio
        import threading

        from repro.server import AsyncCompletionServer, ServerConfig
        from repro.server.client import (AsyncCompletionClient,
                                         wait_until_healthy)

        # Exercise the serve wiring in-process (the subprocess path is
        # covered by repro.server.smoke / CI).
        server = AsyncCompletionServer(config=ServerConfig(port=0))
        started = threading.Event()
        stop_loop: list = []

        def _run():
            async def _main():
                await server.start()
                started.set()
                stop_loop.append(asyncio.get_running_loop())
                try:
                    await server.serve_forever()
                except asyncio.CancelledError:
                    pass
                finally:
                    await server.close()

            asyncio.run(_main())

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        assert started.wait(10)

        async def _drive():
            async with AsyncCompletionClient(server.host,
                                             server.port) as client:
                await wait_until_healthy(client)
                registered = await client.register_scene(SCENE, name="cli")
                served = await client.complete(registered["scene_id"])
                assert served["snippets"][0]["code"] == "new File(name)"

        asyncio.run(_drive())
        stop_loop[0].call_soon_threadsafe(
            lambda: [task.cancel() for task in
                     asyncio.all_tasks(stop_loop[0])])
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestWarmCommand:
    def test_warm_reports_cache_round_trip(self, scene_file, capsys):
        code = main(["warm", scene_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "warmed 1 entries" in out
        assert "1/1 hits" in out
        assert "cache:" in out

    def test_warm_multiple_goals_and_variants(self, scene_file, capsys):
        code = main(["warm", scene_file, "--goals", "File,String",
                     "--variants", "full,no_weights"])
        out = capsys.readouterr().out
        assert code == 0
        assert "warmed 4 entries" in out
        assert "4/4 hits" in out

    def test_warm_without_goal_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "nogoal.ins"
        path.write_text(NO_GOAL_SCENE, encoding="utf-8")
        code = main(["warm", str(path)])
        assert code == 2
        assert "no goal" in capsys.readouterr().err


class TestBenchCommand:
    def test_single_row_single_variant(self, capsys):
        code = main(["bench", "--rows", "9", "--variants", "full"])
        out = capsys.readouterr().out
        assert code == 0
        assert "DatagramSocket" in out

    def test_all_variants_prints_summary(self, capsys):
        code = main(["bench", "--rows", "9"])
        out = capsys.readouterr().out
        assert code == 0
        assert "top 10" in out


class TestStatsCommand:
    def test_unreachable_server_is_a_clean_error(self, capsys):
        # Port 1 is never listening; the client raises a typed error the
        # CLI maps to the usual exit-2 contract.
        code = main(["stats", "--port", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err.lower()

    def test_pretty_prints_running_server_stats(self, capsys):
        import asyncio
        import threading

        from repro.server import AsyncCompletionServer, ServerConfig

        server = AsyncCompletionServer(config=ServerConfig(port=0))
        started = threading.Event()
        stop_loop: list = []

        def _run():
            async def _main():
                await server.start()
                started.set()
                stop_loop.append(asyncio.get_running_loop())
                try:
                    await server.serve_forever()
                except asyncio.CancelledError:
                    pass
                finally:
                    await server.close()

            asyncio.run(_main())

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        assert started.wait(10)
        try:
            code = main(["stats", "--port", str(server.port)])
            out = capsys.readouterr().out
            assert code == 0
            assert "env arena" in out
            assert "interned types" in out
            code = main(["stats", "--port", str(server.port), "--json"])
            out = capsys.readouterr().out
            assert code == 0
            assert '"env_arena"' in out
        finally:
            stop_loop[0].call_soon_threadsafe(
                lambda: [task.cancel() for task in
                         asyncio.all_tasks(stop_loop[0])])
            thread.join(timeout=10)
        assert not thread.is_alive()


class TestCorpusStatsCommand:
    def test_prints_marginals(self, capsys):
        code = main(["corpus-stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "7516 declarations" in out
        assert "scala.Boolean.&&" in out


class TestLoadgenCommand:
    def test_emit_trace_is_byte_identical_across_runs(self, tmp_path,
                                                      capsys):
        """The committed-trace workflow's foundation: two emits of the
        same profile+seed write byte-for-byte equal files."""
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(["loadgen", "--profile", "smoke", "--seed", "424",
                     "--emit-trace", str(first)]) == 0
        out = capsys.readouterr().out
        assert "events" in out and "digest" in out
        assert main(["loadgen", "--profile", "smoke", "--seed", "424",
                     "--emit-trace", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_emit_trace_seed_changes_bytes(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["loadgen", "--profile", "smoke", "--seed", "1",
                     "--emit-trace", str(a)]) == 0
        assert main(["loadgen", "--profile", "smoke", "--seed", "2",
                     "--emit-trace", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() != b.read_bytes()

    def test_loaded_trace_rejects_contradicting_seed(self, tmp_path,
                                                     capsys):
        path = tmp_path / "trace.json"
        assert main(["loadgen", "--profile", "smoke", "--seed", "9",
                     "--emit-trace", str(path)]) == 0
        capsys.readouterr()
        code = main(["loadgen", "--trace", str(path), "--seed", "10",
                     "--emit-trace", str(tmp_path / "out.json")])
        assert code == 2

    def test_chaos_requires_positive_kills(self, capsys):
        assert main(["loadgen", "--chaos", "--kills", "0",
                     "--emit-trace", "/dev/null"]) == 2


class TestArgumentErrors:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_variant_rejected(self, scene_file):
        with pytest.raises(SystemExit):
            main(["synthesize", scene_file, "--variant", "psychic"])
