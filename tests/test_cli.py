"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SCENE = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
goal File
"""

BAD_SCENE = "local broken :\n"

NO_GOAL_SCENE = """
local name : String
"""


@pytest.fixture
def scene_file(tmp_path):
    path = tmp_path / "scene.ins"
    path.write_text(SCENE, encoding="utf-8")
    return str(path)


class TestSynthesizeCommand:
    def test_prints_ranked_snippets(self, scene_file, capsys):
        code = main(["synthesize", scene_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "new File(name)" in out
        assert "goal: File" in out

    def test_n_limits_output(self, scene_file, capsys):
        code = main(["synthesize", scene_file, "--n", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("\n  1.") + out.count("  1.") >= 1
        assert "  2." not in out

    def test_show_weights(self, scene_file, capsys):
        main(["synthesize", scene_file, "--show-weights"])
        out = capsys.readouterr().out
        assert "[" in out and "]" in out

    def test_goal_override(self, scene_file, capsys):
        code = main(["synthesize", scene_file, "--goal", "String"])
        out = capsys.readouterr().out
        assert code == 0
        assert "name" in out

    def test_uninhabited_goal_exit_code(self, scene_file, capsys):
        code = main(["synthesize", scene_file, "--goal", "Unobtainium"])
        out = capsys.readouterr().out
        assert code == 1
        assert "not inhabited" in out

    def test_variant_flag(self, scene_file, capsys):
        code = main(["synthesize", scene_file, "--variant", "no_weights"])
        assert code == 0
        assert "no_weights" in capsys.readouterr().out

    def test_missing_goal_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "nogoal.ins"
        path.write_text(NO_GOAL_SCENE, encoding="utf-8")
        code = main(["synthesize", str(path)])
        assert code == 2
        assert "no goal" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.ins"
        path.write_text(BAD_SCENE, encoding="utf-8")
        code = main(["synthesize", str(path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_reported(self, capsys):
        code = main(["synthesize", "/nonexistent/scene.ins"])
        assert code == 2

    def test_shipped_example_scene(self, capsys):
        code = main(["synthesize", "examples/scenes/url_reader.ins",
                     "--n", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "new BufferedReader" in out


class TestBatchCommand:
    def test_many_scenes_one_invocation(self, scene_file, tmp_path, capsys):
        other = tmp_path / "reader.ins"
        other.write_text(
            "local path : String\n"
            "imported java.io.FileReader.new : String -> FileReader "
            "[freq=90] [style=constructor] [display=FileReader]\n"
            "goal FileReader\n", encoding="utf-8")
        code = main(["batch", scene_file, str(other), "--n", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "new File(name)" in out
        assert "new FileReader(path)" in out
        assert "2 queries over 2 scenes" in out

    def test_many_goals_one_scene(self, scene_file, capsys):
        code = main(["batch", scene_file, "--goals", "File,String"])
        out = capsys.readouterr().out
        assert code == 0
        assert "goal File" in out
        assert "goal String" in out

    def test_workers_flag_accepted(self, scene_file, capsys):
        code = main(["batch", scene_file, "--workers", "2"])
        assert code == 0
        assert "new File(name)" in capsys.readouterr().out

    def test_uninhabited_goal_reported(self, scene_file, capsys):
        code = main(["batch", scene_file, "--goals", "Unobtainium"])
        out = capsys.readouterr().out
        assert code == 1
        assert "not inhabited" in out

    def test_scene_without_goal_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "nogoal.ins"
        path.write_text(NO_GOAL_SCENE, encoding="utf-8")
        code = main(["batch", str(path)])
        assert code == 2
        assert "no goal" in capsys.readouterr().err


class TestWarmCommand:
    def test_warm_reports_cache_round_trip(self, scene_file, capsys):
        code = main(["warm", scene_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "warmed 1 entries" in out
        assert "1/1 hits" in out
        assert "cache:" in out

    def test_warm_multiple_goals_and_variants(self, scene_file, capsys):
        code = main(["warm", scene_file, "--goals", "File,String",
                     "--variants", "full,no_weights"])
        out = capsys.readouterr().out
        assert code == 0
        assert "warmed 4 entries" in out
        assert "4/4 hits" in out

    def test_warm_without_goal_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "nogoal.ins"
        path.write_text(NO_GOAL_SCENE, encoding="utf-8")
        code = main(["warm", str(path)])
        assert code == 2
        assert "no goal" in capsys.readouterr().err


class TestBenchCommand:
    def test_single_row_single_variant(self, capsys):
        code = main(["bench", "--rows", "9", "--variants", "full"])
        out = capsys.readouterr().out
        assert code == 0
        assert "DatagramSocket" in out

    def test_all_variants_prints_summary(self, capsys):
        code = main(["bench", "--rows", "9"])
        out = capsys.readouterr().out
        assert code == 0
        assert "top 10" in out


class TestCorpusStatsCommand:
    def test_prints_marginals(self, capsys):
        code = main(["corpus-stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "7516 declarations" in out
        assert "scala.Boolean.&&" in out


class TestArgumentErrors:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_variant_rejected(self, scene_file):
        with pytest.raises(SystemExit):
            main(["synthesize", scene_file, "--variant", "psychic"])
