"""Shared test fixtures: tiny environments and hypothesis strategies.

The random-environment strategies come in two flavours:

* :func:`environments` — arbitrary simple-typed declaration sets (may admit
  infinitely many inhabitants; used for soundness properties);
* :func:`acyclic_environments` — declarations stratified so that every
  function's argument types are strictly lower in a topological order than
  its result type, guaranteeing a *finite* inhabitant set (used for the
  completeness-versus-RCN oracle comparison).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.types import BaseType, Type, arrow, base, function_type

BASE_NAMES = ["A", "B", "C", "D", "E"]


def simple_env(*pairs: tuple[str, str],
               kind: DeclKind = DeclKind.LOCAL) -> Environment:
    """Build an environment from ``(name, type-string)`` pairs."""
    from repro.lang.parser import parse_type

    return Environment([Declaration(name, parse_type(text), kind)
                        for name, text in pairs])


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

def base_types(names: list[str] | None = None) -> st.SearchStrategy[BaseType]:
    return st.sampled_from([base(name) for name in (names or BASE_NAMES)])


def simple_types(names: list[str] | None = None,
                 max_depth: int = 3) -> st.SearchStrategy[Type]:
    """Random simple types over a small base-type alphabet."""
    return st.recursive(
        base_types(names),
        lambda inner: st.builds(
            lambda argument, result: arrow(argument, result), inner, inner),
        max_leaves=2 ** max_depth,
    )


@st.composite
def environments(draw, min_size: int = 1, max_size: int = 8,
                 names: list[str] | None = None) -> Environment:
    """A random environment of first/higher-order declarations."""
    size = draw(st.integers(min_size, max_size))
    kinds = st.sampled_from([DeclKind.LOCAL, DeclKind.IMPORTED,
                             DeclKind.CLASS_MEMBER])
    declarations = []
    for index in range(size):
        tpe = draw(simple_types(names))
        kind = draw(kinds)
        frequency = draw(st.integers(0, 500)) if kind is DeclKind.IMPORTED else 0
        declarations.append(
            Declaration(f"d{index}", tpe, kind, frequency=frequency))
    return Environment(declarations)


@st.composite
def acyclic_environments(draw, max_decls: int = 7) -> Environment:
    """A random environment with finitely many inhabitants.

    Base types are stratified ``L0 < L1 < ... < L4``; every declaration's
    argument types use strictly lower strata than its result, so every term
    strictly descends and the inhabitant set is finite.
    """
    strata = ["L0", "L1", "L2", "L3", "L4"]
    size = draw(st.integers(1, max_decls))
    declarations = []
    for index in range(size):
        level = draw(st.integers(0, len(strata) - 1))
        result = base(strata[level])
        argument_count = draw(st.integers(0, min(2, level)))
        arguments = [base(strata[draw(st.integers(0, level - 1))])
                     for _ in range(argument_count)]
        declarations.append(Declaration(
            f"d{index}", function_type(arguments, result), DeclKind.LOCAL))
    return Environment(declarations)


@st.composite
def environment_and_goal(draw, acyclic: bool = False):
    """An environment together with a goal type over the same alphabet."""
    if acyclic:
        env = draw(acyclic_environments())
        goal = base(draw(st.sampled_from(["L0", "L1", "L2", "L3", "L4"])))
    else:
        env = draw(environments())
        goal = draw(simple_types(max_depth=2))
    return env, goal
