"""Popularity and arrival samplers: distribution sanity under fixed seeds.

Timing-free by construction — every assertion is about a deterministic
draw from a seeded generator, so these run in the blocking tier-1 job.
"""

import random
from collections import Counter

import pytest

from repro.loadgen.arrivals import (ZipfSampler, bursty_arrivals,
                                    interleave_sorted, poisson_arrivals)


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(40, 1.1)
        total = sum(sampler.probability(rank) for rank in range(40))
        assert total == pytest.approx(1.0)

    def test_probabilities_strictly_decrease(self):
        sampler = ZipfSampler(25, 1.0)
        probabilities = [sampler.probability(rank) for rank in range(25)]
        assert probabilities == sorted(probabilities, reverse=True)
        assert probabilities[0] > 3 * probabilities[24]

    def test_empirical_frequencies_track_probabilities(self):
        """Under a fixed seed, 20k draws land within a few percent of the
        exact pmf for the head ranks — the Zipf shape is real, not an
        artefact of the cdf/bisect plumbing."""
        sampler = ZipfSampler(16, 1.2)
        rng = random.Random(99)
        draws = 20_000
        counts = Counter(sampler.sample(rng) for _ in range(draws))
        for rank in range(4):
            expected = sampler.probability(rank)
            observed = counts[rank] / draws
            assert observed == pytest.approx(expected, rel=0.12), (
                f"rank {rank}: observed {observed:.4f} vs "
                f"pmf {expected:.4f}")
        # Every rank is reachable and all draws are in range.
        assert set(counts) <= set(range(16))
        assert counts[0] > counts[8] > 0

    def test_deterministic_for_equal_seeds(self):
        sampler = ZipfSampler(10, 1.0)
        first = sampler.sample_many(random.Random(7), 500)
        second = sampler.sample_many(random.Random(7), 500)
        assert first == second

    def test_exponent_zero_is_uniform(self):
        sampler = ZipfSampler(8, 0.0)
        assert sampler.probability(0) == pytest.approx(
            sampler.probability(7))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, -0.1)
        with pytest.raises(ValueError):
            ZipfSampler(5).probability(5)


class TestPoissonArrivals:
    def test_sorted_and_in_range(self):
        times = poisson_arrivals(50.0, 4.0, random.Random(3))
        assert times == sorted(times)
        assert all(0.0 <= t < 4.0 for t in times)

    def test_count_tracks_rate(self):
        rng = random.Random(11)
        times = poisson_arrivals(100.0, 10.0, rng)
        # Expected 1000; a seeded draw is deterministic, but keep the
        # bound loose so unrelated RNG-consumption changes do not break
        # the distributional claim being tested.
        assert 850 <= len(times) <= 1150

    def test_start_offset_respected(self):
        times = poisson_arrivals(30.0, 2.0, random.Random(5), start_s=7.0)
        assert all(7.0 <= t < 9.0 for t in times)

    def test_deterministic(self):
        assert poisson_arrivals(20.0, 3.0, random.Random(42)) == \
            poisson_arrivals(20.0, 3.0, random.Random(42))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 1.0, random.Random(1))
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, -1.0, random.Random(1))


class TestBurstyArrivals:
    def test_sorted_in_range_and_deterministic(self):
        args = (10.0, 120.0, 2.0, 0.25, 8.0)
        times = bursty_arrivals(*args, random.Random(13))
        assert times == sorted(times)
        assert all(0.0 <= t < 8.0 for t in times)
        assert times == bursty_arrivals(*args, random.Random(13))

    def test_burst_windows_are_denser(self):
        """Arrival density inside the burst windows beats the base
        windows by roughly the rate ratio."""
        period, fraction = 2.0, 0.25
        times = bursty_arrivals(10.0, 160.0, period, fraction, 40.0,
                                random.Random(17))
        in_burst = sum(1 for t in times if (t % period) < fraction * period)
        in_base = len(times) - in_burst
        burst_time = 40.0 * fraction
        base_time = 40.0 * (1 - fraction)
        assert in_burst / burst_time > 4 * (in_base / base_time)

    def test_zero_burst_fraction_is_plain_poisson_rate(self):
        times = bursty_arrivals(50.0, 500.0, 1.0, 0.0, 10.0,
                                random.Random(23))
        assert 400 <= len(times) <= 600

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            bursty_arrivals(1.0, 2.0, 1.0, 1.5, 4.0, random.Random(1))
        with pytest.raises(ValueError):
            bursty_arrivals(1.0, 2.0, 0.0, 0.5, 4.0, random.Random(1))


class TestInterleave:
    def test_merges_sorted(self):
        merged = interleave_sorted([[1.0, 3.0], [0.5, 2.0, 9.0], []])
        assert merged == [0.5, 1.0, 2.0, 3.0, 9.0]
