"""Chaos controller: kill planning, victim selection, recovery arithmetic."""

import subprocess
import sys
import time

import pytest

from repro.loadgen.chaos import (ChaosController, ChaosError, ChaosOutcome,
                                 ChaosPlan, KillRecord, StallRecord)


class TestKillIndices:
    def test_single_kill_lands_at_fraction(self):
        plan = ChaosPlan(kills=1, at_fraction=0.5)
        assert plan.kill_indices(100) == [50]
        assert plan.kill_indices(1) == [0]

    def test_no_events_no_kills(self):
        assert ChaosPlan(kills=1).kill_indices(0) == []
        assert ChaosPlan(kills=0).kill_indices(100) == []

    def test_multiple_kills_spread_over_remaining_events(self):
        indices = ChaosPlan(kills=3, at_fraction=0.25).kill_indices(100)
        assert len(indices) == 3
        assert indices == sorted(indices)
        assert all(0 <= index < 100 for index in indices)
        assert indices[0] == 25

    def test_kills_never_exceed_event_range(self):
        indices = ChaosPlan(kills=5, at_fraction=0.9).kill_indices(10)
        assert all(0 <= index < 10 for index in indices)

    def test_fraction_one_clamps_to_last_event(self):
        assert ChaosPlan(kills=1, at_fraction=1.0).kill_indices(10) == [9]


class TestVictimSelection:
    def test_killable_filters_unmanaged_and_pidless(self):
        healthz = {"backends": [
            {"backend_id": "b0", "managed": True, "pid": 1234},
            {"backend_id": "b1", "managed": False, "pid": 5678},
            {"backend_id": "b2", "managed": True, "pid": None},
        ]}
        killable = ChaosController.killable_backends(healthz)
        assert [backend["backend_id"] for backend in killable] == ["b0"]

    def test_empty_health_view(self):
        assert ChaosController.killable_backends({}) == []

    def test_strike_without_victims_raises(self):
        controller = ChaosController(ChaosPlan())
        with pytest.raises(ChaosError, match="no managed backend"):
            controller.strike({"backends": []}, phase="burst",
                              event_index=0)

    def test_victim_choice_is_deterministic_per_seed(self):
        healthz = {"backends": [
            {"backend_id": f"b{i}", "managed": True, "pid": 10_000 + i}
            for i in range(8)]}

        def choices(seed):
            controller = ChaosController(ChaosPlan(kills=4, seed=seed))
            picked = []
            for index in range(4):
                victims = controller.killable_backends(healthz)
                victim = victims[controller._rng.randrange(len(victims))]
                picked.append(victim["backend_id"])
            return picked

        assert choices(7) == choices(7)


class TestStrike:
    def test_strike_kills_a_real_process(self):
        """SIGKILL an expendable child and verify the record."""
        child = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            controller = ChaosController(ChaosPlan(seed=1))
            healthz = {"backends": [
                {"backend_id": "b0", "managed": True, "pid": child.pid}]}
            record = controller.strike(healthz, phase="burst",
                                       event_index=3)
            assert record.pid == child.pid
            assert record.phase == "burst"
            assert record.event_index == 3
            assert controller.kills == 1
            # The child really died from SIGKILL.
            assert child.wait(timeout=10) == -9
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()

    def test_strike_tolerates_already_dead_pid(self):
        child = subprocess.Popen(
            [sys.executable, "-c", "pass"])
        child.wait(timeout=10)
        # Give the kernel a beat; the pid is now free-or-dead.  A reused
        # pid is theoretically possible but astronomically unlikely in
        # the lifetime of this test.
        time.sleep(0.05)
        controller = ChaosController(ChaosPlan(seed=1))
        healthz = {"backends": [
            {"backend_id": "b0", "managed": True, "pid": child.pid}]}
        record = controller.strike(healthz, phase="burst", event_index=0)
        assert record.pid == child.pid
        assert controller.kills == 1


class TestRecoveryReport:
    def test_report_without_router_stats_is_inconclusive(self):
        controller = ChaosController(ChaosPlan())
        section = controller.report(None, journal_scenes=5)
        assert section["kills"] == 0
        assert section["recovered"] is None
        assert section["reregistration_storm_bounded"] is None

    def test_recovered_requires_restart_per_kill(self):
        controller = ChaosController(ChaosPlan(kills=2))
        for index in range(2):
            controller.records.append(KillRecord(
                backend_id=f"b{index}", pid=100 + index, phase="burst",
                event_index=index, at_monotonic=0.0))
        ok = controller.report({"restarts": 2, "reregistrations": 3},
                               journal_scenes=5)
        assert ok["recovered"] is True
        short = controller.report({"restarts": 1, "reregistrations": 3},
                                  journal_scenes=5)
        assert short["recovered"] is False

    def test_reregistration_storm_bound(self):
        controller = ChaosController(ChaosPlan(kills=1))
        controller.records.append(KillRecord(
            backend_id="b0", pid=1, phase="burst", event_index=0,
            at_monotonic=0.0))
        # Bound is kills * journal_scenes: 1 * 6 = 6.
        bounded = controller.report({"restarts": 1, "reregistrations": 6},
                                    journal_scenes=6)
        assert bounded["reregistration_storm_bounded"] is True
        storm = controller.report({"restarts": 1, "reregistrations": 7},
                                  journal_scenes=6)
        assert storm["reregistration_storm_bounded"] is False

    def test_zero_kills_is_vacuously_recovered(self):
        controller = ChaosController(ChaosPlan())
        section = controller.report({"restarts": 0, "reregistrations": 0},
                                    journal_scenes=0)
        assert section["recovered"] is True
        assert section["reregistration_storm_bounded"] is True

    def test_outcome_merges_extra_fields(self):
        controller = ChaosController(ChaosPlan())
        outcome = ChaosOutcome(plan=controller.plan, controller=controller,
                               router_stats={"restarts": 0,
                                             "reregistrations": 0},
                               journal_scenes=3,
                               extra={"note": "quiet run"})
        doc = outcome.to_doc()
        assert doc["note"] == "quiet run"
        assert doc["kills"] == 0


class TestStall:
    @staticmethod
    def _proc_state(pid):
        with open(f"/proc/{pid}/stat", encoding="ascii") as handle:
            return handle.read().rsplit(")", 1)[1].split()[0]

    def test_stall_stops_and_resume_continues_a_real_process(self):
        """SIGSTOP parks the child (state ``T``); SIGCONT revives it —
        and the child never dies, the defining gray-failure property."""
        child = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            controller = ChaosController(ChaosPlan(mode="slow", seed=1))
            healthz = {"backends": [
                {"backend_id": "b0", "managed": True, "pid": child.pid}]}
            record = controller.strike(healthz, phase="burst",
                                       event_index=2)
            assert record.backend_id == "b0"
            assert record.resumed is False
            assert controller.stalls == 1
            assert controller.kills == 0, (
                "slow mode must not be recorded as a kill")
            deadline = time.monotonic() + 5.0
            while self._proc_state(child.pid) != "T":
                assert time.monotonic() < deadline, "child never stopped"
                time.sleep(0.01)

            assert controller.resume_all() == 1
            assert record.resumed is True
            assert controller.resume_all() == 0     # idempotent
            deadline = time.monotonic() + 5.0
            while self._proc_state(child.pid) == "T":
                assert time.monotonic() < deadline, "child never resumed"
                time.sleep(0.01)
            assert child.poll() is None, "the stalled child must survive"
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()

    def test_stall_skips_already_stalled_victims(self):
        child = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            controller = ChaosController(ChaosPlan(mode="slow", seed=1))
            healthz = {"backends": [
                {"backend_id": "b0", "managed": True, "pid": child.pid}]}
            controller.stall(healthz, phase="burst", event_index=0)
            with pytest.raises(ChaosError, match="un-stalled"):
                controller.stall(healthz, phase="burst", event_index=1)
        finally:
            controller.resume_all()
            child.kill()
            child.wait()

    def test_stall_tolerates_a_dead_pid(self):
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait(timeout=10)
        time.sleep(0.05)
        controller = ChaosController(ChaosPlan(mode="slow"))
        healthz = {"backends": [
            {"backend_id": "b0", "managed": True, "pid": child.pid}]}
        record = controller.stall(healthz, phase="burst", event_index=0)
        assert record.pid == child.pid
        assert controller.resume_all() == 1     # nothing to continue; noted


class TestSlowModeReport:
    @staticmethod
    def _stalled_controller(resumed):
        controller = ChaosController(ChaosPlan(mode="slow"))
        controller.stall_records.append(StallRecord(
            backend_id="b0", pid=100, phase="burst", event_index=3,
            at_monotonic=0.0, resumed=resumed))
        return controller

    def test_recovered_means_every_stall_was_resumed(self):
        ok = self._stalled_controller(resumed=True).report(
            {"restarts": 0, "reregistrations": 0}, journal_scenes=3)
        assert ok["mode"] == "slow"
        assert ok["recovered"] is True
        stuck = self._stalled_controller(resumed=False).report(
            {"restarts": 0, "reregistrations": 0}, journal_scenes=3)
        assert stuck["recovered"] is False
        assert stuck["stalls"] == 1
        assert stuck["stall_records"][0]["resumed"] is False

    def test_slow_recovery_needs_no_restarts(self):
        """A stall recovers by rejoining, not respawning — zero
        restarts must still read as recovered."""
        section = self._stalled_controller(resumed=True).report(
            {"restarts": 0, "reregistrations": 2}, journal_scenes=2)
        assert section["recovered"] is True
        assert section["observed_restarts"] == 0

    def test_zero_stalls_is_vacuously_recovered(self):
        controller = ChaosController(ChaosPlan(mode="slow"))
        section = controller.report({"restarts": 0, "reregistrations": 0},
                                    journal_scenes=0)
        assert section["recovered"] is True

    def test_stalls_feed_the_storm_bound(self):
        controller = self._stalled_controller(resumed=True)
        # Bound is (kills + stalls) * journal_scenes: 1 * 4 = 4.
        bounded = controller.report({"restarts": 0, "reregistrations": 4},
                                    journal_scenes=4)
        assert bounded["reregistration_storm_bounded"] is True
        storm = controller.report({"restarts": 0, "reregistrations": 5},
                                  journal_scenes=4)
        assert storm["reregistration_storm_bounded"] is False

    def test_gray_counters_are_plumbed_through(self):
        section = self._stalled_controller(resumed=True).report(
            {"restarts": 0, "reregistrations": 0, "hedges": {"fired": 4,
             "won": 3}, "deadline_exceeded": 1, "slow_timeouts": 2,
             "ejections": 1, "rebalances": 0}, journal_scenes=1)
        assert section["observed_hedges"] == {"fired": 4, "won": 3}
        assert section["observed_deadline_exceeded"] == 1
        assert section["observed_slow_timeouts"] == 2
        assert section["observed_ejections"] == 1
        assert section["observed_rebalances"] == 0
