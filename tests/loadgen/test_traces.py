"""Trace generation: determinism, canonical serialisation, validation."""

import dataclasses
import json

import pytest

from repro.loadgen.traces import (PHASE_BURST, PHASE_PRIME, PHASE_RECOVERY,
                                  PHASE_STEADY, PROFILES, TRACE_SCHEMA,
                                  Trace, TraceError, TraceSpec,
                                  generate_trace, load_trace, trace_digest,
                                  write_trace)

SMOKE = PROFILES["smoke"]


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        first = generate_trace(SMOKE)
        second = generate_trace(SMOKE)
        assert first.to_json() == second.to_json()
        assert trace_digest(first) == trace_digest(second)

    def test_trace_files_are_byte_identical_across_runs(self, tmp_path):
        """The satellite regression test: two generations of the same
        spec, written to disk, produce byte-for-byte equal files."""
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_trace(generate_trace(SMOKE), str(a))
        write_trace(generate_trace(SMOKE), str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_different_seed_diverges(self):
        reseeded = dataclasses.replace(SMOKE, seed=SMOKE.seed + 1)
        assert generate_trace(SMOKE).to_json() != \
            generate_trace(reseeded).to_json()

    def test_digest_tracks_content(self):
        reseeded = dataclasses.replace(SMOKE, seed=4096)
        assert trace_digest(generate_trace(SMOKE)) != \
            trace_digest(generate_trace(reseeded))


class TestGeneration:
    def test_phase_plan_shape(self):
        trace = generate_trace(SMOKE)
        names = [phase.name for phase in trace.phases]
        assert names == [PHASE_PRIME, PHASE_STEADY, PHASE_BURST,
                         PHASE_RECOVERY]
        assert trace.phase(PHASE_PRIME).mode == "closed"
        assert trace.phase(PHASE_STEADY).mode == "open"
        assert trace.phase(PHASE_BURST).chaos_eligible
        assert not trace.phase(PHASE_STEADY).chaos_eligible

    def test_prime_registers_everything_and_double_completes_hot(self):
        trace = generate_trace(SMOKE)
        prime = trace.events_for(PHASE_PRIME)
        registers = [e for e in prime if e.op == "register"]
        completes = [e for e in prime if e.op == "complete"]
        assert len(registers) == SMOKE.scenes
        # Hot set completed twice: one cold synthesis, one warm hit each.
        assert len(completes) == 2 * SMOKE.hot_scenes

    def test_burst_targets_only_hot_scenes(self):
        trace = generate_trace(SMOKE)
        hot = {f"s{i:03d}" for i in range(SMOKE.hot_scenes)}
        burst = trace.events_for(PHASE_BURST)
        assert burst, "burst phase generated no events"
        assert {event.scene for event in burst} <= hot
        assert all(event.op == "complete" for event in burst)

    def test_steady_churn_introduces_new_scenes(self):
        trace = generate_trace(PROFILES["ci"])
        churned = [event for event in trace.events_for(PHASE_STEADY)
                   if event.scene.startswith("c")]
        assert any(event.op == "register" for event in churned)
        # Every churned scene is carried in the trace body.
        assert all(event.scene in trace.scenes for event in churned)

    def test_open_loop_timestamps_sorted_per_phase(self):
        trace = generate_trace(SMOKE)
        for name in (PHASE_STEADY, PHASE_BURST):
            times = [event.t_ms for event in trace.events_for(name)]
            assert times == sorted(times)

    def test_tenant_variants_have_distinct_texts(self):
        trace = generate_trace(SMOKE)
        texts = [scene["text"] for scene in trace.scenes.values()]
        assert len(set(texts)) == len(texts)
        assert all("# tenant:" in text for text in texts)

    def test_rejects_bad_spec(self):
        with pytest.raises(TraceError):
            generate_trace(dataclasses.replace(SMOKE, hot_scenes=0))
        with pytest.raises(TraceError):
            generate_trace(dataclasses.replace(SMOKE, scenes=2,
                                               hot_scenes=5))


class TestSerialisation:
    def test_write_load_roundtrip(self, tmp_path):
        trace = generate_trace(SMOKE)
        path = tmp_path / "trace.json"
        write_trace(trace, str(path))
        loaded = load_trace(str(path))
        assert loaded.to_json() == trace.to_json()
        assert loaded.spec == trace.spec

    def test_spec_doc_roundtrip(self):
        spec = dataclasses.replace(SMOKE, seed=777, n_choices=(5, 3))
        assert TraceSpec.from_doc(spec.to_doc()) == spec

    def test_from_doc_rejects_wrong_schema(self):
        doc = generate_trace(SMOKE).to_doc()
        doc["schema"] = "something-else/v9"
        with pytest.raises(TraceError, match=TRACE_SCHEMA):
            Trace.from_doc(doc)

    def test_from_doc_rejects_missing_scene_text(self):
        doc = generate_trace(SMOKE).to_doc()
        first = next(iter(doc["scenes"]))
        del doc["scenes"][first]["text"]
        with pytest.raises(TraceError, match="no text"):
            Trace.from_doc(doc)

    def test_from_doc_rejects_unknown_scene_reference(self):
        doc = generate_trace(SMOKE).to_doc()
        doc["events"][0] = dict(doc["events"][0], scene="zzz")
        with pytest.raises(TraceError, match="unknown scene"):
            Trace.from_doc(doc)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(TraceError, match="cannot load"):
            load_trace(str(path))

    def test_canonical_json_is_stable_under_reparse(self):
        trace = generate_trace(SMOKE)
        reloaded = Trace.from_doc(json.loads(trace.to_json()))
        assert reloaded.to_json() == trace.to_json()


class TestProfiles:
    def test_all_profiles_generate(self):
        for name, spec in PROFILES.items():
            assert spec.profile == name
            trace = generate_trace(spec)
            assert len(trace) > 0
            assert len(trace.scenes) >= spec.scenes
