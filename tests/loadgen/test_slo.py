"""SLO accounting: exact merged percentiles and error-budget edges."""

import random

import pytest

from repro.loadgen.slo import (SCHEMA, SLO, PhaseAccount, SloAccountant,
                               SloError, build_report, check_regression,
                               evaluate_slos, percentile)


def brute_force_percentile(samples, fraction):
    """Independent recompute of the LatencyWindow convention."""
    ordered = sorted(samples)
    return ordered[min(int(fraction * len(ordered)), len(ordered) - 1)]


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.95) is None

    def test_single_sample(self):
        assert percentile([42.0], 0.5) == 42.0
        assert percentile([42.0], 0.99) == 42.0

    def test_matches_brute_force_on_random_data(self):
        rng = random.Random(31)
        samples = [rng.lognormvariate(1.0, 1.5) for _ in range(997)]
        for fraction in (0.0, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert percentile(samples, fraction) == \
                brute_force_percentile(samples, fraction)

    def test_rejects_bad_fraction(self):
        with pytest.raises(SloError):
            percentile([1.0], 1.5)


class TestMergedPhases:
    def test_merged_p99_matches_brute_force_over_concatenation(self):
        """The satellite's headline property: a p99 over merged phases
        equals a brute-force recompute over the concatenated raw
        samples — no summary-merge approximation."""
        rng = random.Random(67)
        accountant = SloAccountant()
        raw = {"steady": [rng.expovariate(0.01) for _ in range(400)],
               "burst": [rng.expovariate(0.002) for _ in range(150)],
               "recovery": [rng.uniform(0.1, 2.0) for _ in range(30)]}
        for phase, samples in raw.items():
            for sample in samples:
                accountant.record_ok(phase, sample)

        for names in (("steady", "burst"), ("burst", "recovery"),
                      ("steady", "burst", "recovery")):
            merged = accountant.merged(names)
            concatenated = [s for name in names for s in raw[name]]
            assert sorted(merged.latencies_ms) == sorted(concatenated)
            snapshot = merged.snapshot()
            for key, fraction in (("p50_ms", 0.50), ("p95_ms", 0.95),
                                  ("p99_ms", 0.99)):
                assert snapshot[key] == pytest.approx(
                    brute_force_percentile(concatenated, fraction),
                    abs=0.001)

    def test_merged_default_is_every_phase(self):
        accountant = SloAccountant()
        accountant.record_ok("a", 1.0)
        accountant.record_ok("b", 2.0)
        accountant.record_error("b", "overloaded")
        merged = accountant.merged()
        assert merged.requests == 3
        assert merged.errors == 1
        assert merged.error_codes == {"overloaded": 1}

    def test_merged_skips_unknown_names(self):
        accountant = SloAccountant()
        accountant.record_ok("a", 1.0)
        merged = accountant.merged(("a", "never-ran"))
        assert merged.requests == 1

    def test_hit_rate_accounting(self):
        accountant = SloAccountant()
        accountant.record_ok("p", 1.0, completion=True, cache_hit=True)
        accountant.record_ok("p", 1.0, completion=True, cache_hit=False)
        accountant.record_ok("p", 1.0)               # register/release op
        account = accountant.phase("p")
        assert account.completions == 2
        assert account.cache_hit_rate == pytest.approx(0.5)


class TestErrorBudgetEdges:
    def test_zero_request_phase_has_zero_error_rate(self):
        account = PhaseAccount("idle")
        assert account.requests == 0
        assert account.error_rate == 0.0

    def test_zero_request_phase_passes_zero_budget(self):
        """A phase that never ran consumed none of its budget — even a
        budget of exactly 0 must pass."""
        accountant = SloAccountant()
        accountant.phase("recovery")
        verdicts = evaluate_slos(accountant, [
            SLO("strict", phases=("recovery",), error_budget=0.0)])
        assert verdicts[0].ok, verdicts[0].failures

    def test_all_error_phase_blows_any_finite_budget(self):
        accountant = SloAccountant()
        for _ in range(20):
            accountant.record_error("burst", "connection")
        verdicts = evaluate_slos(accountant, [
            SLO("budget", phases=("burst",), error_budget=0.5)])
        assert not verdicts[0].ok
        assert any("error rate" in failure
                   for failure in verdicts[0].failures)

    def test_all_error_phase_does_not_sneak_past_latency_target(self):
        """No latency samples means latency targets are vacuous, but the
        error budget still has teeth — the combined SLO must fail."""
        accountant = SloAccountant()
        accountant.record_error("steady", "connection")
        verdicts = evaluate_slos(accountant, [
            SLO("latency+budget", phases=("steady",), p95_ms=100.0,
                error_budget=0.01)])
        assert not verdicts[0].ok

    def test_min_hit_rate_fails_without_completions(self):
        accountant = SloAccountant()
        accountant.record_ok("recovery", 1.0)        # non-completion op
        verdicts = evaluate_slos(accountant, [
            SLO("warm", phases=("recovery",), error_budget=1.0,
                min_hit_rate=0.99)])
        assert not verdicts[0].ok
        assert any("hit rate" in failure
                   for failure in verdicts[0].failures)

    def test_latency_target_breach_fails(self):
        accountant = SloAccountant()
        for latency in (10.0, 20.0, 5000.0):
            accountant.record_ok("steady", latency)
        verdicts = evaluate_slos(accountant, [
            SLO("p95", phases=("steady",), p95_ms=100.0,
                error_budget=1.0)])
        assert not verdicts[0].ok


def _report(p95s, *, slo_ok=True, kills=None):
    phases = {name: {"p95_ms": value} for name, value in p95s.items()}
    report = {"schema": SCHEMA, "phases": phases, "slo_ok": slo_ok,
              "slo": [] if slo_ok else [
                  {"slo": {"name": "broken"}, "ok": False}]}
    if kills is not None:
        report["chaos"] = {"kills": kills}
    return report


class TestCheckRegression:
    def test_within_budget_passes(self):
        committed = _report({"steady": 100.0, "burst": 200.0})
        measured = _report({"steady": 110.0, "burst": 220.0})
        assert check_regression(committed, measured, 0.25) == []

    def test_summed_p95_regression_fails(self):
        committed = _report({"steady": 100.0, "burst": 200.0})
        measured = _report({"steady": 100.0, "burst": 300.0})
        failures = check_regression(committed, measured, 0.25)
        assert failures and "p95 regression" in failures[0]

    def test_summing_damps_single_phase_noise(self):
        """One phase 50% slower but the other faster: the sum stays
        inside the budget, so the gate does not fire on noise."""
        committed = _report({"steady": 100.0, "burst": 200.0})
        measured = _report({"steady": 150.0, "burst": 180.0})
        assert check_regression(committed, measured, 0.25) == []

    def test_no_common_phases_is_a_finding(self):
        failures = check_regression(_report({"steady": 1.0}),
                                    _report({"other": 1.0}))
        assert failures and "no comparable phases" in failures[0]

    def test_measured_slo_violation_is_a_finding(self):
        committed = _report({"steady": 100.0})
        measured = _report({"steady": 100.0}, slo_ok=False)
        failures = check_regression(committed, measured)
        assert any("violated its declared SLOs" in f for f in failures)

    def test_shrunk_chaos_coverage_is_a_finding(self):
        committed = _report({"steady": 100.0}, kills=2)
        measured = _report({"steady": 100.0}, kills=1)
        failures = check_regression(committed, measured)
        assert any("chaos coverage shrank" in f for f in failures)

    def test_chaosless_committed_report_tolerates_chaosless_run(self):
        committed = _report({"steady": 100.0})
        measured = _report({"steady": 100.0})
        assert check_regression(committed, measured) == []


class TestBuildReport:
    def test_report_shape(self):
        accountant = SloAccountant()
        for phase, latency in (("steady", 10.0), ("burst", 20.0)):
            accountant.record_ok(phase, latency, completion=True,
                                 cache_hit=True)
        report = build_report(
            accountant,
            trace_doc={"spec": {"seed": 1}, "scenes": {"s": {}},
                       "events": [1, 2]},
            trace_digest="d" * 64,
            topology={"mode": "router", "backends": 2})
        assert report["schema"] == SCHEMA
        assert report["protocol"]["trace_digest"] == "d" * 64
        assert report["protocol"]["scenes"] == 1
        assert report["protocol"]["events"] == 2
        assert set(report["phases"]) == {"steady", "burst"}
        assert report["summary"]["p95_ms_sum"] == pytest.approx(30.0)
        assert "chaos" not in report
        # Whole-run SLOs evaluated over two clean requests all pass.
        assert report["slo_ok"] in (True, False)

    def test_report_carries_chaos_section(self):
        accountant = SloAccountant()
        accountant.record_ok("steady", 10.0)
        report = build_report(
            accountant, trace_doc={}, trace_digest="x",
            topology={}, chaos={"kills": 1, "recovered": True})
        assert report["chaos"] == {"kills": 1, "recovered": True}


class TestDeadlineBucket:
    """``deadline_exceeded`` is its own bucket: the stack shed on time,
    it did not fail — so sheds live in the request denominator but
    never in the error numerator."""

    def test_deadline_sheds_are_requests_but_not_errors(self):
        account = PhaseAccount("burst")
        account.latencies_ms.extend([10.0] * 8)
        account.deadline_exceeded = 2
        assert account.requests == 10
        assert account.errors == 0
        assert account.error_rate == 0.0

    def test_record_deadline_counts_phase_and_retries(self):
        accountant = SloAccountant()
        accountant.record_ok("burst", 12.0)
        accountant.record_deadline("burst", retries=1)
        accountant.record_deadline("burst")
        account = accountant.phase("burst")
        assert account.deadline_exceeded == 2
        assert account.retries == 1
        assert account.requests == 3
        snapshot = account.snapshot()
        assert snapshot["deadline_exceeded"] == 2
        assert snapshot["errors"] == 0
        assert snapshot["error_rate"] == 0.0

    def test_merged_sums_deadline_sheds_across_phases(self):
        accountant = SloAccountant()
        accountant.record_deadline("burst")
        accountant.record_deadline("recovery")
        accountant.record_ok("recovery", 5.0)
        merged = accountant.merged()
        assert merged.deadline_exceeded == 2
        assert merged.requests == 3

    def test_zero_error_budget_tolerates_deadline_sheds(self):
        """The gate-level contract: a phase full of on-time sheds must
        pass an error_budget=0 SLO, while one real error must fail it —
        sheds and failures are different verdicts by design."""
        accountant = SloAccountant()
        for _ in range(5):
            accountant.record_ok("burst", 10.0, completion=True)
        for _ in range(3):
            accountant.record_deadline("burst")
        slo = SLO(name="no-errors", phases=("burst",), error_budget=0.0)
        (verdict,) = evaluate_slos(accountant, [slo])
        assert verdict.ok, verdict.failures

        accountant.record_error("burst", "internal")
        (verdict,) = evaluate_slos(accountant, [slo])
        assert not verdict.ok
        assert any("error rate" in failure
                   for failure in verdict.failures)
