"""End-to-end chaos-kill plumbing against a tiny local topology.

The blocking CI self-test: boots a real 2-backend ``repro route``
topology, replays a miniature trace with one chaos kill, and asserts the
*plumbing* — events executed, a backend actually died and was respawned,
recovery went warm, report structure sound.  Every assertion is
timing-free (counts, flags, structure); wall-clock latencies are only
collected, never compared, so the test is load-agnostic and safe for
shared CI runners.
"""

import asyncio
import dataclasses
import subprocess

import pytest

from repro.loadgen.chaos import ChaosPlan
from repro.loadgen.driver import DriverConfig, replay_trace
from repro.loadgen.slo import SLO, build_report, evaluate_slos
from repro.loadgen.traces import (PHASE_BURST, PHASE_RECOVERY, PROFILES,
                                  generate_trace, trace_digest)
from repro.server.router import spawn_cli_server

#: A miniature workload: the smoke profile's scene population (the
#: deterministic victim pick owns a hot scene there, so the dead shard
#: is guaranteed post-kill traffic and an on-demand respawn) with the
#: time axis shrunk — scene ownership depends only on scene texts, not
#: on rates or durations.
TINY_SPEC = dataclasses.replace(
    PROFILES["smoke"], steady_rate_hz=10.0, steady_duration_s=0.8,
    burst_rate_hz=25.0, burst_base_hz=8.0, burst_duration_s=0.8,
    burst_period_s=0.4)


@pytest.fixture(scope="module")
def router_topology(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("loadgen-e2e")
    process, host, port = spawn_cli_server(
        "route",
        ("--backends", "2",
         "--journal", str(workdir / "journal.jsonl"),
         "--snapshot-dir", str(workdir / "snapshots")),
        label="loadgen-e2e")
    try:
        yield host, port
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


class TestChaosPlumbingE2E:
    def test_replay_with_one_kill_recovers_warm(self, router_topology):
        host, port = router_topology
        trace = generate_trace(TINY_SPEC)
        plan = ChaosPlan(kills=1, seed=TINY_SPEC.seed)
        config = DriverConfig(host=host, port=port, time_scale=0.5,
                              chaos=plan)
        result = asyncio.run(replay_trace(trace, config))

        # Every trace event was executed and accounted for somewhere.
        merged = result.accountant.merged()
        assert merged.requests == len(trace.events)

        # The kill was delivered inside the chaos-eligible phase...
        assert result.chaos is not None
        chaos_doc = result.chaos.to_doc()
        assert chaos_doc["kills"] == 1
        assert chaos_doc["records"][0]["phase"] == PHASE_BURST
        # ...and the router noticed and respawned (restart counters are
        # cumulative on the supervisor, so a kill can't hide).
        assert chaos_doc["observed_restarts"] >= 1
        assert chaos_doc["recovered"] is True
        assert chaos_doc["reregistration_storm_bounded"] is True

        # The topology ended healthy with both shards present.
        assert result.healthz is not None
        backends = result.healthz["backends"]
        assert len(backends) == 2
        assert all(backend["healthy"] for backend in backends)
        assert result.topology_doc["router"] is True
        assert result.topology_doc["restarts"] >= 1

        # Post-kill recovery sweep was warm: snapshot restore + journal
        # replay means the hot set answers from cache even after a
        # SIGKILL mid-burst.
        recovery = result.accountant.phase(PHASE_RECOVERY)
        assert recovery.errors == 0
        assert recovery.completions > 0
        assert recovery.cache_hit_rate == 1.0

        # The warm-recovery SLO — the declared form of the assertion
        # above — agrees.
        verdicts = evaluate_slos(result.accountant, [
            SLO("warm-recovery", phases=(PHASE_RECOVERY,),
                error_budget=0.0, min_hit_rate=0.99)])
        assert verdicts[0].ok, verdicts[0].failures

        # And the report built from this replay is a complete
        # bench-serve document.
        report = build_report(
            result.accountant, trace_doc=trace.to_doc(),
            trace_digest=trace_digest(trace),
            topology=result.topology_doc, chaos=chaos_doc)
        assert report["schema"] == "bench-serve/v1"
        assert report["protocol"]["trace_digest"] == trace_digest(trace)
        assert set(report["phases"]) >= {PHASE_BURST, PHASE_RECOVERY}
        assert report["chaos"]["kills"] == 1
        assert report["summary"]["p95_ms_sum"] is not None
