"""Batch API ordering, deduplication and pool fan-out."""

import math

import pytest

from repro.engine import CompletionEngine, EngineQuery
from repro.engine.pool import default_worker_count, run_batch
from repro.lang.loader import load_environment_text
from repro.lang.parser import parse_type

SCENE_A = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
goal File
"""

SCENE_B = """
local path : String
imported java.io.FileReader.new : String -> FileReader \
[freq=90] [style=constructor] [display=FileReader]
goal FileReader
"""


@pytest.fixture
def engine():
    return CompletionEngine()


class TestRunBatch:
    def test_sequential_preserves_order(self):
        assert run_batch(math.sqrt, [16, 4, 1]) == [4.0, 2.0, 1.0]

    def test_pooled_preserves_order(self):
        # math.sqrt is picklable by reference, so this exercises the real
        # process pool where the sandbox allows one (and the sequential
        # fallback where it does not) — results must be identical either way.
        payloads = list(range(1, 20))
        assert run_batch(math.sqrt, payloads, max_workers=2) == \
            [math.sqrt(value) for value in payloads]

    def test_empty_batch(self):
        assert run_batch(math.sqrt, []) == []

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestCompleteBatch:
    def test_results_in_input_order(self, engine):
        loaded_a = load_environment_text(SCENE_A)
        loaded_b = load_environment_text(SCENE_B)
        scene_a = engine.prepare(loaded_a.environment, loaded_a.subtypes,
                                 goal=loaded_a.goal, name="a")
        scene_b = engine.prepare(loaded_b.environment, loaded_b.subtypes,
                                 goal=loaded_b.goal, name="b")
        queries = [
            EngineQuery(goal=loaded_b.goal, scene=scene_b),
            EngineQuery(goal=loaded_a.goal, scene=scene_a),
            EngineQuery(goal=parse_type("String"), scene=scene_a),
        ]
        served = engine.complete_batch(queries)
        assert [outcome.scene_name for outcome in served] == ["b", "a", "a"]
        assert served[0].snippets[0].code == 'new FileReader(path)'
        assert served[1].snippets[0].code == 'new File(name)'
        assert served[2].snippets[0].code == 'name'

    def test_batch_scene_default(self, engine):
        loaded = load_environment_text(SCENE_A)
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        served = engine.complete_batch(
            [EngineQuery(goal=loaded.goal),
             EngineQuery(goal=parse_type("String"))],
            scene=prepared)
        assert len(served) == 2
        assert all(outcome.result.inhabited for outcome in served)

    def test_duplicate_queries_computed_once(self, engine):
        loaded = load_environment_text(SCENE_A)
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        queries = [EngineQuery(goal=loaded.goal) for _ in range(3)]
        served = engine.complete_batch(queries, scene=prepared)
        assert engine.cache_stats.insertions == 1
        assert [outcome.cache_hit for outcome in served] == \
            [False, True, True]
        assert served[0].result is served[1].result is served[2].result

    def test_second_batch_is_all_hits(self, engine):
        loaded = load_environment_text(SCENE_A)
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        queries = [EngineQuery(goal=loaded.goal),
                   EngineQuery(goal=loaded.goal, variant="no_weights")]
        engine.complete_batch(queries, scene=prepared)
        rerun = engine.complete_batch(queries, scene=prepared)
        assert all(outcome.cache_hit for outcome in rerun)

    def test_pooled_batch_matches_sequential(self, engine):
        loaded = load_environment_text(SCENE_A)
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        queries = [EngineQuery(goal=loaded.goal),
                   EngineQuery(goal=parse_type("String")),
                   EngineQuery(goal=loaded.goal, variant="no_weights")]
        sequential = engine.complete_batch(queries, scene=prepared)

        pooled_engine = CompletionEngine(max_workers=2)
        pooled = pooled_engine.complete_batch(queries, scene=prepared)
        for left, right in zip(sequential, pooled):
            assert [s.code for s in left.snippets] == \
                [s.code for s in right.snippets]
            assert [s.weight for s in left.snippets] == \
                [s.weight for s in right.snippets]

    def test_batch_without_goal_rejected(self, engine):
        from repro.core.errors import EngineError

        loaded = load_environment_text(SCENE_A)
        prepared = engine.prepare(loaded.environment, loaded.subtypes)
        with pytest.raises(EngineError):
            engine.complete_batch([EngineQuery(goal=None)], scene=prepared)
