"""Scene lifecycle: release_scene, result purging, intern-table shedding."""

import pytest

from repro.core.succinct import intern_table_size
from repro.engine import CompletionEngine
from repro.lang.loader import load_environment_text

SCENE = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
goal File
"""

OTHER_SCENE = """
local count : Int
imported demo.Box.new : Int -> Box \
[freq=10] [style=constructor] [display=Box]
goal Box
"""


@pytest.fixture
def engine():
    return CompletionEngine()


def _prepare(engine, text, name="scene"):
    loaded = load_environment_text(text)
    return engine.prepare(loaded.environment, loaded.subtypes,
                          goal=loaded.goal, name=name)


class TestReleaseScene:
    def test_release_retires_environment_arena(self, engine):
        from repro.core.space import arena_stats

        prepared = _prepare(engine, SCENE)
        engine.complete(prepared)  # builds the scene arena
        arena = prepared.environment.succinct_arena()
        before = arena_stats()["retired_arenas"]
        engine.release_scene(prepared)
        assert arena_stats()["retired_arenas"] >= before + 1
        # A fresh accessor gets a new arena; the old one stayed intact for
        # any in-flight search that captured it.
        assert prepared.environment.succinct_arena() is not arena
        assert len(arena) >= 1

    def test_release_drops_scene_and_results(self, engine):
        prepared = _prepare(engine, SCENE)
        engine.complete(prepared)
        engine.complete(prepared, n=3)
        assert len(engine.scenes) == 1
        assert len(engine.results) == 2

        purged = engine.release_scene(prepared)
        assert purged == 2
        assert len(engine.scenes) == 0
        assert len(engine.results) == 0

    def test_release_keeps_other_scenes_results(self, engine):
        first = _prepare(engine, SCENE)
        second = _prepare(engine, OTHER_SCENE)
        engine.complete(first)
        engine.complete(second)

        engine.release_scene(first)
        assert len(engine.scenes) == 1
        assert len(engine.results) == 1
        # The survivor still serves from cache.
        assert engine.complete(second).cache_hit

    def test_release_last_scene_sheds_intern_table(self, engine):
        prepared = _prepare(engine, SCENE)
        assert intern_table_size() > 0
        engine.release_scene(prepared)
        assert intern_table_size() == 0

    def test_released_scene_can_be_reprepared(self, engine):
        prepared = _prepare(engine, SCENE)
        before = engine.complete(prepared)
        engine.release_scene(prepared)

        again = _prepare(engine, SCENE)
        served = engine.complete(again)
        assert not served.cache_hit         # results were really purged
        assert ([snippet.code for snippet in served.snippets]
                == [snippet.code for snippet in before.snippets])

    def test_release_without_shedding_keeps_types(self, engine):
        prepared = _prepare(engine, SCENE)
        assert intern_table_size() > 0
        engine.release_scene(prepared, shed_types=False)
        assert intern_table_size() > 0

    def test_purge_results_counts_only_matching_fingerprint(self, engine):
        first = _prepare(engine, SCENE)
        second = _prepare(engine, OTHER_SCENE)
        engine.complete(first)
        engine.complete(second)
        assert engine.purge_results(first.fingerprint) == 1
        assert engine.purge_results(first.fingerprint) == 0
        assert len(engine.results) == 1
