"""Result-cache snapshot/restore: the cross-process warm-up seam."""

import dataclasses
import pickle

import pytest

from repro.engine import CompletionEngine
from repro.engine.engine import SNAPSHOT_VERSION
from repro.lang.loader import load_environment_text

SCENE = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
goal File
"""

OTHER_SCENE = """
local count : Int
imported demo.Box.new : Int -> Box \
[freq=10] [style=constructor] [display=Box]
goal Box
"""


def _prepare(engine, text, name="scene"):
    loaded = load_environment_text(text)
    return engine.prepare(loaded.environment, loaded.subtypes,
                          goal=loaded.goal, name=name)


class TestSnapshotRoundTrip:
    def test_fresh_engine_restores_warm(self, tmp_path):
        path = str(tmp_path / "results.snapshot")
        engine = CompletionEngine()
        prepared = _prepare(engine, SCENE)
        cold = engine.complete(prepared)
        assert not cold.cache_hit
        assert engine.snapshot_results(path) == 1

        replica = CompletionEngine()
        assert replica.restore_results(path) == 1
        served = replica.complete(_prepare(replica, SCENE))
        assert served.cache_hit
        assert [s.code for s in served.snippets] == \
            [s.code for s in cold.snippets]

    def test_snapshot_covers_multiple_scenes_and_counts(self, tmp_path):
        path = str(tmp_path / "results.snapshot")
        engine = CompletionEngine()
        engine.complete(_prepare(engine, SCENE))
        engine.complete(_prepare(engine, OTHER_SCENE))
        engine.complete(_prepare(engine, SCENE), n=3)   # distinct budgets
        assert engine.snapshot_results(path) == 3

        replica = CompletionEngine()
        assert replica.restore_results(path) == 3
        assert len(replica.results) == 3

    def test_restore_filters_by_fingerprint(self, tmp_path):
        path = str(tmp_path / "results.snapshot")
        engine = CompletionEngine()
        prepared = _prepare(engine, SCENE)
        engine.complete(prepared)
        engine.complete(_prepare(engine, OTHER_SCENE))
        engine.snapshot_results(path)

        replica = CompletionEngine()
        assert replica.restore_results(
            path, fingerprints={prepared.fingerprint}) == 1
        assert replica.complete(_prepare(replica, SCENE)).cache_hit

    def test_snapshot_is_atomic_overwrite(self, tmp_path):
        path = str(tmp_path / "results.snapshot")
        engine = CompletionEngine()
        engine.complete(_prepare(engine, SCENE))
        engine.snapshot_results(path)
        engine.complete(_prepare(engine, OTHER_SCENE))
        assert engine.snapshot_results(path) == 2
        replica = CompletionEngine()
        assert replica.restore_results(path) == 2
        assert not list((tmp_path).glob(".snapshot-*")), \
            "temp files must not survive a save"


class TestRestoreValidation:
    def test_missing_file_restores_nothing(self, tmp_path):
        assert CompletionEngine().restore_results(
            str(tmp_path / "absent")) == 0

    def test_corrupt_file_restores_nothing(self, tmp_path):
        path = tmp_path / "corrupt"
        path.write_bytes(b"not a pickle")
        assert CompletionEngine().restore_results(str(path)) == 0

    def test_wrong_version_restores_nothing(self, tmp_path):
        path = str(tmp_path / "versioned")
        engine = CompletionEngine()
        engine.complete(_prepare(engine, SCENE))
        engine.snapshot_results(path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["version"] = SNAPSHOT_VERSION + 1
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        assert CompletionEngine().restore_results(path) == 0

    def test_fingerprint_mismatch_entries_are_skipped(self, tmp_path):
        """A tampered (or mis-merged) file can never serve results for
        the wrong scene content."""
        path = str(tmp_path / "tampered")
        engine = CompletionEngine()
        engine.complete(_prepare(engine, SCENE))
        engine.snapshot_results(path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        (fingerprint, entries), = payload["by_fingerprint"].items()
        key, result = entries[0]
        forged = dataclasses.replace(key,
                                     environment_fingerprint="f" * 64)
        payload["by_fingerprint"][fingerprint] = [(forged, result)]
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        assert CompletionEngine().restore_results(path) == 0

    def test_restored_entries_count_as_insertions(self, tmp_path):
        path = str(tmp_path / "stats")
        engine = CompletionEngine()
        engine.complete(_prepare(engine, SCENE))
        engine.snapshot_results(path)
        replica = CompletionEngine()
        replica.restore_results(path)
        assert replica.cache_stats.insertions == 1
        assert replica.cache_stats.refreshes == 0
        # Restoring the same snapshot again refreshes, not re-inserts.
        replica.restore_results(path)
        assert replica.cache_stats.insertions == 1
        assert replica.cache_stats.refreshes == 1


@pytest.mark.parametrize("payload", [
    {"version": SNAPSHOT_VERSION, "by_fingerprint": {"fp": "not-a-list"}},
    {"version": SNAPSHOT_VERSION, "by_fingerprint": {"fp": [("short",)]}},
    {"version": SNAPSHOT_VERSION,
     "by_fingerprint": {"fp": [("not-a-key", None)]}},
    {"by_fingerprint": {}},
    [],
])
def test_restore_rejects_malformed_payloads(tmp_path, payload):
    path = tmp_path / "malformed"
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)
    assert CompletionEngine().restore_results(str(path)) == 0


class TestProjectWeightsRideSnapshots:
    """Per-project ranking tables persist with the warm cache."""

    def _tables(self, counts=None):
        from repro.corpus.mining import ProjectWeightTables
        from repro.corpus.stats import FrequencyTable
        counts = counts or {"java.io.File.new": 40}
        return ProjectWeightTables(
            projects={"demo": FrequencyTable(counts)},
            global_table=FrequencyTable(counts))

    def test_tables_round_trip_through_the_snapshot(self, tmp_path):
        path = str(tmp_path / "results.snapshot")
        engine = CompletionEngine()
        engine.set_project_weights(self._tables())
        engine.complete(_prepare(engine, SCENE))
        assert engine.snapshot_results(path) == 1

        replica = CompletionEngine()
        assert replica.restore_results(path) == 1
        assert replica.project_weights is not None
        assert replica.project_weights.to_doc() == \
            engine.project_weights.to_doc()

    def test_explicit_tables_win_over_the_snapshot(self, tmp_path):
        path = str(tmp_path / "results.snapshot")
        engine = CompletionEngine()
        engine.set_project_weights(self._tables())
        engine.complete(_prepare(engine, SCENE))
        engine.snapshot_results(path)

        replica = CompletionEngine()
        configured = self._tables({"demo.Box.new": 7})
        replica.set_project_weights(configured)
        replica.restore_results(path)
        assert replica.project_weights is configured

    def test_snapshot_without_tables_installs_nothing(self, tmp_path):
        path = str(tmp_path / "results.snapshot")
        engine = CompletionEngine()
        engine.complete(_prepare(engine, SCENE))
        engine.snapshot_results(path)

        replica = CompletionEngine()
        replica.restore_results(path)
        assert replica.project_weights is None

    def test_garbled_tables_degrade_to_cold_ranking(self, tmp_path):
        """A snapshot whose weights document is corrupt still restores
        the cache — ranking configuration is never worth a cold start."""
        path = tmp_path / "results.snapshot"
        engine = CompletionEngine()
        engine.complete(_prepare(engine, SCENE))
        entries = engine.collect_results()
        CompletionEngine.write_snapshot(str(path), entries,
                                        project_weights={"version": 99})

        replica = CompletionEngine()
        assert replica.restore_results(str(path)) == 1
        assert replica.project_weights is None
