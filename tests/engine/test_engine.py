"""CompletionEngine behaviour: caching, invalidation, parity, warming."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.errors import EngineError
from repro.core.synthesizer import Synthesizer
from repro.core.weights import WeightPolicy
from repro.engine import CompletionEngine, PreparedScene
from repro.lang.loader import load_environment_text
from repro.lang.parser import parse_type

SCENE = """
subtype HttpURLConnection <: URLConnection

local address : String
local conn : HttpURLConnection

imported java.net.URL.new : String -> URL \
[freq=210] [style=constructor] [display=URL]
imported java.net.URL.openConnection : URL -> URLConnection \
[freq=150] [style=method] [display=openConnection]
imported java.net.URLConnection.getInputStream : \
URLConnection -> InputStream \
[freq=180] [style=method] [display=getInputStream]

goal InputStream
"""


@pytest.fixture
def loaded():
    return load_environment_text(SCENE)


@pytest.fixture
def engine():
    return CompletionEngine()


def _identity(result):
    return [(s.term, s.surface_term, s.weight, s.rank, s.code)
            for s in result.snippets]


class TestPrepare:
    def test_prepare_is_idempotent(self, engine, loaded):
        first = engine.prepare(loaded.environment, loaded.subtypes)
        second = engine.prepare(loaded.environment, loaded.subtypes)
        assert first is second

    def test_prepare_scene_like_object(self, engine, loaded):
        class SceneLike:
            environment = loaded.environment
            subtypes = loaded.subtypes
            goal = loaded.goal
            name = "url-scene"

        prepared = engine.prepare_scene(SceneLike())
        assert isinstance(prepared, PreparedScene)
        assert prepared.name == "url-scene"
        assert prepared.goal == loaded.goal

    def test_prepared_environment_includes_coercions(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes)
        assert len(prepared.environment) > len(loaded.environment)

    def test_subtype_edges_participate_in_identity(self, engine, loaded):
        with_edges = engine.prepare(loaded.environment, loaded.subtypes)
        without = engine.prepare(loaded.environment, None)
        assert with_edges is not without
        assert with_edges.fingerprint != without.fingerprint

    def test_unpreparable_input_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.complete(object(), parse_type("A"))

    def test_same_scene_different_default_goal(self, engine, loaded):
        """Identical declarations, different goals: the caller's goal wins."""
        first = engine.prepare(loaded.environment, loaded.subtypes,
                               goal=parse_type("InputStream"), name="a")
        second = engine.prepare(loaded.environment, loaded.subtypes,
                                goal=parse_type("URL"), name="b")
        assert first.goal == parse_type("InputStream")
        assert second.goal == parse_type("URL")
        assert second.name == "b"
        # the expensive state is still shared, not re-prepared
        assert second.environment is first.environment
        served = engine.complete(second)
        assert served.result.snippets[0].code == "new URL(address)"


class TestCaching:
    def test_miss_then_hit_shares_result(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        cold = engine.complete(prepared)
        warm = engine.complete(prepared)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.result is cold.result
        assert engine.cache_stats.hits == 1
        assert engine.cache_stats.misses == 1

    def test_different_goal_misses(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes)
        engine.complete(prepared, parse_type("InputStream"))
        other = engine.complete(prepared, parse_type("URL"))
        assert not other.cache_hit

    def test_different_variant_misses(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        engine.complete(prepared, variant="full")
        other = engine.complete(prepared, variant="no_weights")
        assert not other.cache_hit

    def test_different_limit_misses(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        engine.complete(prepared, n=2)
        other = engine.complete(prepared, n=1)
        assert not other.cache_hit
        assert len(other.result.snippets) == 1

    def test_different_budgets_miss(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        engine.complete(prepared)
        tighter = engine.complete(
            prepared, config=SynthesisConfig(prover_time_limit=0.1))
        assert not tighter.cache_hit

    def test_uninhabited_results_are_cached_too(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes)
        goal = parse_type("Unobtainium")
        cold = engine.complete(prepared, goal)
        warm = engine.complete(prepared, goal)
        assert not cold.result.inhabited
        assert warm.cache_hit

    def test_fingerprint_invalidation_on_environment_change(self, engine,
                                                            loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        engine.complete(prepared)

        grown = Environment(
            list(loaded.environment.declarations())
            + [Declaration("stream", parse_type("InputStream"),
                           DeclKind.LOCAL)])
        regrown = engine.prepare(grown, loaded.subtypes, goal=loaded.goal)
        assert regrown.fingerprint != prepared.fingerprint

        served = engine.complete(regrown)
        assert not served.cache_hit              # new identity, new entry
        codes = [snippet.code for snippet in served.result.snippets]
        assert "stream" in codes                 # and the new local shows up


class TestParityAndErrors:
    def test_engine_matches_direct_synthesizer(self, engine, loaded):
        for variant, policy in (
                ("full", WeightPolicy.standard()),
                ("no_corpus", WeightPolicy.without_corpus()),
                ("no_weights", WeightPolicy.uniform_policy())):
            direct = Synthesizer(loaded.environment, policy=policy,
                                 subtypes=loaded.subtypes).synthesize(
                                     loaded.goal, n=10)
            served = engine.complete(
                engine.prepare(loaded.environment, loaded.subtypes),
                loaded.goal, variant=variant)
            assert _identity(served.result) == _identity(direct)

    def test_missing_goal_rejected(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes)
        with pytest.raises(EngineError):
            engine.complete(prepared)

    def test_variant_and_policy_conflict(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        with pytest.raises(EngineError):
            engine.complete(prepared, variant="full",
                            policy=WeightPolicy.standard())

    def test_unknown_variant_rejected(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        with pytest.raises(EngineError):
            engine.complete(prepared, variant="psychic")


class TestWarm:
    def test_warm_populates_cache(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes)
        goals = [parse_type("InputStream"), parse_type("URL")]
        computed = engine.warm(prepared, goals,
                               variants=("full", "no_weights"))
        assert computed == 4
        for goal in goals:
            for variant in ("full", "no_weights"):
                assert engine.complete(prepared, goal,
                                       variant=variant).cache_hit

    def test_warm_is_idempotent(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        assert engine.warm(prepared, [loaded.goal]) == 1
        assert engine.warm(prepared, [loaded.goal]) == 0

    def test_clear_forgets_everything(self, engine, loaded):
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal)
        engine.complete(prepared)
        engine.clear()
        assert len(engine.results) == 0
        assert not engine.complete(
            engine.prepare(loaded.environment, loaded.subtypes,
                           goal=loaded.goal)).cache_hit
