"""Unit tests for the engine's LRU result cache."""

import pytest

from repro.engine.cache import CacheStats, LRUCache


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_default_on_miss(self):
        cache = LRUCache()
        assert cache.get("absent", default="fallback") == "fallback"

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)          # evicts "a"
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_get_promotes(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")             # "a" becomes most recent
        cache.put("c", 3)          # evicts "b", not "a"
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)         # refresh, no growth
        cache.put("c", 3)          # evicts "b"
        assert cache.get("a") == 10
        assert "b" not in cache
        assert len(cache) == 2

    def test_refresh_is_not_an_insertion(self):
        """Regression: re-putting a key inflated the insertion count,
        skewing the hit-rate/insertions report in `repro warm` and
        `/v1/stats`."""
        cache = LRUCache(max_entries=4)
        cache.put("a", 1)
        cache.put("a", 2)
        cache.put("a", 3)
        cache.put("b", 1)
        assert cache.stats.insertions == 2     # distinct keys only
        assert cache.stats.refreshes == 2
        assert len(cache) == cache.stats.insertions - cache.stats.evictions

    def test_pop_is_invisible_to_stats_by_contract(self):
        """`pop` is an owner-driven removal: no hit/miss, no eviction,
        no callback — the documented contract registry/engine callers
        rely on for their own accounting."""
        evicted = []
        cache = LRUCache(max_entries=4,
                         on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert cache.pop("absent", default="d") == "d"
        assert evicted == []
        assert cache.stats.lookups == 0
        assert cache.stats.evictions == 0

    def test_peek_neither_promotes_nor_counts(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.stats.lookups == 0
        cache.put("c", 3)          # "a" was NOT promoted -> evicted
        assert "a" not in cache

    def test_iteration_order_lru_first(self):
        cache = LRUCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.get("a")
        assert list(cache) == ["b", "c", "a"]

    def test_clear(self):
        cache = LRUCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1          # stats survive by default
        cache.put("a", 1)
        cache.clear(reset_stats=True)
        assert cache.stats.hits == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(max_entries=0)


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)

    def test_hit_rate_without_lookups(self):
        assert CacheStats().hit_rate == 0.0

    def test_as_text_mentions_counts(self):
        text = CacheStats(hits=2, misses=2, insertions=2,
                          evictions=1).as_text()
        assert "2 hits / 4 lookups" in text
        assert "1 evictions" in text

    def test_as_text_reports_refreshes_only_when_present(self):
        assert "refreshes" not in CacheStats(insertions=2).as_text()
        text = CacheStats(insertions=2, refreshes=3).as_text()
        assert "3 refreshes" in text
        assert "2 insertions" in text
