"""Tests for corpus generation, mining and statistics (§7.3, Table 3)."""

import pytest

from repro.core.errors import CorpusError
from repro.corpus.mining import api_only, mine_frequencies, mine_project
from repro.corpus.projects import CORPUS_PROJECTS, all_projects
from repro.corpus.stats import FrequencyTable
from repro.corpus.synthetic import (PAPER_DISTINCT_DECLARATIONS,
                                    PAPER_MAX_USES, PAPER_MOST_USED,
                                    PAPER_TOTAL_USES, SyntheticCorpus,
                                    default_corpus, default_frequencies)
from repro.javamodel.jdk import shared_jdk


class TestProjects:
    def test_eighteen_table3_projects(self):
        assert len(CORPUS_PROJECTS) == 18

    def test_scala_library_added_separately(self):
        assert len(all_projects()) == 19

    def test_known_rows_present(self):
        names = {project.name for project in CORPUS_PROJECTS}
        assert {"Akka", "LiftWeb", "Scala compiler", "Specs",
                "Talking Puffin"} <= names


class TestFrequencyTable:
    def test_get_and_default(self):
        table = FrequencyTable({"a": 3})
        assert table.get("a") == 3
        assert table.get("missing") == 0
        assert table["a"] == 3

    def test_negative_counts_rejected(self):
        with pytest.raises(CorpusError):
            FrequencyTable({"a": -1})

    def test_merged_sums_counts(self):
        left = FrequencyTable({"a": 2, "b": 1})
        right = FrequencyTable({"a": 3, "c": 4})
        merged = left.merged(right)
        assert merged.as_mapping() == {"a": 5, "b": 1, "c": 4}

    def test_summary_statistics(self):
        table = FrequencyTable({"x": 200, "y": 50, "z": 1})
        summary = table.summary()
        assert summary.distinct_declarations == 3
        assert summary.total_uses == 251
        assert summary.max_uses == 200
        assert summary.most_used_symbol == "x"
        assert abs(summary.fraction_under_100 - 2 / 3) < 1e-9

    def test_most_common_ordering(self):
        table = FrequencyTable({"a": 1, "b": 9, "c": 5})
        assert table.most_common(2) == [("b", 9), ("c", 5)]

    def test_empty_table_summary_rejected(self):
        with pytest.raises(CorpusError):
            FrequencyTable({}).summary()


class TestSyntheticCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return default_corpus(shared_jdk())

    def test_paper_marginals_exact(self, corpus):
        summary = corpus.calibrated_table().summary()
        assert summary.distinct_declarations == PAPER_DISTINCT_DECLARATIONS
        assert summary.total_uses == PAPER_TOTAL_USES
        assert summary.max_uses == PAPER_MAX_USES
        assert summary.most_used_symbol == PAPER_MOST_USED

    def test_98_percent_under_100_uses(self, corpus):
        summary = corpus.calibrated_table().summary()
        assert summary.fraction_under_100 >= 0.98

    def test_all_model_symbols_ranked(self, corpus):
        table = corpus.calibrated_table()
        for member in shared_jdk().members():
            assert table.get(member.symbol) >= 1

    def test_events_reproduce_calibration(self, corpus):
        mined = mine_frequencies(corpus.events_by_project())
        assert mined.as_mapping() == corpus.calibrated_table().as_mapping()

    def test_events_cover_all_projects(self, corpus):
        events = corpus.events_by_project()
        assert set(events) == {project.name for project in all_projects()}
        assert all(events[project.name] for project in all_projects())

    def test_deterministic(self):
        first = SyntheticCorpus(seed=11).calibrated_table()
        second = SyntheticCorpus(seed=11).calibrated_table()
        assert first.as_mapping() == second.as_mapping()

    def test_custom_marginals(self):
        corpus = SyntheticCorpus(distinct=100, total=1000, peak=300)
        summary = corpus.calibrated_table().summary()
        assert summary.distinct_declarations == 100
        assert summary.total_uses == 1000
        assert summary.max_uses == 300

    def test_explicit_seed_threads_every_stochastic_path(self):
        """default_corpus(seed=X) is reproducible event-for-event — the
        tail shuffle AND the corpus sampling both draw from X."""
        model = shared_jdk()
        first = default_corpus(model, seed=97)
        second = default_corpus(model, seed=97)
        assert first.events_by_project() == second.events_by_project()
        assert first.calibrated_table().as_mapping() == \
            second.calibrated_table().as_mapping()

    def test_explicit_seed_differs_from_historical_default(self):
        model = shared_jdk()
        reseeded = default_corpus(model, seed=97)
        historical = default_corpus(model)
        assert reseeded.events_by_project() != \
            historical.events_by_project()

    def test_default_seed_preserves_historical_table(self, corpus):
        # seed=None must keep the exact corpus default_frequencies()
        # (and every golden mined from it) was built on.
        assert default_corpus(shared_jdk()).calibrated_table() \
            .as_mapping() == corpus.calibrated_table().as_mapping()


class TestMining:
    def test_mine_project_counts(self):
        table = mine_project(["a", "b", "a", "a"])
        assert table.as_mapping() == {"a": 3, "b": 1}

    def test_filter_keeps_api_prefixes(self):
        keep = api_only(["java.", "javax."])
        table = mine_project(
            ["java.io.File.new", "com.app.Main.run", "javax.swing.JButton.new"],
            keep=keep)
        assert set(table.symbols()) == {"java.io.File.new",
                                        "javax.swing.JButton.new"}

    def test_mine_frequencies_merges_projects(self):
        merged = mine_frequencies({"p1": ["a", "b"], "p2": ["a"]})
        assert merged.as_mapping() == {"a": 2, "b": 1}

    def test_default_frequencies_memoised(self):
        assert default_frequencies() is default_frequencies()
