"""Per-project weight tables and mining edge cases.

Covers the miner's edges (empty event streams, overlapping API
prefixes, single-project fallback) and the :class:`ProjectWeightTables`
surface the ranking stage consumes: scene attribution, the merged-global
fallback, and the ``--project-weights`` save/load wire form.
"""

import json

import pytest

from repro.core.errors import CorpusError, ReproError
from repro.corpus.mining import (ProjectWeightTables, api_only,
                                 mine_frequencies, mine_project,
                                 mine_project_tables)
from repro.corpus.stats import FrequencyTable

EVENTS = {
    "lucene": ["java.io.File.new", "java.io.File.new", "org.x.Internal.run"],
    "ant": ["java.io.File.new", "java.util.List.add"],
}


class TestMiningEdges:
    def test_empty_stream_yields_empty_table(self):
        table = mine_project([])
        assert len(table) == 0
        assert table.total_uses() == 0

    def test_all_filtered_out_yields_empty_table(self):
        table = mine_project(["org.x.Internal.run"], keep=api_only(["java."]))
        assert len(table) == 0

    def test_empty_project_mapping(self):
        assert len(mine_frequencies({})) == 0
        tables = mine_project_tables({})
        assert tables.project_names() == []
        assert len(tables.global_table) == 0

    def test_project_with_empty_stream_still_listed(self):
        tables = mine_project_tables({"quiet": [], "busy": ["java.a"]})
        assert tables.project_names() == ["busy", "quiet"]
        assert len(tables.for_project("quiet")) == 0

    def test_overlapping_prefixes_count_once(self):
        """`java.` subsumes `java.io.` — a symbol matching both prefixes
        must still count once, not once per matching prefix."""
        keep = api_only(["java.", "java.io."])
        table = mine_project(["java.io.File.new", "java.io.File.new"], keep)
        assert table["java.io.File.new"] == 2
        assert table.total_uses() == 2

    def test_single_project_merge_equals_the_project(self):
        merged = mine_frequencies({"solo": EVENTS["lucene"]})
        assert merged.as_mapping() == \
            mine_project(EVENTS["lucene"]).as_mapping()


class TestProjectWeightTables:
    def test_global_fallback_matches_mine_frequencies(self):
        tables = mine_project_tables(EVENTS)
        assert tables.global_table.as_mapping() == \
            mine_frequencies(EVENTS).as_mapping()
        assert tables.global_table["java.io.File.new"] == 3

    def test_for_project_falls_back_to_global(self):
        tables = mine_project_tables(EVENTS)
        assert tables.for_project("lucene")["java.io.File.new"] == 2
        assert tables.for_project("unmined")["java.io.File.new"] == 3
        assert tables.for_project(None)["java.io.File.new"] == 3

    def test_scene_attribution_boundaries(self):
        tables = ProjectWeightTables(
            projects={"lucene": FrequencyTable({"a": 1}),
                      "lucene/sub": FrequencyTable({"b": 1})})
        assert tables.project_for_scene("lucene") == "lucene"
        assert tables.project_for_scene("lucene/core.ins") == "lucene"
        assert tables.project_for_scene("lucene:scene#3") == "lucene"
        # Longest matching project wins.
        assert tables.project_for_scene("lucene/sub/x") == "lucene/sub"
        # A name-prefix that is not a path boundary is NOT a match.
        assert tables.project_for_scene("lucenex") is None
        assert tables.project_for_scene(None) is None
        assert tables.project_for_scene("") is None

    def test_for_scene_routes_through_attribution(self):
        tables = mine_project_tables(EVENTS)
        assert tables.for_scene("ant/build.ins")["java.util.List.add"] == 1
        assert tables.for_scene("gradle")["java.io.File.new"] == 3

    def test_save_load_round_trip(self, tmp_path):
        tables = mine_project_tables(EVENTS, keep=api_only(["java."]))
        path = tmp_path / "weights.json"
        tables.save(str(path))
        loaded = ProjectWeightTables.load(str(path))
        assert loaded.to_doc() == tables.to_doc()
        assert loaded.for_scene("lucene/x")["java.io.File.new"] == 2

    def test_doc_omitting_global_merges_projects(self):
        doc = {"version": 1,
               "projects": {"a": {"s": 1}, "b": {"s": 2, "t": 1}}}
        tables = ProjectWeightTables.from_doc(doc)
        assert tables.global_table.as_mapping() == {"s": 3, "t": 1}

    def test_from_doc_validation(self):
        with pytest.raises(CorpusError):
            ProjectWeightTables.from_doc(["not", "an", "object"])
        with pytest.raises(CorpusError):
            ProjectWeightTables.from_doc({"version": 2})
        with pytest.raises(CorpusError):
            ProjectWeightTables.from_doc({"projects": "oops"})
        with pytest.raises(CorpusError):
            ProjectWeightTables.from_doc({"projects": {"a": "oops"}})
        with pytest.raises(CorpusError):
            ProjectWeightTables.from_doc({"projects": {}, "global": 3})

    def test_load_errors_are_repro_errors(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ReproError):
            ProjectWeightTables.load(str(missing))
        garbled = tmp_path / "bad.json"
        garbled.write_text("{not json", encoding="utf-8")
        with pytest.raises(CorpusError):
            ProjectWeightTables.load(str(garbled))

    def test_doc_is_json_stable(self, tmp_path):
        tables = mine_project_tables(EVENTS)
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        tables.save(str(path_a))
        ProjectWeightTables.load(str(path_a)).save(str(path_b))
        assert path_a.read_text() == path_b.read_text()
        assert json.loads(path_a.read_text())["version"] == 1
