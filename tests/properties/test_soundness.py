"""Soundness properties: everything the synthesizer emits type-checks.

This is the soundness half of Theorem 3.3, checked end-to-end on random
environments: every snippet is a long-normal-form term of the requested
type, weights are non-decreasing, results are deterministic, and coercion-
erased terms type-check under subsumption.
"""

from hypothesis import given, settings

from repro.core.config import SynthesisConfig
from repro.core.subtyping import SubtypeGraph
from repro.core.synthesizer import Synthesizer
from repro.core.terms import is_long_normal_form
from repro.core.typecheck import check_lnf, check_lnf_subsumed
from repro.core.types import base
from repro.core.weights import WeightPolicy
from tests.helpers import environment_and_goal

FAST = SynthesisConfig(max_snippets=8, prover_time_limit=None,
                       reconstruction_time_limit=1.0,
                       max_reconstruction_steps=3000)


@settings(max_examples=60, deadline=None)
@given(environment_and_goal())
def test_snippets_type_check(env_goal):
    environment, goal = env_goal
    synthesizer = Synthesizer(environment, config=FAST)
    result = synthesizer.synthesize(goal)
    variable_types = environment.variable_types()
    for snippet in result.snippets:
        check_lnf(snippet.term, goal, variable_types)


@settings(max_examples=60, deadline=None)
@given(environment_and_goal())
def test_snippets_are_long_normal_form(env_goal):
    environment, goal = env_goal
    result = Synthesizer(environment, config=FAST).synthesize(goal)
    variable_types = environment.variable_types()
    for snippet in result.snippets:
        assert is_long_normal_form(snippet.term, goal, variable_types)


@settings(max_examples=60, deadline=None)
@given(environment_and_goal())
def test_weights_non_decreasing(env_goal):
    environment, goal = env_goal
    result = Synthesizer(environment, config=FAST).synthesize(goal)
    weights = [snippet.weight for snippet in result.snippets]
    assert weights == sorted(weights)


@settings(max_examples=60, deadline=None)
@given(environment_and_goal())
def test_reported_weight_matches_term_weight(env_goal):
    environment, goal = env_goal
    policy = WeightPolicy.standard()
    synthesizer = Synthesizer(environment, policy=policy, config=FAST)
    result = synthesizer.synthesize(goal)
    for snippet in result.snippets:
        recomputed = policy.term_weight(snippet.term, synthesizer.environment)
        assert abs(recomputed - snippet.weight) < 1e-9


@settings(max_examples=40, deadline=None)
@given(environment_and_goal())
def test_synthesis_is_deterministic(env_goal):
    environment, goal = env_goal
    first = Synthesizer(environment, config=FAST).synthesize(goal)
    second = Synthesizer(environment, config=FAST).synthesize(goal)
    assert [s.term for s in first.snippets] == [s.term for s in second.snippets]


@settings(max_examples=40, deadline=None)
@given(environment_and_goal())
def test_inhabited_iff_snippets_exist(env_goal):
    environment, goal = env_goal
    # Without time truncation, inhabited implies at least one snippet.
    result = Synthesizer(environment, config=FAST).synthesize(goal)
    if result.inhabited and not result.reconstruction_truncated:
        assert result.snippets
    if not result.inhabited:
        assert not result.snippets


@settings(max_examples=40, deadline=None)
@given(environment_and_goal())
def test_subtyped_snippets_check_under_subsumption(env_goal):
    environment, goal = env_goal
    graph = SubtypeGraph()
    graph.add_edge("A", "B")
    graph.add_edge("B", "C")
    synthesizer = Synthesizer(environment, config=FAST, subtypes=graph)
    result = synthesizer.synthesize(goal)
    variable_types = environment.variable_types()
    for snippet in result.snippets:
        check_lnf_subsumed(snippet.surface_term, goal, variable_types, graph)
