"""Arena/structural parity: the indexed prover equals the reference path.

The production prover (`explore` + the indexed fixpoints in
`generate_patterns`) runs over integer ids in an
:class:`~repro.core.space.EnvArena`; `explore_reference` and the
``*_reference`` fixpoints are the retained structural transcription of
Fig. 7/8/9.  These properties assert the two produce *identical* search
spaces and pattern sets — node order, edge maps, predecessor maps,
patterns and the inhabited relation — on random scenes, including
truncated (budgeted) runs and both queue disciplines.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.explore import explore, explore_reference
from repro.core.generate_patterns import (IncrementalPatternGenerator,
                                          IndexedPatternGenerator,
                                          generate_patterns,
                                          generate_patterns_incremental,
                                          generate_patterns_reference,
                                          generate_patterns_with_predecessor_map)
from repro.core.space import EnvArena
from repro.core.succinct import sigma, sort_key
from tests.helpers import environments, simple_types


@st.composite
def exploration_cases(draw):
    """A random scene: environment, goal, budget, queue discipline."""
    environment = draw(environments(min_size=1, max_size=10))
    goal = draw(simple_types())
    max_nodes = draw(st.sampled_from([None, None, 1, 2, 5, 10]))
    prioritised = draw(st.booleans())
    return environment, goal, max_nodes, prioritised


def _deterministic_priority(stype):
    # Any pure function of the type works as a §5.6 stand-in; sort_key
    # gives a stable, discriminating one.
    return float(len(str(sort_key(stype))))


def _run_both(environment, goal, max_nodes, prioritised):
    env = environment.succinct_environment()
    succinct_goal = sigma(goal)
    priority = _deterministic_priority if prioritised else None
    indexed = explore(env, succinct_goal, priority=priority,
                      max_nodes=max_nodes)
    reference = explore_reference(env, succinct_goal, priority=priority,
                                  max_nodes=max_nodes)
    return indexed, reference


@settings(max_examples=60, deadline=None)
@given(exploration_cases())
def test_explore_matches_reference(case):
    indexed, reference = _run_both(*case)
    assert indexed.root == reference.root
    assert indexed.truncated == reference.truncated
    assert indexed.iterations == reference.iterations
    # Byte-identical views: same visit order, same edge map (values are
    # ordered tuples), same deduplicated predecessor map.
    assert indexed.order == reference.order
    assert indexed.edges == reference.edges
    assert indexed.predecessors == reference.predecessors


@settings(max_examples=60, deadline=None)
@given(exploration_cases())
def test_pattern_sets_match_across_all_fixpoints(case):
    indexed, reference = _run_both(*case)
    baseline = generate_patterns_reference(reference)
    for space in (indexed, reference):
        for fixpoint in (generate_patterns, generate_patterns_incremental,
                         generate_patterns_with_predecessor_map):
            produced = fixpoint(space)
            assert produced.patterns == baseline.patterns
            assert produced.inhabited == baseline.inhabited
    # The Fig. 10 lookup index must agree entry for entry (same order).
    indexed_set = generate_patterns(indexed)
    assert indexed_set._index == baseline._index


@settings(max_examples=40, deadline=None)
@given(exploration_cases())
def test_interleaved_generators_match_post_hoc(case):
    environment, goal, max_nodes, prioritised = case
    env = environment.succinct_environment()
    succinct_goal = sigma(goal)
    priority = _deterministic_priority if prioritised else None

    online = IndexedPatternGenerator()
    space = explore(env, succinct_goal, priority=priority,
                    max_nodes=max_nodes, on_edges_indexed=online.add_span)

    batches = []
    reference_online = IncrementalPatternGenerator()
    reference_space = explore_reference(
        env, succinct_goal, priority=priority, max_nodes=max_nodes,
        on_edges=lambda edges: (batches.append(list(edges)),
                                reference_online.add_edges(edges)))

    produced = online.result()
    expected = reference_online.result()
    assert produced.patterns == expected.patterns
    assert produced.inhabited == expected.inhabited
    # And both equal the post-hoc fixpoint over the full space.
    post_hoc = generate_patterns_reference(reference_space)
    assert produced.patterns == post_hoc.patterns
    assert produced.inhabited == post_hoc.inhabited
    # The indexed explorer feeds its callback the same edge batches.
    assert sum(len(batch) for batch in batches) == space.edge_count()


@settings(max_examples=30, deadline=None)
@given(exploration_cases())
def test_shared_arena_reuse_is_transparent(case):
    """Re-running queries on one warm arena changes nothing."""
    environment, goal, max_nodes, prioritised = case
    env = environment.succinct_environment()
    succinct_goal = sigma(goal)
    priority = _deterministic_priority if prioritised else None
    arena = EnvArena(env)
    first = explore(env, succinct_goal, priority=priority,
                    max_nodes=max_nodes, arena=arena)
    second = explore(env, succinct_goal, priority=priority,
                     max_nodes=max_nodes, arena=arena)
    reference = explore_reference(env, succinct_goal, priority=priority,
                                  max_nodes=max_nodes)
    for space in (first, second):
        assert space.order == reference.order
        assert space.edges == reference.edges
        patterns = generate_patterns(space)
        baseline = generate_patterns_reference(reference)
        assert patterns.patterns == baseline.patterns
        assert patterns.inhabited == baseline.inhabited
