"""Completeness properties: Theorem 3.3 against the RCN oracle.

On acyclic random environments (finitely many inhabitants) the production
synthesizer, run to exhaustion, must produce *exactly* the set of long-
normal-form terms the Fig. 4 oracle reconstructs — up to alpha-equivalence.
"""

from hypothesis import given, settings

from repro.core.config import SynthesisConfig
from repro.core.rcn import rcn
from repro.core.synthesizer import Synthesizer
from repro.core.terms import canonicalize_lnf, lnf_depth
from repro.core.types import base
from tests.helpers import acyclic_environments, environment_and_goal

EXHAUSTIVE = SynthesisConfig(max_snippets=4000, prover_time_limit=None,
                             reconstruction_time_limit=5.0,
                             max_reconstruction_steps=100_000)

DEPTH = 3


def _synthesized_up_to_depth(environment, goal, depth):
    result = Synthesizer(environment, config=EXHAUSTIVE).synthesize(goal)
    assert not result.reconstruction_truncated, \
        "acyclic environment should enumerate exhaustively"
    return {canonicalize_lnf(s.term) for s in result.snippets
            if lnf_depth(s.term) <= depth}


@settings(max_examples=50, deadline=None)
@given(environment_and_goal(acyclic=True))
def test_synthesizer_matches_rcn_oracle(env_goal):
    environment, goal = env_goal
    oracle = rcn(environment, goal, DEPTH)
    produced = _synthesized_up_to_depth(environment, goal, DEPTH)
    assert produced == oracle


@settings(max_examples=30, deadline=None)
@given(acyclic_environments())
def test_every_oracle_term_is_found_for_function_goals(environment):
    goal = base("L2")
    from repro.core.types import arrow

    function_goal = arrow(base("L0"), goal)
    oracle = rcn(environment, function_goal, DEPTH)
    produced = _synthesized_up_to_depth(environment, function_goal, DEPTH)
    assert produced == oracle


@settings(max_examples=30, deadline=None)
@given(environment_and_goal(acyclic=True))
def test_rcn_monotone_in_depth(env_goal):
    environment, goal = env_goal
    shallower = rcn(environment, goal, 2)
    deeper = rcn(environment, goal, 3)
    assert shallower <= deeper


@settings(max_examples=30, deadline=None)
@given(environment_and_goal(acyclic=True))
def test_prover_decision_matches_oracle_nonemptiness(env_goal):
    environment, goal = env_goal
    # If RCN finds a term at any small depth, the prover must say inhabited;
    # conversely for acyclic environments depth 5 is exhaustive for
    # *existence* (terms strictly descend the 5 strata).
    oracle_terms = rcn(environment, goal, 5)
    decided = Synthesizer(environment, config=EXHAUSTIVE).is_inhabited(goal)
    assert decided == bool(oracle_terms)
