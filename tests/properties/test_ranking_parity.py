"""Ranking-chain parity: an empty chain is byte-invisible.

The refactor's safety claim is that the weigher chain is strictly
additive: with no weighers installed and no context hints, the serving
path must produce *the same object* the synthesizer produced — not an
equal copy, the identical result — so caches, snapshots and the parity
oracles downstream cannot tell the pipeline exists.  With the standard
chain installed the output must still be a rank-renumbered permutation
of the base snippets with non-decreasing weights and stable ties.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SynthesisConfig
from repro.core.ranking import (CompletionContext, RankingPipeline)
from repro.core.synthesizer import Synthesizer
from repro.engine.engine import CompletionEngine
from tests.helpers import environment_and_goal

CONFIG = SynthesisConfig(max_snippets=10, prover_time_limit=None,
                         reconstruction_time_limit=None,
                         max_reconstruction_steps=1000)

CONTEXTS = [
    None,
    CompletionContext(receiver_type="java.io.File"),
    CompletionContext(enclosing_class="Widget",
                      position_kind="after_new"),
]


def _synthesize(environment, goal):
    return Synthesizer(environment, config=CONFIG).synthesize(goal)


@settings(max_examples=40, deadline=None)
@given(environment_and_goal())
def test_empty_chain_is_the_identity(env_goal):
    environment, goal = env_goal
    result = _synthesize(environment, goal)
    pipeline = RankingPipeline.empty()
    for context in CONTEXTS:
        outcome = pipeline.rerank(result, environment, context)
        assert outcome.result is result
        assert not outcome.applied
        assert not outcome.reordered
        assert outcome.adjustments == {}


@settings(max_examples=25, deadline=None)
@given(environment_and_goal())
def test_engine_default_matches_bare_synthesis(env_goal):
    """The engine's default (empty) chain serves the synthesizer's bytes."""
    environment, goal = env_goal
    engine = CompletionEngine(config=CONFIG)
    prepared = engine.prepare(environment, goal=goal, name="parity")
    served = engine.complete(prepared)
    assert not served.reranked
    bare = _synthesize(prepared.environment, prepared.goal)
    assert len(served.snippets) == len(bare.snippets)
    for ours, theirs in zip(served.snippets, bare.snippets):
        assert ours.rank == theirs.rank
        assert ours.weight == theirs.weight
        assert ours.term == theirs.term
        assert ours.code == theirs.code


@settings(max_examples=40, deadline=None)
@given(environment_and_goal(), st.sampled_from(range(len(CONTEXTS))))
def test_standard_chain_is_a_rank_renumbered_permutation(env_goal, which):
    environment, goal = env_goal
    result = _synthesize(environment, goal)
    outcome = RankingPipeline.standard().rerank(result, environment,
                                                CONTEXTS[which])
    reranked = outcome.result
    assert sorted(s.code for s in reranked.snippets) == \
        sorted(s.code for s in result.snippets)
    assert [s.rank for s in reranked.snippets] == \
        list(range(1, len(reranked.snippets) + 1))
    weights = [s.weight for s in reranked.snippets]
    assert weights == sorted(weights)
    # Everything except snippets rides through untouched.
    assert reranked.inhabited == result.inhabited
    if outcome.result is not result:
        assert outcome.applied


@settings(max_examples=25, deadline=None)
@given(environment_and_goal())
def test_rerank_is_deterministic(env_goal):
    """Two independent passes over the same base agree snippet for snippet."""
    environment, goal = env_goal
    result = _synthesize(environment, goal)
    first = RankingPipeline.standard().rerank(result, environment)
    second = RankingPipeline.standard().rerank(result, environment)
    assert [s.code for s in second.result.snippets] == \
        [s.code for s in first.result.snippets]
    assert [s.weight for s in second.result.snippets] == \
        [s.weight for s in first.result.snippets]
    assert second.adjustments == first.adjustments
