"""Properties of the reconstruction order machinery.

The best-first enumeration relies on two internal invariants:

* the completion bound is *admissible* — it never exceeds the weight of
  the cheapest actual completion of a hole;
* candidates are walked in non-decreasing completion-bound order, so the
  lazy sibling chain cannot emit out of order.

Both are checked here against ground truth obtained by running the full
enumeration, on random environments.
"""

import math

from hypothesis import given, settings

from repro.core.config import SynthesisConfig
from repro.core.explore import explore
from repro.core.generate_patterns import generate_patterns
from repro.core.reconstruct import Reconstructor
from repro.core.space import simple_type_id
from repro.core.succinct import sigma
from repro.core.synthesizer import Synthesizer
from repro.core.weights import WeightPolicy
from tests.helpers import environment_and_goal

FAST = SynthesisConfig(max_snippets=30, prover_time_limit=None,
                       reconstruction_time_limit=1.0,
                       max_reconstruction_steps=5000)


def _reconstructor(environment, goal):
    space = explore(environment.succinct_environment(), sigma(goal))
    patterns = generate_patterns(space)
    return Reconstructor(patterns, environment, WeightPolicy.standard(),
                         max_steps=5000, time_limit=1.0)


@settings(max_examples=50, deadline=None)
@given(environment_and_goal(acyclic=True))
def test_hole_bound_is_admissible(env_goal):
    environment, goal = env_goal
    reconstructor = _reconstructor(environment, goal)
    snippets = list(reconstructor.enumerate(goal))
    bound = reconstructor._hole_bound(goal)
    if snippets:
        cheapest = min(snippet.weight for snippet in snippets)
        assert bound <= cheapest + 1e-9
    if not reconstructor.stats.truncated and not snippets:
        # Nothing synthesizable: the bound may be infinite or finite (it is
        # only a lower bound), but infinity must imply emptiness.
        if math.isinf(bound):
            assert not snippets


@settings(max_examples=50, deadline=None)
@given(environment_and_goal(acyclic=True))
def test_ordered_candidates_sorted_by_completion_bound(env_goal):
    environment, goal = env_goal
    reconstructor = _reconstructor(environment, goal)
    scope = reconstructor._root_scope
    candidates = reconstructor._ordered_candidates(
        goal, simple_type_id(goal), scope)
    bounds = [reconstructor._completion_bound(candidate, scope)
              for candidate in candidates]
    assert bounds == sorted(bounds)


@settings(max_examples=50, deadline=None)
@given(environment_and_goal())
def test_emission_monotone_under_all_policies(env_goal):
    environment, goal = env_goal
    for policy in (WeightPolicy.standard(), WeightPolicy.without_corpus(),
                   WeightPolicy.uniform_policy()):
        result = Synthesizer(environment, policy=policy,
                             config=FAST).synthesize(goal)
        weights = [snippet.weight for snippet in result.snippets]
        assert weights == sorted(weights)


@settings(max_examples=40, deadline=None)
@given(environment_and_goal(acyclic=True))
def test_enumeration_exhaustive_on_acyclic(env_goal):
    # On acyclic environments the enumeration terminates by itself and the
    # candidate caches must agree with a fresh run (no cross-run state).
    environment, goal = env_goal
    first = list(_reconstructor(environment, goal).enumerate(goal))
    second = list(_reconstructor(environment, goal).enumerate(goal))
    assert [snippet.term for snippet in first] == \
        [snippet.term for snippet in second]
