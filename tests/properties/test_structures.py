"""Property tests on the structural substrate: terms, LNF, coercions.

These pin down the algebraic glue between representations: LNF <-> generic
terms, canonicalisation, eta-long conversion, coercion erasure and the
declaration-language round trip.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.subtyping import coercion_name, count_coercions, erase_coercions
from repro.core.terms import (Binder, LNFTerm, beta_normalize,
                              canonicalize_lnf, eta_long_form,
                              is_long_normal_form, lnf, lnf_alpha_equivalent,
                              lnf_depth, lnf_size, lnf_to_term)
from repro.core.typecheck import infer_type
from repro.core.types import base, format_type, parse
from repro.lang.parser import parse_type
from tests.helpers import simple_types

# ---------------------------------------------------------------------------
# Random LNF terms over a tiny fixed scope
# ---------------------------------------------------------------------------

SCOPE = {
    "a": parse_type("A"),
    "b": parse_type("B"),
    "f": parse_type("A -> B"),
    "g": parse_type("A -> B -> C"),
    "h": parse_type("(A -> B) -> C"),
}


@st.composite
def lnf_terms(draw, depth: int = 3):
    """Random *well-typed* LNF terms of type C-ish shapes over SCOPE."""

    def term_of(type_text: str, budget: int) -> LNFTerm:
        if type_text == "A":
            return lnf("a")
        if type_text == "B":
            if budget <= 0 or draw(st.booleans()):
                return lnf("b")
            return lnf("f", term_of("A", budget - 1))
        if type_text == "C":
            if budget <= 0 or draw(st.booleans()):
                return lnf("g", term_of("A", budget - 1),
                           term_of("B", budget - 1))
            binder = Binder(f"x{draw(st.integers(0, 99))}", base("A"))
            inner = LNFTerm((binder,), "f", (lnf(binder.name),))
            return lnf("h", inner)
        raise AssertionError(type_text)

    goal = draw(st.sampled_from(["A", "B", "C"]))
    return term_of(goal, depth), parse_type(goal)


@settings(max_examples=100, deadline=None)
@given(lnf_terms())
def test_lnf_round_trips_through_generic_terms(term_goal):
    term, goal = term_goal
    generic = lnf_to_term(term)
    assert infer_type(generic, SCOPE) == goal
    rebuilt = eta_long_form(beta_normalize(generic), goal, SCOPE)
    assert lnf_alpha_equivalent(rebuilt, term)


@settings(max_examples=100, deadline=None)
@given(lnf_terms())
def test_generated_terms_are_long_normal(term_goal):
    term, goal = term_goal
    assert is_long_normal_form(term, goal, SCOPE)


@settings(max_examples=100, deadline=None)
@given(lnf_terms())
def test_canonicalize_idempotent_and_alpha_invariant(term_goal):
    term, _ = term_goal
    canonical = canonicalize_lnf(term)
    assert canonicalize_lnf(canonical) == canonical
    assert lnf_alpha_equivalent(canonical, term)


@settings(max_examples=100, deadline=None)
@given(lnf_terms())
def test_size_and_depth_measures(term_goal):
    term, _ = term_goal
    assert 1 <= lnf_depth(term) <= lnf_size(term)


@settings(max_examples=100, deadline=None)
@given(lnf_terms(), st.integers(0, 3))
def test_coercion_erasure(term_goal, wraps):
    term, _ = term_goal
    wrapped = term
    for level in range(wraps):
        wrapped = lnf(coercion_name(f"T{level}", f"T{level + 1}"), wrapped)
    erased = erase_coercions(wrapped)
    assert count_coercions(erased) == 0
    assert erased == erase_coercions(erased)  # idempotent
    assert canonicalize_lnf(erased) == canonicalize_lnf(erase_coercions(term))


# ---------------------------------------------------------------------------
# Type syntax round trip
# ---------------------------------------------------------------------------

@settings(max_examples=150, deadline=None)
@given(simple_types(max_depth=4))
def test_type_format_parse_round_trip(tpe):
    assert parse_type(format_type(tpe)) == tpe


# ---------------------------------------------------------------------------
# Environment invariants
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.lists(simple_types(), min_size=1, max_size=10))
def test_select_partitions_by_sigma(types):
    from repro.core.succinct import sigma

    env = Environment([Declaration(f"d{i}", tpe, DeclKind.LOCAL)
                       for i, tpe in enumerate(types)])
    # Every declaration is found by selecting its own succinct type, and
    # select never returns a declaration with a different sigma image.
    for declaration in env:
        selected = env.select(declaration.succinct_type)
        assert declaration in selected
        assert all(sigma(d.type) == declaration.succinct_type
                   for d in selected)
    # The buckets cover the environment exactly.
    covered = sum(len(env.select(stype))
                  for stype in env.succinct_environment())
    assert covered == len(env)
