"""Property tests for the end-to-end deadline and hedge-budget algebra.

Three invariants the gray-failure machinery leans on:

* the *remaining* budget derived from the single ingress anchor is
  never negative and never grows across hops — a retry or hedge can
  spend budget, never mint it;
* a spent budget short-circuits before dispatch, with the distinct
  ``deadline_exceeded`` code, and burns no retry token doing so;
* hedge grants can never exceed the retry-budget bucket, no matter how
  requests and spend attempts interleave.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.protocol import CompleteRequest, ProtocolError
from repro.server.router import (Backend, CompletionRouter, RetryBudget,
                                 RouterConfig)


def _bare_router(**overrides) -> CompletionRouter:
    router = CompletionRouter(RouterConfig(port=0, **overrides))
    router._adopt_backend(Backend(backend_id="t0", host="127.0.0.1",
                                  port=1, client=None))
    return router


class TestRemainingBudgetNeverNegative:
    @given(offset_s=st.floats(min_value=-3600.0, max_value=3600.0,
                              allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_remaining_is_clamped_at_zero(self, offset_s):
        deadline_at = time.monotonic() + offset_s
        remaining = CompletionRouter._remaining_budget_ms(deadline_at)
        assert remaining is not None
        assert remaining >= 0
        assert remaining <= max(0.0, offset_s) * 1000.0 + 1.0

    @given(budget_ms=st.integers(min_value=1, max_value=600_000),
           hops=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_hops_see_monotonically_shrinking_budget(self, budget_ms,
                                                     hops):
        """Every hop re-derives *remaining* from the one ingress anchor:
        the sequence is non-increasing and never below zero — a
        downstream hop can never be handed more budget than upstream."""
        request = CompleteRequest(scene_id="scn_p", budget_ms=budget_ms)
        deadline_at = CompletionRouter._deadline_at(request)
        assert deadline_at is not None
        seen = [CompletionRouter._remaining_budget_ms(deadline_at)
                for _ in range(hops)]
        assert all(value >= 0 for value in seen)
        assert all(later <= earlier
                   for earlier, later in zip(seen, seen[1:]))
        assert seen[0] <= budget_ms

    @given(offset_s=st.floats(min_value=-3600.0, max_value=3600.0,
                              allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_attempt_timeout_is_bounded_both_ways(self, offset_s):
        router = _bare_router(request_timeout=30.0)
        timeout = router._attempt_timeout_s(time.monotonic() + offset_s)
        assert 0.0 <= timeout <= 30.0


class TestSpentBudgetShortCircuits:
    @given(spent_for_s=st.floats(min_value=0.0, max_value=3600.0,
                                 allow_nan=False),
           attempts=st.integers(min_value=1, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_spent_budget_is_refused_before_dispatch(self, spent_for_s,
                                                     attempts):
        """However long ago the budget died, the refusal is immediate,
        carries the distinct code, is counted in its own bucket, and
        never touches the retry budget."""
        router = _bare_router()
        deadline_at = time.monotonic() - spent_for_s
        for attempt in range(attempts):
            with pytest.raises(ProtocolError) as excinfo:
                router._fail_fast_if_spent(deadline_at)
            assert excinfo.value.code == "deadline_exceeded"
            assert router.deadline_exceeded == attempt + 1
        assert router.retry_budget.granted == 0
        assert router.retry_budget.denied == 0

    @given(budget_ms=st.integers(min_value=60_000, max_value=600_000))
    @settings(max_examples=50, deadline=None)
    def test_live_budget_is_never_refused(self, budget_ms):
        router = _bare_router()
        request = CompleteRequest(scene_id="scn_p", budget_ms=budget_ms)
        router._fail_fast_if_spent(CompletionRouter._deadline_at(request))
        assert router.deadline_exceeded == 0


class TestHedgesBoundedByBudget:
    @given(ops=st.lists(st.booleans(), max_size=400),
           ratio=st.floats(min_value=0.01, max_value=1.0),
           burst=st.floats(min_value=1.0, max_value=20.0))
    @settings(max_examples=100, deadline=None)
    def test_grants_never_exceed_the_bucket(self, ops, ratio, burst):
        """True = a request arrives (deposit), False = a hedge or
        failover wants a token.  Under any interleaving the grant count
        stays inside ``ratio * requests + burst`` and the bucket never
        goes negative — bounded amplification by construction."""
        budget = RetryBudget(ratio=ratio, burst=burst)
        requests = 0
        for is_request in ops:
            if is_request:
                budget.on_request()
                requests += 1
            else:
                budget.try_spend()
        assert 0.0 <= budget.tokens <= burst
        assert budget.granted <= ratio * requests + burst
        assert budget.granted + budget.denied == ops.count(False)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_hedge_counter_is_bounded_by_grants(self, seed):
        """The router only increments ``hedges`` after a successful
        ``try_spend`` — replay that contract against a random traffic
        mix and check amplification stays within the configured ratio."""
        import random
        rng = random.Random(seed)
        router = _bare_router(retry_budget_ratio=0.2,
                              retry_budget_burst=10.0)
        requests = 0
        for _ in range(rng.randrange(300)):
            router.retry_budget.on_request()
            requests += 1
            if rng.random() < 0.5:          # every other request is slow
                if router.retry_budget.try_spend():
                    router.hedges += 1
        assert router.hedges <= 0.2 * requests + 10.0
        assert router.hedges == router.retry_budget.granted
