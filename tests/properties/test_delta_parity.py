"""Delta parity: edit scripts vs fresh builds of the same final text.

The incremental subsystem's acceptance property: for ANY valid edit
script, the delta-edited scene must be byte-identical — fingerprint,
scene identity, and complete rankings — to a scene freshly loaded from
the serialized final text.  Scripts are generated against a simulated
name table so every op is valid by construction, and deliberately
include add-then-remove-the-same-declaration churn (the editor's
keystroke-undo pattern), which must land back on previously prepared
states and reuse them.
"""

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import CompletionEngine
from repro.incremental import apply_scene_delta, parse_delta_ops
from repro.lang.loader import load_environment_file, load_environment_text
from repro.lang.serializer import serialize_environment

SCENES_DIR = Path(__file__).resolve().parents[2] / "examples/scenes"

BASE_SCENE = """
subtype FileWriter <: Writer
subtype BufferedWriter <: Writer
subtype PrintWriter <: Writer
local path : String
imported java.io.FileWriter.new : String -> FileWriter \
[freq=118] [style=constructor] [display=FileWriter]
imported java.io.BufferedWriter.new : Writer -> BufferedWriter \
[freq=95] [style=constructor] [display=BufferedWriter]
imported java.io.PrintWriter.new : Writer -> PrintWriter \
[freq=102] [style=constructor] [display=PrintWriter]
literal "out.txt" : String
goal PrintWriter
"""

BASE_NAMES = ("path", "java.io.FileWriter.new", "java.io.BufferedWriter.new",
              "java.io.PrintWriter.new", '"out.txt"')

#: Candidate additions: (name, declaration line).  A mix of sigma images
#: that already exist in the base scene and ones that do not.
ADDABLE = (
    ("banner", "local banner : String"),
    ("backup_path", "local backup_path : String"),
    ("writer_cache", "local writer_cache : Writer"),
    ("java.io.FileReader.new",
     "imported java.io.FileReader.new : String -> FileReader "
     "[freq=74] [style=constructor] [display=FileReader]"),
    ("java.io.PrintWriter.println",
     "imported java.io.PrintWriter.println : PrintWriter -> String -> Unit "
     "[freq=210] [style=method] [display=println]"),
)

ADDABLE_BY_NAME = dict(ADDABLE)


@st.composite
def edit_scripts(draw):
    """A multi-batch edit script, valid against the simulated name table."""
    current = set(BASE_NAMES)
    batches = []
    for _ in range(draw(st.integers(1, 4))):
        batch = []
        for _ in range(draw(st.integers(1, 3))):
            addable = sorted(name for name, _ in ADDABLE
                             if name not in current)
            removable = sorted(current)
            kinds = (["add"] if addable else []) + \
                    (["remove"] if removable else [])
            kind = draw(st.sampled_from(kinds))
            if kind == "add":
                name = draw(st.sampled_from(addable))
                batch.append({"op": "add", "decl": ADDABLE_BY_NAME[name]})
                current.add(name)
            else:
                name = draw(st.sampled_from(removable))
                batch.append({"op": "remove", "name": name})
                current.remove(name)
        batches.append(batch)
    return batches


def _rankings(engine, prepared, n=5):
    served = engine.complete(prepared, prepared.goal, n=n)
    return [(s.rank, s.code, round(s.weight, 6))
            for s in served.result.snippets]


def _assert_parity(prepared, engine):
    """delta-edited *prepared* ≡ a fresh build of its serialized text."""
    text = serialize_environment(prepared.base_environment,
                                 prepared.subtypes, prepared.goal)
    reloaded = load_environment_text(text)
    fresh_engine = CompletionEngine()
    fresh = fresh_engine.prepare(reloaded.environment, reloaded.subtypes,
                                 goal=reloaded.goal)
    assert (prepared.base_environment.fingerprint()
            == fresh.base_environment.fingerprint())
    assert prepared.fingerprint == fresh.fingerprint
    assert _rankings(engine, prepared) == _rankings(fresh_engine, fresh)


@settings(max_examples=30, deadline=None)
@given(script=edit_scripts())
def test_any_edit_script_matches_a_fresh_build(script):
    engine = CompletionEngine()
    loaded = load_environment_text(BASE_SCENE)
    prepared = engine.prepare(loaded.environment, loaded.subtypes,
                              goal=loaded.goal, name="parity")
    seen = {prepared.fingerprint: prepared}
    for batch in script:
        outcome = apply_scene_delta(engine, prepared,
                                    parse_delta_ops(batch), name="parity")
        if outcome.prepared.fingerprint in seen:
            # Revisited content must reattach, never rebuild.
            assert outcome.reused or outcome.prepared is prepared
        seen[outcome.prepared.fingerprint] = outcome.prepared
        prepared = outcome.prepared
    _assert_parity(prepared, engine)


@settings(max_examples=15, deadline=None)
@given(index=st.integers(0, len(ADDABLE) - 1),
       repeats=st.integers(1, 3))
def test_add_then_remove_same_declaration_is_a_no_op(index, repeats):
    """Keystroke churn: N rounds of add X / remove X must land back on
    the opening scene and re-hit its warm cache entries."""
    engine = CompletionEngine()
    loaded = load_environment_text(BASE_SCENE)
    prepared = engine.prepare(loaded.environment, loaded.subtypes,
                              goal=loaded.goal)
    opening = prepared.fingerprint
    baseline = _rankings(engine, prepared)
    name, line = ADDABLE[index]
    current = prepared
    for _ in range(repeats):
        there = apply_scene_delta(engine, current, parse_delta_ops(
            [{"op": "add", "decl": line}]))
        back = apply_scene_delta(engine, there.prepared, parse_delta_ops(
            [{"op": "remove", "name": name}]))
        assert back.reused
        assert back.prepared.fingerprint == opening
        current = back.prepared
    served = engine.complete(current, current.goal, n=5)
    assert served.cache_hit
    assert _rankings(engine, current) == baseline


def test_every_example_scene_holds_parity_under_edits():
    """The shipped scenes are the acceptance corpus: one add + one
    remove each, then full parity against a fresh build."""
    from repro.incremental import DeltaOp

    for path in sorted(SCENES_DIR.glob("*.ins")):
        engine = CompletionEngine()
        loaded = load_environment_file(path)
        prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal, name=path.name)
        first_name = next(iter(prepared.base_environment)).name
        outcome = apply_scene_delta(engine, prepared, [
            DeltaOp.add("local parity_probe : String"),
            DeltaOp.remove(first_name),
        ])
        _assert_parity(outcome.prepared, engine)
