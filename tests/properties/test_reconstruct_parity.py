"""Packed/reference parity: the packed frontier equals the Fig. 10 walk.

The production :class:`~repro.core.reconstruct.Reconstructor` runs
GenerateT over a packed spine frontier with int-keyed memo tables; the
retained :class:`~repro.core.reconstruct.ReferenceReconstructor` is the
whole-tree transcription of Fig. 10.  These properties assert the two
produce *byte-identical* output on random scenes — terms (binder names
included, so the fresh-name supplies must be consumed in lockstep),
weights, emission order, ranks through the full
:class:`~repro.core.synthesizer.Synthesizer` pipeline, stats and
truncation behavior — mirroring ``tests/properties/test_arena_parity.py``
for the prover.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.explore import explore
from repro.core.generate_patterns import generate_patterns
from repro.core.reconstruct import (Reconstructor, ReferenceReconstructor,
                                    reconstruct, reconstruct_reference)
from repro.core.succinct import sigma
from repro.core.weights import WeightPolicy
from tests.helpers import environment_and_goal

POLICIES = {
    "full": WeightPolicy.standard,
    "no_corpus": WeightPolicy.without_corpus,
    "no_weights": WeightPolicy.uniform_policy,
}


@st.composite
def reconstruction_cases(draw):
    """A random scene: environment, goal, expansion budget, policy."""
    environment, goal = draw(environment_and_goal())
    # Always bounded: random environments admit infinitely many
    # inhabitants, so an unbudgeted enumeration need not terminate.
    max_steps = draw(st.sampled_from([1, 3, 10, 50, 400]))
    policy = POLICIES[draw(st.sampled_from(sorted(POLICIES)))]()
    return environment, goal, max_steps, policy


def _patterns(environment, goal):
    space = explore(environment.succinct_environment(), sigma(goal))
    return generate_patterns(space)


def _run_both(environment, goal, max_steps, policy, limit=None):
    patterns = _patterns(environment, goal)
    packed = Reconstructor(patterns, environment, policy,
                           max_steps=max_steps)
    reference = ReferenceReconstructor(patterns, environment, policy,
                                       max_steps=max_steps)
    packed_out, reference_out = [], []
    for out, reconstructor in ((packed_out, packed),
                               (reference_out, reference)):
        for snippet in reconstructor.enumerate(goal):
            out.append(snippet)
            if limit is not None and len(out) >= limit:
                break
    return packed, packed_out, reference, reference_out


def _assert_identical(packed_out, reference_out):
    assert len(packed_out) == len(reference_out)
    for ours, theirs in zip(packed_out, reference_out):
        # Structural equality covers heads, arguments AND the fresh
        # binder names both sides drew from their supplies.
        assert ours.term == theirs.term
        assert ours.weight == theirs.weight
        assert ours.order == theirs.order


@settings(max_examples=60, deadline=None)
@given(reconstruction_cases())
def test_enumeration_matches_reference(case):
    """Terms, weights, emission order and stats agree, truncation included.

    ``max_steps`` budgets make truncated runs deterministic (a wall-clock
    limit would not be), so the truncated flag must agree exactly too.
    """
    environment, goal, max_steps, policy = case
    packed, packed_out, reference, reference_out = _run_both(
        environment, goal, max_steps, policy)
    _assert_identical(packed_out, reference_out)
    assert packed.stats.expansions == reference.stats.expansions
    assert packed.stats.enqueued == reference.stats.enqueued
    assert packed.stats.emitted == reference.stats.emitted
    assert packed.stats.truncated == reference.stats.truncated


@settings(max_examples=40, deadline=None)
@given(reconstruction_cases())
def test_early_stop_prefixes_match(case):
    """Stopping after N snippets (the serving path) yields the same prefix."""
    environment, goal, max_steps, policy = case
    _, packed_out, _, reference_out = _run_both(
        environment, goal, max_steps, policy, limit=5)
    _assert_identical(packed_out, reference_out)


@settings(max_examples=40, deadline=None)
@given(reconstruction_cases())
def test_max_term_size_matches(case):
    """The size cap prunes identically (incremental vs recounted sizes)."""
    environment, goal, max_steps, policy = case
    patterns = _patterns(environment, goal)
    for size_cap in (1, 3, 7):
        packed_out = reconstruct(patterns, environment, goal, policy,
                                 max_steps=max_steps,
                                 max_term_size=size_cap)
        reference_out = reconstruct_reference(
            patterns, environment, goal, policy, max_steps=max_steps,
            max_term_size=size_cap)
        _assert_identical(packed_out, reference_out)


@settings(max_examples=25, deadline=None)
@given(environment_and_goal())
def test_full_pipeline_ranks_match(env_goal):
    """Through Synthesizer.synthesize: ranks, rendered code, timings' shape.

    Coercion erasure and dedup run downstream of reconstruction, so
    identical raw emission must give identical visible rankings.
    """
    from repro.core.config import SynthesisConfig
    from repro.core.synthesizer import Synthesizer
    import repro.core.synthesizer as synthesizer_module

    environment, goal = env_goal
    config = SynthesisConfig(max_snippets=10, prover_time_limit=None,
                             reconstruction_time_limit=None,
                             max_reconstruction_steps=1000)

    results = {}
    original = synthesizer_module.Reconstructor
    for label, cls in (("packed", Reconstructor),
                       ("reference", ReferenceReconstructor)):
        synthesizer_module.Reconstructor = cls
        try:
            results[label] = Synthesizer(environment,
                                         config=config).synthesize(goal)
        finally:
            synthesizer_module.Reconstructor = original

    packed, reference = results["packed"], results["reference"]
    assert packed.inhabited == reference.inhabited
    assert packed.reconstruction_expansions == \
        reference.reconstruction_expansions
    assert packed.reconstruction_truncated == \
        reference.reconstruction_truncated
    assert len(packed.snippets) == len(reference.snippets)
    for ours, theirs in zip(packed.snippets, reference.snippets):
        assert ours.rank == theirs.rank
        assert ours.weight == theirs.weight
        assert ours.term == theirs.term
        assert ours.surface_term == theirs.surface_term
        assert ours.code == theirs.code
