"""Property-based tests for the sigma conversion (§3.2).

Succinct types are simple types modulo commutativity, associativity and
idempotence of conjunction (currying/product isomorphisms).  These
properties pin the algebra down on random types.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.succinct import (sigma, sort_key, succinct_subterms)
from repro.core.types import (Arrow, Type, arrow, base, function_type,
                              uncurry)
from tests.helpers import simple_types


@given(simple_types())
def test_sigma_is_deterministic(tpe):
    assert sigma(tpe) == sigma(tpe)


@given(simple_types())
def test_result_name_matches_final_result(tpe):
    _, result = uncurry(tpe)
    assert sigma(tpe).result == result.name


@given(simple_types(), st.randoms())
def test_argument_permutation_invariance(tpe, rng):
    arguments, result = uncurry(tpe)
    if len(arguments) < 2:
        return
    shuffled = list(arguments)
    rng.shuffle(shuffled)
    assert sigma(function_type(shuffled, result)) == sigma(tpe)


@given(simple_types(), st.integers(0, 3))
def test_argument_duplication_invariance(tpe, copies):
    arguments, result = uncurry(tpe)
    if not arguments:
        return
    duplicated = list(arguments) + [arguments[0]] * copies
    assert sigma(function_type(duplicated, result)) == sigma(tpe)


@given(simple_types())
def test_currying_grouping_invariance(tpe):
    # A -> (B -> C) == A -> B -> C structurally in our representation, but
    # check the deeper claim: sigma(t) == sigma(args -> result) rebuilt from
    # the curried view.
    arguments, result = uncurry(tpe)
    assert sigma(function_type(arguments, result)) == sigma(tpe)


@given(simple_types())
def test_arguments_are_sigma_images_of_curried_arguments(tpe):
    arguments, _ = uncurry(tpe)
    assert sigma(tpe).arguments == frozenset(sigma(a) for a in arguments)


@given(st.lists(simple_types(), max_size=8))
def test_distribution_over_unions(types):
    # sigma over a union of environments is the union of sigma images.
    middle = len(types) // 2
    left, right = types[:middle], types[middle:]
    union_image = {sigma(t) for t in types}
    assert {sigma(t) for t in left} | {sigma(t) for t in right} == union_image


@given(simple_types())
def test_subterms_contains_self(tpe):
    stype = sigma(tpe)
    assert stype in succinct_subterms(stype)


@given(simple_types(), simple_types())
def test_sort_key_consistent_with_equality(left, right):
    sleft, sright = sigma(left), sigma(right)
    if sleft == sright:
        assert sort_key(sleft) == sort_key(sright)
    else:
        assert sort_key(sleft) != sort_key(sright)


@given(st.lists(simple_types(), min_size=1, max_size=10))
def test_compression_never_increases(types):
    from repro.core.succinct import compression_ratio

    total, distinct = compression_ratio(types)
    assert distinct <= total
    assert distinct >= 1
