"""Scene sessions: the engine-level API behind ``/v1/edit-scene``."""

import pytest

from repro.engine import CompletionEngine
from repro.incremental import DeltaError, SceneSession
from repro.lang.loader import load_environment_text

SCENE = """
subtype InputStreamReader <: Reader
subtype BufferedReader <: Reader
local url : URL
imported java.net.URL.openStream : URL -> InputStream \
[freq=96] [style=method] [display=openStream]
imported java.io.InputStreamReader.new : InputStream -> InputStreamReader \
[freq=133] [style=constructor] [display=InputStreamReader]
imported java.io.BufferedReader.new : Reader -> BufferedReader \
[freq=161] [style=constructor] [display=BufferedReader]
goal BufferedReader
"""

EXTRA = "local charset_name : String"


def _session():
    engine = CompletionEngine()
    loaded = load_environment_text(SCENE)
    prepared = engine.prepare(loaded.environment, loaded.subtypes,
                              goal=loaded.goal, name="reader")
    return engine, engine.open_session(prepared, name="reader")


class TestSceneSession:
    def test_open_session_reattaches_loader_scenes(self):
        engine, session = _session()
        loaded = load_environment_text(SCENE)
        assert session.fingerprint == engine.prepare(
            loaded.environment, loaded.subtypes).fingerprint
        assert session.generation == 0
        assert session.ops_applied == 0
        assert len(session) == 4
        assert "generation 0" in repr(session)

    def test_apply_delta_accepts_wire_dicts(self):
        _, session = _session()
        outcome = session.apply_delta([{"op": "add", "decl": EXTRA}])
        assert outcome.added == ("charset_name",)
        assert session.generation == 1
        assert session.ops_applied == 1
        assert len(session) == 5

    def test_bad_delta_leaves_the_session_unchanged(self):
        _, session = _session()
        before = session.fingerprint
        with pytest.raises(DeltaError):
            session.apply_delta([{"op": "remove", "name": "ghost"}])
        assert session.fingerprint == before
        assert session.generation == 0

    def test_complete_serves_through_the_engine_cache(self):
        _, session = _session()
        cold = session.complete(n=4)
        assert not cold.cache_hit
        warm = session.complete(n=4)
        assert warm.cache_hit
        assert ([(s.rank, s.code) for s in warm.snippets]
                == [(s.rank, s.code) for s in cold.snippets])

    def test_round_trip_edit_rehits_the_warm_cache(self):
        _, session = _session()
        baseline = session.complete(n=4)
        opening = session.fingerprint
        session.apply_delta([{"op": "add", "decl": EXTRA}])
        assert session.fingerprint != opening
        edited = session.complete(n=4)
        assert not edited.cache_hit
        outcome = session.apply_delta([{"op": "remove",
                                        "name": "charset_name"}])
        assert outcome.reused
        assert session.fingerprint == opening
        replay = session.complete(n=4)
        assert replay.cache_hit
        assert ([(s.rank, s.code, s.weight) for s in replay.snippets]
                == [(s.rank, s.code, s.weight) for s in baseline.snippets])

    def test_render_text_is_the_parity_oracle(self):
        engine, session = _session()
        session.apply_delta([{"op": "add", "decl": EXTRA},
                             {"op": "remove", "name": "url"}])
        reloaded = load_environment_text(session.render_text())
        fresh_engine = CompletionEngine()
        fresh = fresh_engine.prepare(reloaded.environment, reloaded.subtypes,
                                     goal=reloaded.goal)
        assert fresh.fingerprint == session.fingerprint
        ours = session.complete(n=4)
        theirs = fresh_engine.complete(fresh, fresh.goal, n=4)
        assert ([(s.rank, s.code, s.weight) for s in ours.snippets]
                == [(s.rank, s.code, s.weight) for s in theirs.snippets])

    def test_open_session_canonicalizes_programmatic_scenes(self):
        """A scene built in code may carry render metadata that does not
        round-trip byte-for-byte; the session must open on the canonical
        reload so journal replay reproduces its fingerprints."""
        from repro.core.environment import (DeclKind, Environment,
                                            RenderSpec, RenderStyle,
                                            declaration)
        from repro.core.types import arrow, base

        env = Environment.of(
            declaration("title", base("String")),
            declaration("demo.Frame.new", arrow(base("String"),
                                                base("Frame")),
                        kind=DeclKind.IMPORTED, frequency=5,
                        render=RenderSpec(RenderStyle.CONSTRUCTOR,
                                          "Frame")))
        engine = CompletionEngine()
        prepared = engine.prepare(env, goal=base("Frame"))
        session = SceneSession(engine, prepared)
        reloaded = load_environment_text(session.render_text())
        assert (reloaded.environment.fingerprint()
                == session.prepared.base_environment.fingerprint())
