"""Declaration-level deltas: op parsing and incremental re-prepare.

The load-bearing invariant everywhere here is *content addressing*: the
environment produced by a delta must be indistinguishable — fingerprint,
name table, Select index, rankings — from an environment freshly built
over the same final declaration list, because every cache key and scene
id downstream hangs off that identity.
"""

import pytest

from repro.core.environment import Environment
from repro.engine import CompletionEngine
from repro.incremental import (DeltaError, DeltaOp, apply_scene_delta,
                               parse_delta_ops)
from repro.lang.loader import load_environment_text

SCENE = """
subtype FileWriter <: Writer
local path : String
imported java.io.FileWriter.new : String -> FileWriter \
[freq=118] [style=constructor] [display=FileWriter]
imported java.io.PrintWriter.new : Writer -> PrintWriter \
[freq=102] [style=constructor] [display=PrintWriter]
goal PrintWriter
"""

EXTRA_LINE = "local label : String"
READER_LINE = ("imported java.io.FileReader.new : String -> FileReader "
               "[freq=74] [style=constructor] [display=FileReader]")


def _prepared(engine=None, text=SCENE):
    engine = engine or CompletionEngine()
    loaded = load_environment_text(text)
    return engine, engine.prepare(loaded.environment, loaded.subtypes,
                                  goal=loaded.goal, name="scene-under-edit")


class TestDeltaOp:
    def test_add_parses_the_declaration_line(self):
        op = DeltaOp.add(EXTRA_LINE)
        assert op.op == "add"
        assert op.name == "label"
        assert op.declaration is not None
        assert op.line == EXTRA_LINE

    def test_add_rejects_garbage(self):
        with pytest.raises(DeltaError, match="unparsable"):
            DeltaOp.add("local oops : ")
        with pytest.raises(DeltaError):
            DeltaOp.add("goal PrintWriter")      # not a declaration line

    def test_payload_round_trip(self):
        for op in (DeltaOp.add(EXTRA_LINE), DeltaOp.remove("path")):
            assert DeltaOp.from_payload(op.to_payload()) == op

    def test_from_payload_validation(self):
        with pytest.raises(DeltaError, match="must be an object"):
            DeltaOp.from_payload("add label")
        with pytest.raises(DeltaError, match="'op' must be one of"):
            DeltaOp.from_payload({"op": "rename", "name": "path"})
        with pytest.raises(DeltaError, match="requires 'decl'"):
            DeltaOp.from_payload({"op": "add"})
        with pytest.raises(DeltaError, match="requires 'name'"):
            DeltaOp.from_payload({"op": "remove", "name": "  "})

    def test_parse_delta_ops(self):
        ops = parse_delta_ops([{"op": "add", "decl": EXTRA_LINE},
                               {"op": "remove", "name": "path"}])
        assert [op.op for op in ops] == ["add", "remove"]


class TestApplySceneDelta:
    def test_add_appends_in_declaration_order(self):
        engine, prepared = _prepared()
        outcome = apply_scene_delta(engine, prepared, [DeltaOp.add(EXTRA_LINE)])
        names = [decl.name for decl in outcome.prepared.base_environment]
        assert names[-1] == "label"
        assert outcome.added == ("label",)
        assert outcome.removed == ()
        assert not outcome.reused
        assert outcome.declarations == len(prepared.base_environment) + 1

    def test_remove_drops_the_declaration(self):
        engine, prepared = _prepared()
        outcome = apply_scene_delta(engine, prepared,
                                    [DeltaOp.remove("path")])
        assert "path" not in outcome.prepared.base_environment
        assert outcome.removed == ("path",)

    def test_errors_are_atomic(self):
        engine, prepared = _prepared()
        table_before = len(engine.scenes)
        with pytest.raises(DeltaError, match="already declared"):
            apply_scene_delta(engine, prepared,
                              [DeltaOp.add(EXTRA_LINE),
                               DeltaOp.add("local path : String")])
        with pytest.raises(DeltaError, match="not declared"):
            apply_scene_delta(engine, prepared, [DeltaOp.remove("ghost")])
        with pytest.raises(DeltaError, match="empty delta"):
            apply_scene_delta(engine, prepared, [])
        assert len(engine.scenes) == table_before

    def test_indexes_match_a_fresh_environment(self):
        """The incremental name/Select index maintenance must be
        indistinguishable from regrouping the final declaration list."""
        engine, prepared = _prepared()
        outcome = apply_scene_delta(engine, prepared, [
            DeltaOp.add(EXTRA_LINE),
            DeltaOp.remove("path"),
            DeltaOp.add(READER_LINE),
        ])
        edited = outcome.prepared.base_environment
        fresh = Environment(tuple(edited))
        assert edited.fingerprint() == fresh.fingerprint()
        assert edited._by_name == fresh._by_name
        assert edited._by_succinct == fresh._by_succinct
        assert edited.succinct_environment() == fresh.succinct_environment()

    def test_add_then_remove_same_declaration_reuses_the_scene(self):
        engine, prepared = _prepared()
        outcome = apply_scene_delta(engine, prepared, [
            DeltaOp.add(EXTRA_LINE),
            DeltaOp.remove("label"),
        ])
        assert outcome.reused
        assert outcome.prepared.fingerprint == prepared.fingerprint
        assert outcome.added == ("label",)
        assert outcome.removed == ("label",)

    def test_round_trip_script_reattaches_the_original_scene(self):
        engine, prepared = _prepared()
        there = apply_scene_delta(engine, prepared, [DeltaOp.add(EXTRA_LINE)])
        assert not there.reused
        back = apply_scene_delta(engine, there.prepared,
                                 [DeltaOp.remove("label")])
        assert back.reused
        assert back.prepared.fingerprint == prepared.fingerprint

    def test_dirty_types_counts_distinct_sigma_images(self):
        engine, prepared = _prepared()
        outcome = apply_scene_delta(engine, prepared, [
            DeltaOp.add("local first : String"),
            DeltaOp.add("local second : String"),   # same sigma image
            DeltaOp.add(READER_LINE),               # a new one
        ])
        assert outcome.dirty_types == 2

    def test_weight_memos_transplant_except_dirty(self):
        engine, prepared = _prepared()
        # Warm the donor's memos with a real completion.
        engine.complete(prepared, prepared.goal, n=3)
        donor = prepared.environment
        assert donor._weight_memos, "completion should have warmed memos"
        outcome = apply_scene_delta(engine, prepared, [DeltaOp.add(EXTRA_LINE)])
        adopted = outcome.prepared.environment._weight_memos
        dirty = DeltaOp.add(EXTRA_LINE).declaration.succinct_type
        for policy, memo in adopted.items():
            assert dirty not in memo
            donor_memo = donor._weight_memos.get(policy, {})
            for stype, weight in memo.items():
                assert donor_memo.get(stype) == weight

    def test_rankings_match_a_fresh_engine_on_the_edited_content(self):
        engine, prepared = _prepared()
        outcome = apply_scene_delta(engine, prepared, [
            DeltaOp.remove("path"),
            DeltaOp.add("local stream_name : String"),
        ])
        served = engine.complete(outcome.prepared, outcome.prepared.goal,
                                 n=6)
        fresh_engine = CompletionEngine()
        fresh = fresh_engine.prepare(
            Environment(tuple(outcome.prepared.base_environment)),
            outcome.prepared.subtypes, goal=outcome.prepared.goal)
        baseline = fresh_engine.complete(fresh, fresh.goal, n=6)
        assert ([(s.rank, s.code, s.weight) for s in served.snippets]
                == [(s.rank, s.code, s.weight) for s in baseline.snippets])
