"""Scene registry: content-derived ids, LRU eviction, engine release."""

import pytest

from repro.core.succinct import intern_table_size
from repro.engine import CompletionEngine
from repro.server.protocol import ProtocolError
from repro.server.registry import (SceneRegistry, UnknownSceneError,
                                   build_scene)

SCENE = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
goal File
"""

OTHER_SCENE = """
local count : Int
imported demo.Box.new : Int -> Box \
[freq=10] [style=constructor] [display=Box]
goal Box
"""

THIRD_SCENE = """
local flag : Boolean
imported demo.Gate.new : Boolean -> Gate \
[freq=10] [style=constructor] [display=Gate]
goal Gate
"""


@pytest.fixture
def engine():
    return CompletionEngine()


class TestBuildScene:
    def test_builds_prepared_scene(self, engine):
        scene = build_scene(engine, SCENE, name="demo")
        assert scene.scene_id.startswith("scn_")
        assert scene.name == "demo"
        assert scene.declarations == 2
        assert str(scene.prepared.goal) == "File"

    def test_identical_text_same_id(self, engine):
        first = build_scene(engine, SCENE)
        second = build_scene(engine, SCENE)
        assert first.scene_id == second.scene_id
        # The engine's scene table dedups the prepared state too.
        assert first.prepared.fingerprint == second.prepared.fingerprint

    def test_different_goal_different_id(self, engine):
        moved = SCENE.replace("goal File", "goal String")
        assert (build_scene(engine, SCENE).scene_id
                != build_scene(engine, moved).scene_id)

    def test_unparsable_text_raises_scene_error(self, engine):
        with pytest.raises(ProtocolError) as excinfo:
            build_scene(engine, "local broken :\n")
        assert excinfo.value.code == "scene_error"
        assert excinfo.value.status == 422


class TestSceneRegistry:
    def test_adopt_and_get(self, engine):
        registry = SceneRegistry(engine, max_scenes=4)
        scene, already = registry.adopt(build_scene(engine, SCENE))
        assert not already
        assert registry.get(scene.scene_id) is scene
        assert len(registry) == 1

    def test_reregistration_is_idempotent(self, engine):
        registry = SceneRegistry(engine, max_scenes=4)
        first, _ = registry.adopt(build_scene(engine, SCENE))
        second, already = registry.adopt(build_scene(engine, SCENE))
        assert already
        assert second is first
        assert len(registry) == 1

    def test_unknown_scene_raises_not_found(self, engine):
        registry = SceneRegistry(engine, max_scenes=4)
        with pytest.raises(UnknownSceneError) as excinfo:
            registry.get("scn_missing")
        assert excinfo.value.status == 404

    def test_eviction_releases_engine_state(self, engine):
        evicted = []
        registry = SceneRegistry(engine, max_scenes=2,
                                 on_evict=evicted.append)
        first, _ = registry.adopt(build_scene(engine, SCENE))
        # Cache a result against the first scene so release has work to do.
        engine.complete(first.prepared)
        assert len(engine.results) == 1

        registry.adopt(build_scene(engine, OTHER_SCENE))
        registry.adopt(build_scene(engine, THIRD_SCENE))

        assert len(registry) == 2
        assert first.scene_id not in registry
        assert registry.evictions == 1
        assert [scene.scene_id for scene in evicted] == [first.scene_id]
        # The engine dropped the scene's results and prepared state.
        assert len(engine.results) == 0
        with pytest.raises(UnknownSceneError):
            registry.get(first.scene_id)

    def test_lru_order_follows_use(self, engine):
        registry = SceneRegistry(engine, max_scenes=2)
        first, _ = registry.adopt(build_scene(engine, SCENE))
        second, _ = registry.adopt(build_scene(engine, OTHER_SCENE))
        registry.get(first.scene_id)        # promote first; second is LRU
        registry.adopt(build_scene(engine, THIRD_SCENE))
        assert first.scene_id in registry
        assert second.scene_id not in registry

    def test_release_last_scene_clears_intern_table(self, engine):
        registry = SceneRegistry(engine, max_scenes=2)
        scene, _ = registry.adopt(build_scene(engine, SCENE))
        assert intern_table_size() > 0
        assert registry.release(scene.scene_id)
        assert intern_table_size() == 0
        assert not registry.release(scene.scene_id)

    def test_sibling_goals_share_prepared_state_until_last_release(
            self, engine):
        """Same declarations + different goals = same fingerprint.

        Evicting one sibling must not purge the other's warm results —
        release only fires when the last scene on a fingerprint goes.
        """
        registry = SceneRegistry(engine, max_scenes=4)
        first, _ = registry.adopt(build_scene(engine, SCENE))
        sibling_text = SCENE.replace("goal File", "goal String")
        second, _ = registry.adopt(build_scene(engine, sibling_text))
        assert first.scene_id != second.scene_id
        assert (first.prepared.fingerprint
                == second.prepared.fingerprint)

        engine.complete(first.prepared)
        engine.complete(second.prepared, goal=second.prepared.goal)
        assert len(engine.results) == 2

        assert registry.release(first.scene_id)
        # The sibling's cached result and prepared state survive.
        assert len(engine.results) == 2
        assert engine.complete(second.prepared,
                               goal=second.prepared.goal).cache_hit

        assert registry.release(second.scene_id)
        assert len(engine.results) == 0

    def test_describe(self, engine):
        registry = SceneRegistry(engine, max_scenes=4)
        registry.adopt(build_scene(engine, SCENE, name="demo"))
        description = registry.describe()
        assert description["count"] == 1
        assert description["limit"] == 4
        assert description["scenes"][0]["name"] == "demo"
        assert description["evictions"] == 0
        assert description["releases"] == 0


class TestReleaseAccounting:
    def test_explicit_release_is_not_an_eviction(self, engine):
        """Regression: `release` routed through the eviction tail and
        showed up as LRU pressure in `/v1/stats`."""
        released = []
        evicted = []
        registry = SceneRegistry(engine, max_scenes=4,
                                 on_evict=evicted.append,
                                 on_release=released.append)
        scene, _ = registry.adopt(build_scene(engine, SCENE))
        assert registry.release(scene.scene_id)
        assert registry.releases == 1
        assert registry.evictions == 0
        assert [s.scene_id for s in released] == [scene.scene_id]
        assert evicted == []

    def test_eviction_still_counts_as_eviction(self, engine):
        released = []
        evicted = []
        registry = SceneRegistry(engine, max_scenes=1,
                                 on_evict=evicted.append,
                                 on_release=released.append)
        first, _ = registry.adopt(build_scene(engine, SCENE))
        registry.adopt(build_scene(engine, OTHER_SCENE))
        assert registry.evictions == 1
        assert registry.releases == 0
        assert [s.scene_id for s in evicted] == [first.scene_id]
        assert released == []

    def test_release_still_frees_engine_state(self, engine):
        registry = SceneRegistry(engine, max_scenes=4)
        scene, _ = registry.adopt(build_scene(engine, SCENE))
        engine.complete(scene.prepared)
        assert len(engine.results) == 1
        assert registry.release(scene.scene_id)
        assert len(engine.results) == 0


class TestDuplicateAdoption:
    def test_duplicate_loser_sharing_state_is_untouched(self, engine):
        """The common race: both builds hit the engine scene table, so
        the loser shares the winner's heavy state — nothing released."""
        registry = SceneRegistry(engine, max_scenes=4)
        winner, _ = registry.adopt(build_scene(engine, SCENE))
        engine.complete(winner.prepared)
        loser = build_scene(engine, SCENE)
        adopted, already = registry.adopt(loser)
        assert already and adopted is winner
        assert len(engine.results) == 1     # warm result survives
        assert engine.complete(winner.prepared).cache_hit

    def test_duplicate_loser_with_fresh_state_is_released(self, engine):
        """Regression: when the engine's scene LRU dropped the winner's
        entry between the two builds, the loser re-prepared from scratch
        and its fresh state displaced the winner in the engine scene
        table — leaked until eviction, and served instead of the
        winner's.  Adoption must restore the winner and drop the loser's
        private state without purging shared fingerprint results."""
        registry = SceneRegistry(engine, max_scenes=4)
        winner, _ = registry.adopt(build_scene(engine, SCENE))
        engine.complete(winner.prepared)

        # Simulate the interleaving: the engine evicts the prepared scene
        # (capacity pressure from other tenants), then a concurrent
        # duplicate registration rebuilds it from scratch.
        engine.scenes.pop(winner.prepared.scene_key)
        loser = build_scene(engine, SCENE)
        assert loser.prepared is not winner.prepared
        assert loser.prepared.environment is not winner.prepared.environment
        assert engine.scenes.peek(winner.prepared.scene_key) \
            is loser.prepared

        adopted, already = registry.adopt(loser)
        assert already and adopted is winner
        # The winner is the canonical engine scene-table entry again...
        assert engine.scenes.peek(winner.prepared.scene_key) \
            is winner.prepared
        # ...the loser's private state is dropped...
        assert not loser.prepared._synthesizers
        # ...and the shared fingerprint's warm results survive.
        assert engine.complete(winner.prepared).cache_hit

        # The fingerprint refcount stayed reconciled: one release still
        # tears everything down exactly once.
        assert registry.release(winner.scene_id)
        assert len(engine.results) == 0
        assert winner.scene_id not in registry

    def test_duplicate_with_foreign_fingerprint_is_fully_released(
            self, engine):
        """A hand-built duplicate whose content differs (id collision)
        shares nothing with the winner: full engine release is safe."""
        registry = SceneRegistry(engine, max_scenes=4)
        winner, _ = registry.adopt(build_scene(engine, SCENE))
        impostor = build_scene(engine, OTHER_SCENE)
        impostor.scene_id = winner.scene_id
        engine.complete(impostor.prepared)
        assert len(engine.results) == 1

        adopted, already = registry.adopt(impostor)
        assert already and adopted is winner
        # The impostor's scene-table entry and results are gone.
        assert engine.scenes.peek(impostor.prepared.scene_key) is None
        assert len(engine.results) == 0

    def test_foreign_fingerprint_duplicate_spares_registered_siblings(
            self, engine):
        """An id-colliding duplicate whose content IS separately
        registered must not have that registration's state purged out
        from under it."""
        registry = SceneRegistry(engine, max_scenes=4)
        winner, _ = registry.adopt(build_scene(engine, SCENE))
        sibling, _ = registry.adopt(build_scene(engine, OTHER_SCENE))
        engine.complete(sibling.prepared)
        assert len(engine.results) == 1

        impostor = build_scene(engine, OTHER_SCENE)   # sibling's content
        impostor.scene_id = winner.scene_id           # colliding id
        adopted, already = registry.adopt(impostor)
        assert already and adopted is winner
        # The sibling's warm result and prepared state survive.
        assert engine.complete(sibling.prepared).cache_hit
        assert engine.scenes.peek(sibling.prepared.scene_key) is not None
