"""Scene registry: content-derived ids, LRU eviction, engine release."""

import pytest

from repro.core.succinct import intern_table_size
from repro.engine import CompletionEngine
from repro.server.protocol import ProtocolError
from repro.server.registry import (SceneRegistry, UnknownSceneError,
                                   build_scene)

SCENE = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
goal File
"""

OTHER_SCENE = """
local count : Int
imported demo.Box.new : Int -> Box \
[freq=10] [style=constructor] [display=Box]
goal Box
"""

THIRD_SCENE = """
local flag : Boolean
imported demo.Gate.new : Boolean -> Gate \
[freq=10] [style=constructor] [display=Gate]
goal Gate
"""


@pytest.fixture
def engine():
    return CompletionEngine()


class TestBuildScene:
    def test_builds_prepared_scene(self, engine):
        scene = build_scene(engine, SCENE, name="demo")
        assert scene.scene_id.startswith("scn_")
        assert scene.name == "demo"
        assert scene.declarations == 2
        assert str(scene.prepared.goal) == "File"

    def test_identical_text_same_id(self, engine):
        first = build_scene(engine, SCENE)
        second = build_scene(engine, SCENE)
        assert first.scene_id == second.scene_id
        # The engine's scene table dedups the prepared state too.
        assert first.prepared.fingerprint == second.prepared.fingerprint

    def test_different_goal_different_id(self, engine):
        moved = SCENE.replace("goal File", "goal String")
        assert (build_scene(engine, SCENE).scene_id
                != build_scene(engine, moved).scene_id)

    def test_unparsable_text_raises_scene_error(self, engine):
        with pytest.raises(ProtocolError) as excinfo:
            build_scene(engine, "local broken :\n")
        assert excinfo.value.code == "scene_error"
        assert excinfo.value.status == 422


class TestSceneRegistry:
    def test_adopt_and_get(self, engine):
        registry = SceneRegistry(engine, max_scenes=4)
        scene, already = registry.adopt(build_scene(engine, SCENE))
        assert not already
        assert registry.get(scene.scene_id) is scene
        assert len(registry) == 1

    def test_reregistration_is_idempotent(self, engine):
        registry = SceneRegistry(engine, max_scenes=4)
        first, _ = registry.adopt(build_scene(engine, SCENE))
        second, already = registry.adopt(build_scene(engine, SCENE))
        assert already
        assert second is first
        assert len(registry) == 1

    def test_unknown_scene_raises_not_found(self, engine):
        registry = SceneRegistry(engine, max_scenes=4)
        with pytest.raises(UnknownSceneError) as excinfo:
            registry.get("scn_missing")
        assert excinfo.value.status == 404

    def test_eviction_releases_engine_state(self, engine):
        evicted = []
        registry = SceneRegistry(engine, max_scenes=2,
                                 on_evict=evicted.append)
        first, _ = registry.adopt(build_scene(engine, SCENE))
        # Cache a result against the first scene so release has work to do.
        engine.complete(first.prepared)
        assert len(engine.results) == 1

        registry.adopt(build_scene(engine, OTHER_SCENE))
        registry.adopt(build_scene(engine, THIRD_SCENE))

        assert len(registry) == 2
        assert first.scene_id not in registry
        assert registry.evictions == 1
        assert [scene.scene_id for scene in evicted] == [first.scene_id]
        # The engine dropped the scene's results and prepared state.
        assert len(engine.results) == 0
        with pytest.raises(UnknownSceneError):
            registry.get(first.scene_id)

    def test_lru_order_follows_use(self, engine):
        registry = SceneRegistry(engine, max_scenes=2)
        first, _ = registry.adopt(build_scene(engine, SCENE))
        second, _ = registry.adopt(build_scene(engine, OTHER_SCENE))
        registry.get(first.scene_id)        # promote first; second is LRU
        registry.adopt(build_scene(engine, THIRD_SCENE))
        assert first.scene_id in registry
        assert second.scene_id not in registry

    def test_release_last_scene_clears_intern_table(self, engine):
        registry = SceneRegistry(engine, max_scenes=2)
        scene, _ = registry.adopt(build_scene(engine, SCENE))
        assert intern_table_size() > 0
        assert registry.release(scene.scene_id)
        assert intern_table_size() == 0
        assert not registry.release(scene.scene_id)

    def test_sibling_goals_share_prepared_state_until_last_release(
            self, engine):
        """Same declarations + different goals = same fingerprint.

        Evicting one sibling must not purge the other's warm results —
        release only fires when the last scene on a fingerprint goes.
        """
        registry = SceneRegistry(engine, max_scenes=4)
        first, _ = registry.adopt(build_scene(engine, SCENE))
        sibling_text = SCENE.replace("goal File", "goal String")
        second, _ = registry.adopt(build_scene(engine, sibling_text))
        assert first.scene_id != second.scene_id
        assert (first.prepared.fingerprint
                == second.prepared.fingerprint)

        engine.complete(first.prepared)
        engine.complete(second.prepared, goal=second.prepared.goal)
        assert len(engine.results) == 2

        assert registry.release(first.scene_id)
        # The sibling's cached result and prepared state survive.
        assert len(engine.results) == 2
        assert engine.complete(second.prepared,
                               goal=second.prepared.goal).cache_hit

        assert registry.release(second.scene_id)
        assert len(engine.results) == 0

    def test_describe(self, engine):
        registry = SceneRegistry(engine, max_scenes=4)
        registry.adopt(build_scene(engine, SCENE, name="demo"))
        description = registry.describe()
        assert description["count"] == 1
        assert description["limit"] == 4
        assert description["scenes"][0]["name"] == "demo"
