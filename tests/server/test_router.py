"""The sharded router: hash ring, journal, routing, supervision.

Unit tests cover the pure pieces (:class:`HashRing`, :class:`SceneJournal`,
``check_config``); the serving tests run the router over *attached*
in-process :class:`AsyncCompletionServer` backends (fast, no subprocesses);
the end-to-end test spawns two real ``repro serve`` backend processes,
kills one, and asserts the respawned replica loses no client-visible
state — journal replay re-registers its scenes and the snapshot restore
makes the retried completion a warm cache hit.
"""

import asyncio
import contextlib
from pathlib import Path

import pytest

from repro.server.client import (AsyncCompletionClient, SceneNotFoundError,
                                 ServerError)
from repro.server.router import (CompletionRouter, HashRing, RouterConfig,
                                 SceneJournal, check_config)
from repro.server.server import AsyncCompletionServer, ServerConfig

SCENE = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
goal File
"""

OTHER_SCENE = """
local count : Int
imported demo.Box.new : Int -> Box \
[freq=10] [style=constructor] [display=Box]
goal Box
"""

THIRD_SCENE = """
local flag : Boolean
imported demo.Gate.new : Boolean -> Gate \
[freq=10] [style=constructor] [display=Gate]
goal Gate
"""


class TestHashRing:
    def test_routing_is_deterministic_and_total(self):
        ring = HashRing(replicas=32)
        for backend in ("b0", "b1", "b2"):
            ring.add(backend)
        keys = [f"scn_{i:08x}" for i in range(500)]
        first = [ring.route(key) for key in keys]
        assert first == [ring.route(key) for key in keys]
        assert set(first) <= {"b0", "b1", "b2"}
        assert len(set(first)) == 3          # every backend owns something

    def test_adding_a_backend_only_pulls_keys_to_it(self):
        """Consistency: a new backend can only *claim* keys — no key may
        move between two pre-existing backends."""
        ring = HashRing(replicas=64)
        for backend in ("b0", "b1", "b2"):
            ring.add(backend)
        keys = [f"scn_{i:08x}" for i in range(2000)]
        before = {key: ring.route(key) for key in keys}
        ring.add("b3")
        moved = {key for key in keys if ring.route(key) != before[key]}
        assert moved, "a new backend must own part of the keyspace"
        assert all(ring.route(key) == "b3" for key in moved)
        # ~1/N of the keyspace moves, not ~all of it (the modulo-hash
        # failure mode this ring exists to avoid).
        assert len(moved) / len(keys) < 0.5

    def test_removing_a_backend_only_moves_its_own_keys(self):
        ring = HashRing(replicas=64)
        for backend in ("b0", "b1", "b2"):
            ring.add(backend)
        keys = [f"scn_{i:08x}" for i in range(2000)]
        before = {key: ring.route(key) for key in keys}
        ring.remove("b1")
        for key in keys:
            if before[key] != "b1":
                assert ring.route(key) == before[key]
            else:
                assert ring.route(key) in ("b0", "b2")

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(replicas=8)
        ring.add("b0")
        ring.add("b0")
        assert len(ring) == 1
        ring.remove("missing")
        ring.remove("b0")
        assert len(ring) == 0
        with pytest.raises(Exception):
            ring.route("anything")

    def test_rejects_nonpositive_replicas(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)


class TestHashRingReplicaOwnership:
    """R-replica ownership invariants for :meth:`HashRing.route_n`."""

    KEYS = [f"scn_{i:08x}" for i in range(1500)]

    @staticmethod
    def _ring(backend_ids, replicas=64):
        ring = HashRing(replicas=replicas)
        for backend_id in backend_ids:
            ring.add(backend_id)
        return ring

    def test_every_key_has_r_distinct_owners(self):
        ring = self._ring(["b0", "b1", "b2", "b3"])
        for key in self.KEYS:
            owners = ring.route_n(key, 2)
            assert len(owners) == 2
            assert len(set(owners)) == 2    # never collapses to duplicates
            assert ring.route(key) == owners[0]

    def test_owner_sets_clamp_to_ring_size(self):
        ring = self._ring(["b0", "b1"])
        for key in self.KEYS[:100]:
            assert len(set(ring.route_n(key, 3))) == 2
        solo = self._ring(["b0"])
        assert solo.route_n("anything", 2) == ["b0"]

    def test_adding_a_backend_only_inserts_itself_into_owner_sets(self):
        """Consistency per replica slot: a new backend may claim a place
        in a key's owner set (pushing at most one old owner out), but can
        never reshuffle keys between pre-existing backends."""
        ring = self._ring(["b0", "b1", "b2"])
        before = {key: ring.route_n(key, 2) for key in self.KEYS}
        ring.add("b3")
        changed = 0
        for key in self.KEYS:
            old, new = set(before[key]), set(ring.route_n(key, 2))
            if new != old:
                changed += 1
                assert new - old == {"b3"}
                assert len(old - new) == 1
        assert changed, "a new backend must claim part of some owner sets"

    def test_add_remove_remaps_a_bounded_fraction_of_replica_pairs(self):
        """~R/N of (key, replica-slot) pairs move on add/remove, not ~all
        — the modulo-hash failure mode, replicated."""
        ring = self._ring(["b0", "b1", "b2", "b3"])
        before = {key: ring.route_n(key, 2) for key in self.KEYS}
        ring.add("b4")
        moved = sum(
            1
            for key in self.KEYS
            for slot, owner in enumerate(ring.route_n(key, 2))
            if owner != before[key][slot])
        assert 0 < moved / (2 * len(self.KEYS)) < 0.5

        before = {key: ring.route_n(key, 2) for key in self.KEYS}
        ring.remove("b1")
        for key in self.KEYS:
            old, new = before[key], ring.route_n(key, 2)
            if "b1" not in old:
                # Keys b1 never owned keep their owner set; the surviving
                # owners' relative order is stable too.
                assert new == old


class TestSceneJournal:
    def test_record_is_content_addressed_and_idempotent(self, tmp_path):
        journal = SceneJournal(str(tmp_path / "journal.jsonl"))
        assert journal.record(digest="d1", scene_id="scn_a", name="demo",
                              text=SCENE)
        assert not journal.record(digest="d1", scene_id="scn_a",
                                  name="demo", text=SCENE)
        assert len(journal) == 1
        assert journal.lookup_digest("d1").scene_id == "scn_a"
        assert journal.lookup_scene("scn_a").text == SCENE

    def test_replay_from_disk_is_idempotent(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = SceneJournal(path)
        journal.record(digest="d1", scene_id="scn_a", name=None, text="t1")
        journal.record(digest="d2", scene_id="scn_b", name="b", text="t2")

        for _ in range(3):                  # reload repeatedly: same state
            reloaded = SceneJournal(path)
            assert len(reloaded) == 2
            assert {e.scene_id for e in reloaded.entries()} \
                == {"scn_a", "scn_b"}
            assert reloaded.corrupt_lines == 0

    def test_release_tombstones_survive_reload(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = SceneJournal(path)
        journal.record(digest="d1", scene_id="scn_a", name=None, text="t1")
        journal.record(digest="d2", scene_id="scn_b", name=None, text="t2")
        assert journal.remove("scn_a")
        assert not journal.remove("scn_a")  # already tombstoned

        reloaded = SceneJournal(path)
        assert reloaded.lookup_scene("scn_a") is None
        assert reloaded.lookup_digest("d1") is None
        assert reloaded.lookup_scene("scn_b") is not None

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SceneJournal(str(path))
        journal.record(digest="d1", scene_id="scn_a", name=None, text="t1")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"op": "register", "digest": "d2"')  # torn append

        reloaded = SceneJournal(str(path))
        assert len(reloaded) == 1
        assert reloaded.corrupt_lines == 1

    def test_churned_journal_compacts_on_reload(self, tmp_path):
        """Register/release churn must not grow the file (and every
        restart's replay) with history instead of the live set."""
        path = tmp_path / "journal.jsonl"
        journal = SceneJournal(str(path))
        for index in range(30):
            journal.record(digest=f"d{index}", scene_id=f"scn_{index}",
                           name=None, text="t")
            journal.remove(f"scn_{index}")
        journal.record(digest="live", scene_id="scn_live", name=None,
                       text="t")
        assert len(path.read_text(encoding="utf-8").splitlines()) == 61

        reloaded = SceneJournal(str(path))
        assert reloaded.compactions == 1
        assert len(reloaded) == 1
        assert reloaded.lookup_scene("scn_live") is not None
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1

        # Compaction converges: a clean file is left alone.
        again = SceneJournal(str(path))
        assert again.compactions == 0
        assert len(again) == 1

    def test_check_config_never_rewrites_the_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SceneJournal(str(path))
        for index in range(30):
            journal.record(digest=f"d{index}", scene_id=f"scn_{index}",
                           name=None, text="t")
            journal.remove(f"scn_{index}")
        before = path.read_bytes()
        assert check_config(RouterConfig(backends=2,
                                         journal_path=str(path))) == []
        assert path.read_bytes() == before   # the dry run is read-only

    def test_memory_only_journal_works_without_a_path(self):
        journal = SceneJournal(None)
        journal.record(digest="d1", scene_id="scn_a", name=None, text="t")
        assert len(journal) == 1
        assert journal.remove("scn_a")
        assert len(journal) == 0


class TestCheckConfig:
    def test_valid_spawn_config(self, tmp_path):
        assert check_config(RouterConfig(
            backends=2, journal_path=str(tmp_path / "j.jsonl"),
            snapshot_dir=str(tmp_path / "snaps"))) == []

    def test_valid_attach_config(self):
        assert check_config(RouterConfig(
            attach=("127.0.0.1:8777", "127.0.0.1:8778"))) == []

    def test_rejects_bad_backend_count_and_ring(self):
        problems = check_config(RouterConfig(backends=0, ring_replicas=0))
        assert len(problems) == 2

    def test_rejects_malformed_attach_address(self):
        problems = check_config(RouterConfig(attach=("localhost",)))
        assert any("host:port" in p for p in problems)

    def test_rejects_snapshot_dir_with_attach(self, tmp_path):
        problems = check_config(RouterConfig(
            attach=("127.0.0.1:8777",), snapshot_dir=str(tmp_path)))
        assert any("snapshot-dir" in p for p in problems)

    def test_rejects_missing_journal_directory(self, tmp_path):
        problems = check_config(RouterConfig(
            backends=2, journal_path=str(tmp_path / "absent" / "j.jsonl")))
        assert any("does not exist" in p for p in problems)

    def test_reports_corrupt_journal_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"op": "register", "digest": "d", "scene_id": '
                        '"s", "text": "t"}\nnot json\n', encoding="utf-8")
        problems = check_config(RouterConfig(backends=2,
                                             journal_path=str(path)))
        assert any("unreadable" in p for p in problems)


@contextlib.asynccontextmanager
async def attached_router(n=2, **router_overrides):
    """A router over *n* in-process backends (no subprocesses)."""
    backends = []
    for _ in range(n):
        server = AsyncCompletionServer(config=ServerConfig(port=0))
        await server.start()
        backends.append(server)
    router = CompletionRouter(RouterConfig(
        port=0, attach=tuple(f"{s.host}:{s.port}" for s in backends),
        **router_overrides))
    await router.start()
    client = AsyncCompletionClient(router.host, router.port)
    try:
        yield router, backends, client
    finally:
        await client.close()
        await router.close()
        for server in backends:
            await server.close()


def _backend_for(router, backends, scene_id):
    """The in-process server a scene id's *primary* owner routes to."""
    return _owner_servers(router, backends, scene_id)[0]


def _owner_servers(router, backends, scene_id):
    """The in-process servers of the scene's replica set, ring order."""
    servers = []
    for owner_id in router.ring.route_n(scene_id,
                                        router.config.replication):
        backend = router.backends[owner_id]
        for server in backends:
            if (server.host, server.port) == (backend.host, backend.port):
                servers.append(server)
                break
        else:
            raise AssertionError("ring routed to an unknown backend")
    return servers


class TestRoutedServing:
    def test_register_complete_and_warm_through_router(self):
        async def main():
            # Three backends, R=2: the replica set is a strict subset, so
            # both placement *and* non-placement are observable.
            async with attached_router(3) as (router, backends, client):
                registered = await client.register_scene(SCENE, name="demo")
                scene_id = registered["scene_id"]
                assert registered["declarations"] == 2

                cold = await client.complete(scene_id)
                assert cold["inhabited"] is True
                assert cold["snippets"][0]["code"] == "new File(name)"
                warm = await client.complete(scene_id)
                assert warm["cache_hit"] is True
                assert warm["snippets"] == cold["snippets"]

                # The scene lives on every replica-set owner and nowhere
                # else.
                owners = _owner_servers(router, backends, scene_id)
                assert len(owners) == 2
                assert all(scene_id in server.registry
                           for server in owners)
                others = [s for s in backends if s not in owners]
                assert all(scene_id not in s.registry for s in others)

        asyncio.run(main())

    def test_scenes_spread_over_shards_consistently(self):
        async def main():
            async with attached_router() as (router, backends, client):
                scene_ids = []
                for text in (SCENE, OTHER_SCENE, THIRD_SCENE):
                    scene_ids.append(
                        (await client.register_scene(text))["scene_id"])
                for scene_id in scene_ids:
                    served = await client.complete(scene_id)
                    assert served["scene_id"] == scene_id
                    # Every scene is registered exactly where the ring
                    # says — and re-asking routes identically.
                    owner = _backend_for(router, backends, scene_id)
                    assert scene_id in owner.registry

        asyncio.run(main())

    def test_inline_scene_completes_and_caches_through_router(self):
        async def main():
            async with attached_router() as (router, backends, client):
                cold = await client.complete(scene=SCENE)
                assert cold["snippets"]
                warm = await client.complete(scene=SCENE)
                assert warm["cache_hit"] is True
                override = await client.complete(scene=SCENE, goal="String")
                assert override["snippets"][0]["code"] == "name"

        asyncio.run(main())

    def test_unknown_scene_reregisters_from_journal_transparently(self):
        async def main():
            async with attached_router() as (router, backends, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                cold = await client.complete(scene_id)

                # The backend loses the scene behind the router's back
                # (eviction / unsupervised restart).
                owner = _backend_for(router, backends, scene_id)
                assert owner.registry.release(scene_id)

                served = await client.complete(scene_id)
                assert served["snippets"] == cold["snippets"]
                assert router.reregistrations == 1
                assert scene_id in owner.registry   # re-taught

        asyncio.run(main())

    def test_unjournaled_unknown_scene_stays_not_found(self):
        async def main():
            async with attached_router() as (router, backends, client):
                with pytest.raises(SceneNotFoundError):
                    await client.complete("scn_0000000000000000")
                assert router.reregistrations == 0

        asyncio.run(main())

    def test_release_through_router_tombstones_the_journal(self):
        async def main():
            async with attached_router() as (router, backends, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                await client.complete(scene_id)

                released = await client.release_scene(scene_id)
                assert released["released"] is True
                assert router.journal.lookup_scene(scene_id) is None
                # Without a journal entry there is nothing to replay: the
                # scene is gone for good, not resurrected.
                with pytest.raises(SceneNotFoundError):
                    await client.complete(scene_id)

                again = await client.release_scene(scene_id)
                assert again["released"] is False   # idempotent

        asyncio.run(main())

    def test_batch_routes_each_query_to_its_shard(self):
        async def main():
            async with attached_router() as (router, backends, client):
                first = (await client.register_scene(SCENE))["scene_id"]
                second = (await client.register_scene(
                    OTHER_SCENE))["scene_id"]
                results = await client.complete_batch([
                    {"scene_id": first},
                    {"scene_id": "scn_missing"},
                    {"scene_id": second, "n": 1},
                ])
                assert results[0]["ok"] is True
                assert results[1]["ok"] is False
                assert results[1]["error"]["code"] == "not_found"
                assert results[2]["ok"] is True
                assert len(results[2]["snippets"]) == 1

        asyncio.run(main())

    def test_backend_errors_pass_through_with_their_codes(self):
        async def main():
            async with attached_router() as (router, backends, client):
                with pytest.raises(ServerError) as excinfo:
                    await client.register_scene("local broken :\n")
                assert excinfo.value.code == "scene_error"
                assert excinfo.value.status == 422

        asyncio.run(main())


class TestAggregatedStats:
    def test_merged_counters_equal_sum_of_shards(self):
        async def main():
            async with attached_router() as (router, backends, client):
                for text in (SCENE, OTHER_SCENE, THIRD_SCENE):
                    scene_id = (await client.register_scene(
                        text))["scene_id"]
                    await client.complete(scene_id)
                    await client.complete(scene_id)      # warm hit

                stats = await client.stats()
                assert len(stats["shards"]) == 2
                shard_stats = [shard["stats"]["server"]
                               for shard in stats["shards"]]
                for counter in ("completions", "cache_hits", "synthesized",
                                "scenes_registered", "coalesced"):
                    assert stats["server"][counter] == sum(
                        shard[counter] for shard in shard_stats), counter
                assert stats["server"]["completions"] == 6
                assert stats["server"]["cache_hits"] == 3

                # Cross-check against the in-process backend truth.
                assert stats["server"]["synthesized"] == sum(
                    server.metrics.synthesized for server in backends)

                router_section = stats["router"]
                assert router_section["backends"] == 2
                assert router_section["healthy"] == 2
                assert router_section["journal"]["scenes"] == 3

        asyncio.run(main())

    def test_merged_latency_windows(self):
        async def main():
            async with attached_router() as (router, backends, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                await client.complete(scene_id)
                await client.complete(scene_id)
                stats = await client.stats()
                window = stats["server"]["latency"]["complete"]
                assert window["count"] == 2
                assert window["p95_ms"] is not None
                assert window["mean_ms"] is not None
                assert window["max_ms"] >= window["p50_ms"]

        asyncio.run(main())

    def test_healthz_lists_backends(self):
        async def main():
            async with attached_router() as (router, backends, client):
                health = await client.healthz()
                assert health["status"] == "ok"
                assert len(health["backends"]) == 2
                assert all(b["healthy"] for b in health["backends"])

        asyncio.run(main())


class TestJournalReplayIntoBackends:
    def test_router_restart_replays_journal_into_fresh_backends(
            self, tmp_path):
        """A new router over the same journal re-teaches every backend
        its shard — scene ids keep answering after full backend loss."""
        journal_path = str(tmp_path / "journal.jsonl")

        async def first_life():
            async with attached_router(
                    journal_path=journal_path) as (router, backends,
                                                   client):
                scene_id = (await client.register_scene(
                    SCENE, name="demo"))["scene_id"]
                await client.complete(scene_id)
                return scene_id

        async def second_life(scene_id):
            # Brand-new backends, brand-new router, same journal file.
            async with attached_router(
                    journal_path=journal_path) as (router, backends,
                                                   client):
                assert router.replayed >= 1
                served = await client.complete(scene_id)
                assert served["snippets"]
                assert served["scene_id"] == scene_id

        scene_id = asyncio.run(first_life())
        asyncio.run(second_life(scene_id))


class TestRouterEndToEnd:
    def test_two_backends_kill_one_and_recover_warm(self, tmp_path):
        """The acceptance path: two spawned backend processes, consistent
        routing, aggregated stats, then a SIGKILL'd backend — the sibling
        replica serves the very next completion (no stall, no error) while
        the dead owner respawns in the background, journal replay restores
        its scenes and the snapshot restore makes a later query warm."""
        async def main():
            router = CompletionRouter(RouterConfig(
                port=0, backends=2,
                journal_path=str(tmp_path / "journal.jsonl"),
                snapshot_dir=str(tmp_path / "snapshots")))
            await router.start()
            client = AsyncCompletionClient(router.host, router.port,
                                           timeout=120.0)
            try:
                first = (await client.register_scene(
                    SCENE, name="demo"))["scene_id"]
                second = (await client.register_scene(
                    OTHER_SCENE))["scene_id"]

                cold = await client.complete(first)
                assert cold["snippets"][0]["code"] == "new File(name)"
                assert (await client.complete(first))["cache_hit"] is True
                await client.complete(second)

                # Context hints ride the routed path: a hinted repeat of
                # the same query is a cache hit re-ranked per context,
                # never a second synthesis.
                hint = {"receiver_type": "java.io.File"}
                hinted = await client.complete(first, context=hint)
                assert hinted["cache_hit"] is True
                assert hinted["reranked"] is True
                assert [s["code"] for s in hinted["snippets"]] == \
                    [s["code"] for s in cold["snippets"]]

                stats = await client.stats()
                assert len(stats["shards"]) == 2
                assert stats["server"]["completions"] == sum(
                    shard["stats"]["server"]["completions"]
                    for shard in stats["shards"])

                owner = router.backends[router.ring.route(first)]
                # The owner persists its cache after each synthesis; wait
                # for the snapshot file so the kill cannot outrun it.
                snapshot = Path(owner.snapshot_path)
                for _ in range(400):
                    if snapshot.exists():
                        break
                    await asyncio.sleep(0.05)
                assert snapshot.exists(), "backend never snapshotted"

                owner.process.kill()
                owner.process.wait()

                # With R=2 the sibling replica already holds the scene:
                # the very next completion fails over instantly instead
                # of blocking on a respawn.
                served = await client.complete(first)
                assert served["snippets"] == cold["snippets"]
                assert "degraded" not in served
                assert router.failovers >= 1

                # The dead owner respawns in the background; wait for it.
                for _ in range(400):
                    if owner.restarts == 1 and owner.healthy:
                        break
                    await asyncio.sleep(0.05)
                assert owner.restarts == 1
                assert router.restarts == 1

                health = await client.healthz()
                assert all(backend["healthy"]
                           for backend in health["backends"])

                # Journal replay + snapshot restore make the respawned
                # owner serve its scene warm again.
                warm = await client.complete(first)
                assert warm["snippets"] == cold["snippets"]
                assert warm["cache_hit"] is True, (
                    "respawned replica must restore its snapshot and "
                    "serve the journal-replayed scene warm")

                # Rank stability across the respawn: the restored base
                # cache re-ranks to the same hinted order as before the
                # kill — snapshots hold base results, so a replica that
                # accidentally snapshotted re-ranked weights would
                # double-apply adjustments here and diverge.
                hinted_after = await client.complete(first, context=hint)
                assert hinted_after["cache_hit"] is True
                assert hinted_after["snippets"] == hinted["snippets"]
            finally:
                await client.close()
                await router.close()

        asyncio.run(main())
