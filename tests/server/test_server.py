"""End-to-end server behaviour over real sockets.

Each test spins the :class:`AsyncCompletionServer` up on an ephemeral port
inside ``asyncio.run`` and drives it with :class:`AsyncCompletionClient`.
Synthesis is stubbed/delayed via the module-level ``_run_synthesis`` hook
where determinism matters (coalescing, admission control, deadlines).
"""

import asyncio
import contextlib
import threading

import pytest

import repro.server.server as server_module
from repro.core.synthesizer import SynthesisResult
from repro.server.client import (AsyncCompletionClient, ClientConnectionError,
                                 OverloadedError, SceneNotFoundError,
                                 ServerError)
from repro.server.server import AsyncCompletionServer, ServerConfig

SCENE = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
goal File
"""

OTHER_SCENE = """
local count : Int
imported demo.Box.new : Int -> Box \
[freq=10] [style=constructor] [display=Box]
goal Box
"""


@contextlib.asynccontextmanager
async def running_server(**config_overrides):
    config = ServerConfig(port=0, **config_overrides)
    server = AsyncCompletionServer(config=config)
    await server.start()
    client = AsyncCompletionClient(server.host, server.port)
    try:
        yield server, client
    finally:
        await client.close()
        await server.close()


class TestServing:
    def test_register_complete_and_stats(self):
        async def main():
            async with running_server() as (server, client):
                health = await client.healthz()
                assert health["status"] == "ok"

                registered = await client.register_scene(SCENE, name="demo")
                assert registered["declarations"] == 2
                assert registered["goal"] == "File"
                assert registered["cached"] is False

                again = await client.register_scene(SCENE)
                assert again["scene_id"] == registered["scene_id"]
                assert again["cached"] is True

                cold = await client.complete(registered["scene_id"])
                assert cold["inhabited"] is True
                assert cold["cache_hit"] is False
                assert cold["snippets"][0]["code"] == "new File(name)"

                warm = await client.complete(registered["scene_id"])
                assert warm["cache_hit"] is True
                assert warm["snippets"] == cold["snippets"]

                stats = await client.stats()
                assert stats["server"]["completions"] == 2
                assert stats["server"]["cache_hits"] == 1
                assert stats["server"]["synthesized"] == 1
                assert stats["server"]["scenes_registered"] == 1
                assert stats["scenes"]["count"] == 1
                assert stats["core"]["interned_types"]["size"] > 0

        asyncio.run(main())

    def test_stats_expose_executor_and_arena_sections(self):
        async def main():
            async with running_server() as (server, client):
                await client.complete(scene=SCENE)
                stats = await client.stats()
                executor = stats["executor"]
                assert executor["threads"] == server.config.executor_workers
                assert executor["workers"] == 1
                assert executor["process_pool"] is False
                arena = stats["core"]["env_arena"]
                # Thread-mode synthesis runs in-process, so the scene's
                # arena is visible here.
                assert arena["live_arenas"] >= 1
                assert arena["env_count"] >= 1
                assert arena["transition_memo_misses"] >= 0
                assert stats["core"]["interned_types"]["type_ids_assigned"] > 0

        asyncio.run(main())

    def test_process_pool_workers_serve_identical_results(self):
        async def main():
            async with running_server() as (_threads, thread_client):
                expected = await thread_client.complete(scene=SCENE)
            async with running_server(workers=2) as (server, client):
                served = await client.complete(scene=SCENE)
                assert served["snippets"] == expected["snippets"]
                warm = await client.complete(scene=SCENE)
                assert warm["cache_hit"] is True
                stats = await client.stats()
                assert stats["executor"]["workers"] == 2
                if server._pool is not None:  # pool may be unavailable
                    assert stats["executor"]["process_pool"] is True

        asyncio.run(main())

    def test_broken_pool_degrades_to_threads(self):
        async def main():
            async with running_server(workers=2) as (server, client):
                if server._pool is None:
                    return              # sandbox without multiprocessing
                # Simulate a sandbox killing the workers mid-flight.
                server._pool.shutdown(wait=False, cancel_futures=True)
                from concurrent.futures.process import BrokenProcessPool

                class _Broken:
                    def submit(self, *args, **kwargs):
                        raise BrokenProcessPool("workers are gone")

                    def shutdown(self, **kwargs):
                        pass

                server._pool = _Broken()
                served = await client.complete(scene=SCENE)
                assert served["inhabited"] is True
                assert server._pool is None  # permanently downgraded

        asyncio.run(main())

    def test_inline_scene_and_goal_override(self):
        async def main():
            async with running_server() as (server, client):
                served = await client.complete(scene=SCENE, goal="String")
                assert served["goal"] == "String"
                assert served["snippets"][0]["code"] == "name"

        asyncio.run(main())

    def test_uninhabited_goal_is_ok_but_empty(self):
        async def main():
            async with running_server() as (server, client):
                served = await client.complete(scene=SCENE,
                                               goal="Unobtainium")
                assert served["inhabited"] is False
                assert served["snippets"] == []

        asyncio.run(main())

    def test_batch_mixes_successes_and_errors(self):
        async def main():
            async with running_server() as (server, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                results = await client.complete_batch([
                    {"scene_id": scene_id},
                    {"scene_id": "scn_missing"},
                    {"scene_id": scene_id, "n": 1},
                ])
                assert results[0]["ok"] is True
                assert results[1]["ok"] is False
                assert results[1]["error"]["code"] == "not_found"
                assert results[2]["ok"] is True
                assert len(results[2]["snippets"]) == 1

        asyncio.run(main())


class TestCoalescing:
    def test_concurrent_identical_requests_run_one_synthesis(
            self, monkeypatch):
        real = server_module._run_synthesis
        calls = []

        def slow_synthesis(*args):
            calls.append(args)
            result = real(*args)
            threading.Event().wait(0.15)    # hold the key in flight
            return result

        monkeypatch.setattr(server_module, "_run_synthesis", slow_synthesis)

        async def main():
            async with running_server() as (server, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                burst = 25
                results = await asyncio.gather(
                    *(client.complete(scene_id) for _ in range(burst)))
                assert len(calls) == 1
                codes = {tuple(s["code"] for s in r["snippets"])
                         for r in results}
                assert len(codes) == 1
                stats = (await client.stats())["server"]
                assert stats["synthesized"] == 1
                assert (stats["coalesced"] + stats["cache_hits"]
                        == burst - 1)
                assert stats["coalesced"] >= 1

        asyncio.run(main())

    def test_concurrent_identical_registrations_build_once(self,
                                                           monkeypatch):
        import repro.server.registry as registry_module
        real = registry_module.build_scene
        calls = []

        def slow_build(engine, text, name=None):
            calls.append(text)
            scene = real(engine, text, name)
            threading.Event().wait(0.1)     # hold the digest in flight
            return scene

        monkeypatch.setattr(server_module, "build_scene", slow_build)

        async def main():
            async with running_server() as (server, client):
                results = await asyncio.gather(
                    *(client.register_scene(SCENE) for _ in range(20)))
                assert len(calls) == 1
                assert len({r["scene_id"] for r in results}) == 1
                stats = (await client.stats())["server"]
                assert stats["scenes_registered"] == 1
                assert stats["rejected_overload"] == 0

        asyncio.run(main())

    def test_distinct_keys_do_not_coalesce(self):
        async def main():
            async with running_server() as (server, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                await asyncio.gather(client.complete(scene_id, n=1),
                                     client.complete(scene_id, n=2))
                stats = (await client.stats())["server"]
                assert stats["synthesized"] == 2
                assert stats["coalesced"] == 0

        asyncio.run(main())


class TestAdmissionControl:
    def test_queue_full_rejects_with_overloaded(self, monkeypatch):
        release = threading.Event()
        real = server_module._run_synthesis

        def blocking_synthesis(*args):
            release.wait(10)
            return real(*args)

        monkeypatch.setattr(server_module, "_run_synthesis",
                            blocking_synthesis)

        async def main():
            async with running_server(max_pending=1) as (server, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                first = asyncio.create_task(client.complete(scene_id, n=1))
                # Wait until the first synthesis occupies the queue slot.
                for _ in range(200):
                    if server.metrics.queue_depth >= 1:
                        break
                    await asyncio.sleep(0.01)
                assert server.metrics.queue_depth == 1

                with pytest.raises(OverloadedError):
                    await client.complete(scene_id, n=2)

                release.set()
                served = await first
                assert served["snippets"]
                stats = (await client.stats())["server"]
                assert stats["rejected_overload"] == 1
                assert stats["queue"]["depth"] == 0
                assert stats["queue"]["peak"] == 1

        asyncio.run(main())

    def test_cache_hits_bypass_admission(self, monkeypatch):
        async def main():
            async with running_server(max_pending=1) as (server, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                await client.complete(scene_id)     # populate the cache
                server.metrics.queue_depth = server.config.max_pending  # saturate
                served = await client.complete(scene_id)
                assert served["cache_hit"] is True
                server.metrics.queue_depth = 0

        asyncio.run(main())

    def test_registration_is_admission_controlled(self):
        async def main():
            async with running_server(max_pending=1) as (server, client):
                server.metrics.queue_depth = server.config.max_pending  # saturate
                with pytest.raises(OverloadedError):
                    await client.register_scene(OTHER_SCENE)
                server.metrics.queue_depth = 0
                stats = (await client.stats())["server"]
                assert stats["rejected_overload"] == 1

        asyncio.run(main())

    def test_known_inline_scene_bypasses_registration(self):
        async def main():
            async with running_server(max_pending=1) as (server, client):
                first = await client.complete(scene=SCENE)
                # Same text again while "overloaded": the digest
                # short-circuit answers from the registry + result cache
                # without touching the executor path.
                server.metrics.queue_depth = server.config.max_pending
                second = await client.complete(scene=SCENE)
                server.metrics.queue_depth = 0
                assert second["scene_id"] == first["scene_id"]
                assert second["cache_hit"] is True
                stats = (await client.stats())["server"]
                assert stats["scenes_registered"] == 1

        asyncio.run(main())


class TestDeadlines:
    def test_expired_deadline_returns_partial_anytime_result(
            self, monkeypatch):
        def truncated_synthesis(prepared, goal, policy, config, n):
            # The pipeline's anytime behaviour: budget ran out mid-search.
            assert config.prover_time_limit <= 0.5
            return SynthesisResult(inhabited=True,
                                   reconstruction_truncated=True)

        monkeypatch.setattr(server_module, "_run_synthesis",
                            truncated_synthesis)

        async def main():
            async with running_server() as (server, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                served = await client.complete(scene_id, deadline_ms=50)
                assert served["ok"] is True
                assert served["partial"] is True
                assert served["deadline_ms"] == 50
                stats = (await client.stats())["server"]
                assert stats["deadline_partial"] == 1

        asyncio.run(main())

    def test_deadlines_partition_the_cache(self):
        async def main():
            async with running_server() as (server, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                first = await client.complete(scene_id, deadline_ms=5000)
                second = await client.complete(scene_id, deadline_ms=1000)
                third = await client.complete(scene_id, deadline_ms=5000)
                assert first["cache_hit"] is False
                assert second["cache_hit"] is False   # different budgets
                assert third["cache_hit"] is True     # same budgets as first

        asyncio.run(main())

    def test_default_deadline_applies_when_client_sends_none(self):
        async def main():
            async with running_server(default_deadline_ms=2000) as (
                    server, client):
                served = await client.complete(scene=SCENE)
                assert served["deadline_ms"] == 2000

        asyncio.run(main())


class TestSceneEviction:
    def test_evicted_scene_id_is_not_found_and_results_released(self):
        async def main():
            async with running_server(max_scenes=1) as (server, client):
                first = (await client.register_scene(SCENE))["scene_id"]
                await client.complete(first)
                assert len(server.engine.results) == 1

                await client.register_scene(OTHER_SCENE)
                stats = await client.stats()
                assert stats["server"]["scenes_evicted"] == 1
                assert stats["server"]["scenes_released"] == 0
                assert stats["scenes"]["count"] == 1
                assert stats["scenes"]["evictions"] == 1
                assert stats["scenes"]["releases"] == 0
                assert len(server.engine.results) == 0

                with pytest.raises(SceneNotFoundError):
                    await client.complete(first)

        asyncio.run(main())


class TestSceneRelease:
    def test_release_endpoint_drops_scene_and_counts_apart(self):
        """Regression: explicit releases used to inflate the eviction
        counters, making client churn look like capacity pressure."""
        async def main():
            async with running_server() as (server, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                await client.complete(scene_id)
                assert len(server.engine.results) == 1

                released = await client.release_scene(scene_id)
                assert released["released"] is True
                assert len(server.engine.results) == 0

                stats = await client.stats()
                assert stats["server"]["scenes_released"] == 1
                assert stats["server"]["scenes_evicted"] == 0
                assert stats["scenes"]["releases"] == 1
                assert stats["scenes"]["evictions"] == 0

                with pytest.raises(SceneNotFoundError):
                    await client.complete(scene_id)

        asyncio.run(main())

    def test_release_is_idempotent(self):
        async def main():
            async with running_server() as (server, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                assert (await client.release_scene(
                    scene_id))["released"] is True
                assert (await client.release_scene(
                    scene_id))["released"] is False
                assert (await client.release_scene(
                    "scn_never_existed"))["released"] is False

        asyncio.run(main())

    def test_client_complete_text_survives_release(self):
        """The retry-on-unknown-scene helper re-registers evicted or
        released scenes transparently."""
        async def main():
            async with running_server() as (server, client):
                cold = await client.complete_text(SCENE, name="demo")
                assert cold["snippets"]
                scene_id = cold["scene_id"]
                await client.release_scene(scene_id)

                served = await client.complete_text(SCENE, name="demo")
                assert served["scene_id"] == scene_id
                assert served["snippets"] == cold["snippets"]

        asyncio.run(main())


class TestSnapshotPersistence:
    def test_restart_restores_warm_results(self, tmp_path):
        snapshot = str(tmp_path / "results.snapshot")

        async def first_life():
            async with running_server(
                    snapshot_path=snapshot) as (server, client):
                cold = await client.complete(scene=SCENE)
                assert cold["cache_hit"] is False
                # The save is debounced onto the executor; wait for it.
                for _ in range(200):
                    if server.metrics.snapshots_saved > 0:
                        break
                    await asyncio.sleep(0.02)
                assert server.metrics.snapshots_saved > 0
                return cold

        async def second_life(cold):
            async with running_server(
                    snapshot_path=snapshot) as (server, client):
                assert server.metrics.snapshot_restored == 1
                warm = await client.complete(scene=SCENE)
                assert warm["cache_hit"] is True
                assert warm["snippets"] == cold["snippets"]
                stats = await client.stats()
                assert stats["engine"]["snapshot"]["restored"] == 1

        cold = asyncio.run(first_life())
        asyncio.run(second_life(cold))

    def test_shutdown_flushes_dirty_snapshot(self, tmp_path):
        import os
        snapshot = str(tmp_path / "results.snapshot")

        async def main():
            # A long debounce interval: the post-synthesis save is
            # suppressed, so only the shutdown flush can write the file.
            async with running_server(
                    snapshot_path=snapshot,
                    snapshot_interval=3600.0) as (server, client):
                server._last_snapshot = __import__("time").monotonic()
                await client.complete(scene=SCENE)
                assert not os.path.exists(snapshot)
            assert os.path.exists(snapshot)

        asyncio.run(main())

    def test_corrupt_snapshot_starts_cold_not_dead(self, tmp_path):
        snapshot = tmp_path / "results.snapshot"
        snapshot.write_bytes(b"garbage")

        async def main():
            async with running_server(
                    snapshot_path=str(snapshot)) as (server, client):
                assert server.metrics.snapshot_restored == 0
                served = await client.complete(scene=SCENE)
                assert served["snippets"]

        asyncio.run(main())


#: Two equal-frequency candidates for the same goal: base order is the
#: deterministic emission tie-break, so a receiver hint is what decides
#: which of the two leads — the scene the context e2e tests turn on.
CONTEXT_SCENE = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
imported demo.Temp.make : String -> File \
[freq=100] [style=method] [display=Temp.make]
goal File
"""


class TestContextAwareServing:
    def test_hints_rerank_cache_hits_without_fragmenting(self):
        """Same scene + query under different hints: one synthesis, every
        follow-up a cache hit, each re-ranked per its own context."""
        async def main():
            async with running_server() as (server, client):
                cold = await client.complete(scene=CONTEXT_SCENE)
                assert cold["cache_hit"] is False
                assert cold["reranked"] is True   # scope weigher applies
                assert cold["snippets"][0]["code"] == "new File(name)"

                temp = await client.complete(
                    scene=CONTEXT_SCENE,
                    context={"receiver_type": "demo.Temp"})
                assert temp["cache_hit"] is True
                assert temp["reranked"] is True
                assert temp["snippets"][0]["code"] == "name.Temp.make()"

                file_hint = await client.complete(
                    scene=CONTEXT_SCENE,
                    context={"receiver_type": "java.io.File",
                             "position_kind": "after_new"})
                assert file_hint["cache_hit"] is True
                assert file_hint["snippets"][0]["code"] == "new File(name)"

                # Re-ranking renumbers: every response is rank 1..n with
                # non-decreasing weights, whatever the hints did.
                for served in (cold, temp, file_hint):
                    ranks = [s["rank"] for s in served["snippets"]]
                    assert ranks == list(range(1, len(ranks) + 1))
                    weights = [s["weight"] for s in served["snippets"]]
                    assert weights == sorted(weights)

                stats = await client.stats()
                assert stats["server"]["synthesized"] == 1
                assert stats["server"]["completions"] == 3
                ranking = stats["ranking"]
                assert ranking["weighers"] == [
                    "kind", "scope", "receiver", "constructor",
                    "project_freq"]
                assert ranking["reranks"] >= 3
                assert ranking["reordered"] >= 1       # the Temp flip
                assert ranking["adjustments"]["receiver"] >= 2
                assert ranking["adjustments"]["scope"] >= 6

        asyncio.run(main())

    def test_rerank_disabled_serves_base_bytes(self):
        async def main():
            async with running_server(rerank=False) as (server, client):
                served = await client.complete(
                    scene=CONTEXT_SCENE,
                    context={"receiver_type": "demo.Temp"})
                assert served["reranked"] is False
                assert served["snippets"][0]["code"] == "new File(name)"
                stats = await client.stats()
                assert stats["ranking"]["weighers"] == []
                assert stats["ranking"]["reranks"] == 0

        asyncio.run(main())

    def test_typo_hint_key_is_invalid_context_on_the_wire(self):
        async def main():
            async with running_server() as (server, client):
                with pytest.raises(ServerError) as excinfo:
                    # Straight to the wire: the client-side constructor
                    # would reject the typo before sending.
                    await client._request(
                        "POST", "/v1/complete",
                        {"scene": CONTEXT_SCENE,
                         "context": {"reciever_type": "demo.Temp"}})
                assert excinfo.value.code == "invalid_context"

        asyncio.run(main())

    def test_stream_with_context_matches_unary_order(self):
        async def main():
            async with running_server() as (server, client):
                context = {"receiver_type": "demo.Temp"}
                unary = await client.complete(scene=CONTEXT_SCENE,
                                              context=context)
                chunks = []
                async for chunk in client.complete_stream(
                        scene=CONTEXT_SCENE, context=context):
                    chunks.append(chunk)
                done = chunks[-1]
                assert done["chunk"] == "done"
                streamed = [c["code"] for c in chunks
                            if c["chunk"] == "snippet"]
                assert streamed == \
                    [s["code"] for s in unary["snippets"]]
                assert done["reranked"] is True
                assert done["cache_hit"] is True    # unary warmed it

        asyncio.run(main())

    def test_project_weights_config_feeds_the_ranking_stage(self, tmp_path):
        from repro.corpus.mining import ProjectWeightTables
        from repro.corpus.stats import FrequencyTable

        weights = tmp_path / "weights.json"
        ProjectWeightTables(
            projects={"demo": FrequencyTable({"demo.Temp.make": 50})},
            global_table=FrequencyTable({"demo.Temp.make": 50}),
        ).save(str(weights))

        async def main():
            async with running_server(
                    project_weights_path=str(weights)) as (server, client):
                registered = await client.register_scene(CONTEXT_SCENE,
                                                         name="demo/edit")
                served = await client.complete(registered["scene_id"])
                # The mined project calls Temp.make: it now outranks the
                # constructor even without any per-query hint.
                assert served["snippets"][0]["code"] == "name.Temp.make()"
                stats = await client.stats()
                assert stats["ranking"]["adjustments"]["project_freq"] >= 1

        asyncio.run(main())

    def test_hinted_ranks_stable_across_restart(self, tmp_path):
        """The snapshot holds base results; a respawned replica re-ranks
        them to the same hinted order the first life served."""
        snapshot = str(tmp_path / "results.snapshot")
        context = {"receiver_type": "demo.Temp"}

        async def first_life():
            async with running_server(
                    snapshot_path=snapshot) as (server, client):
                served = await client.complete(scene=CONTEXT_SCENE,
                                               context=context)
                for _ in range(200):
                    if server.metrics.snapshots_saved > 0:
                        break
                    await asyncio.sleep(0.02)
                assert server.metrics.snapshots_saved > 0
                return served

        async def second_life(first):
            async with running_server(
                    snapshot_path=snapshot) as (server, client):
                warm = await client.complete(scene=CONTEXT_SCENE,
                                             context=context)
                assert warm["cache_hit"] is True
                assert warm["reranked"] is True
                assert warm["snippets"] == first["snippets"]

        first = asyncio.run(first_life())
        asyncio.run(second_life(first))


class TestClientErrorPaths:
    def test_connection_refused(self):
        async def main():
            client = AsyncCompletionClient("127.0.0.1", 1)   # nothing there
            with pytest.raises(ClientConnectionError):
                await client.healthz()
            await client.close()

        asyncio.run(main())

    def test_stale_pooled_connection_retries_transparently(self):
        async def main():
            async with running_server() as (server, client):
                await client.healthz()      # leaves a pooled connection
                assert client._idle
                for _reader, writer in client._idle:
                    writer.transport.abort()   # simulate a dead socket
                await asyncio.sleep(0.05)
                health = await client.healthz()
                assert health["status"] == "ok"

        asyncio.run(main())

    def test_unknown_path_and_wrong_method(self):
        async def main():
            async with running_server() as (server, client):
                with pytest.raises(ServerError) as excinfo:
                    await client._request("GET", "/v1/nope")
                assert excinfo.value.code == "not_found"
                with pytest.raises(ServerError) as excinfo:
                    await client._request("GET", "/v1/complete")
                assert excinfo.value.code == "bad_request"

        asyncio.run(main())

    def test_unknown_paths_share_one_metrics_bucket(self):
        async def main():
            async with running_server() as (server, client):
                for index in range(5):
                    with pytest.raises(ServerError):
                        await client._request("GET", f"/scan/{index}")
                requests = (await client.stats())["server"]["requests"]
                assert requests["other"] == 5
                assert not any(key.startswith("GET /scan") for key in
                               requests)

        asyncio.run(main())

    def test_malformed_json_body_is_bad_request(self):
        async def main():
            async with running_server() as (server, client):
                reader, writer = await asyncio.open_connection(server.host,
                                                               server.port)
                body = b"{not json"
                writer.write(
                    b"POST /v1/complete HTTP/1.1\r\n"
                    b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                    b"\r\n" + body)
                await writer.drain()
                status_line = await reader.readline()
                assert b"400" in status_line
                writer.close()

        asyncio.run(main())

    def test_oversized_body_gets_413_not_a_reset(self):
        async def main():
            async with running_server() as (server, client):
                reader, writer = await asyncio.open_connection(server.host,
                                                               server.port)
                writer.write(b"POST /v1/complete HTTP/1.1\r\n"
                             b"Content-Length: 999999999\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                assert b"413" in status_line
                writer.close()

        asyncio.run(main())

    def test_garbled_request_line_gets_400(self):
        async def main():
            async with running_server() as (server, client):
                reader, writer = await asyncio.open_connection(server.host,
                                                               server.port)
                writer.write(b"NONSENSE\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                assert b"400" in status_line
                writer.close()

        asyncio.run(main())

    def test_wrong_method_on_known_path_is_405(self):
        async def main():
            async with running_server() as (server, client):
                reader, writer = await asyncio.open_connection(server.host,
                                                               server.port)
                writer.write(b"GET /v1/complete HTTP/1.1\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                assert b"405" in status_line
                writer.close()

        asyncio.run(main())

    def test_unparsable_scene_is_scene_error(self):
        async def main():
            async with running_server() as (server, client):
                with pytest.raises(ServerError) as excinfo:
                    await client.register_scene("local broken :\n")
                assert excinfo.value.code == "scene_error"
                assert excinfo.value.status == 422

        asyncio.run(main())

    def test_bad_goal_type_is_bad_request(self):
        async def main():
            async with running_server() as (server, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                with pytest.raises(ServerError) as excinfo:
                    await client.complete(scene_id, goal="-> ->")
                assert excinfo.value.code == "bad_request"

        asyncio.run(main())

    def test_scene_without_goal_needs_explicit_goal(self):
        async def main():
            async with running_server() as (server, client):
                with pytest.raises(ServerError) as excinfo:
                    await client.complete(scene="local x : A\n")
                assert "goal" in str(excinfo.value)

        asyncio.run(main())


class TestGcTuning:
    def test_stats_expose_gc_section_untuned(self):
        async def main():
            async with running_server() as (server, client):
                stats = await client.stats()
                gc_stats = stats["gc"]
                assert gc_stats["tuned"] is False
                assert len(gc_stats["thresholds"]) == 3
                assert len(gc_stats["counts"]) == 3
                assert gc_stats["frozen"] >= 0
                simple = stats["core"]["simple_types"]
                assert simple["ids_assigned"] >= simple["size"] >= 0

        asyncio.run(main())

    def test_gc_tune_applies_thresholds_and_freezes_scenes(self):
        import gc

        before = gc.get_threshold()
        try:
            async def main():
                async with running_server(
                        gc_tune=True,
                        gc_thresholds=(40_000, 20, 20)) as (server, client):
                    await client.register_scene(SCENE)
                    # The freeze runs on the executor; wait for it.
                    for _ in range(100):
                        if gc.get_freeze_count() > 0:
                            break
                        await asyncio.sleep(0.02)
                    stats = await client.stats()
                    assert stats["gc"]["tuned"] is True
                    assert stats["gc"]["thresholds"] == [40_000, 20, 20]
                    assert stats["gc"]["frozen"] > 0
                    # Serving still works with a frozen heap.
                    result = await client.complete(scene=SCENE)
                    assert result["snippets"]

            asyncio.run(main())
        finally:
            gc.set_threshold(*before)
            gc.unfreeze()

    def test_gc_settle_freezes_and_is_repeatable(self):
        import gc

        try:
            AsyncCompletionServer._gc_settle()
            first = gc.get_freeze_count()
            assert first > 0  # the settle actually froze the live heap
            AsyncCompletionServer._gc_settle()
            assert gc.get_freeze_count() > 0  # repeat settles stay frozen
        finally:
            gc.unfreeze()
