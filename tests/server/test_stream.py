"""Protocol v2 over real sockets: NDJSON streaming and /v1/edit-scene.

Reuses the ephemeral-port server pattern from ``test_server``; every
test boots a real :class:`AsyncCompletionServer` and talks through
:class:`AsyncCompletionClient`.
"""

import asyncio
import contextlib

import pytest

from repro.server.client import (AsyncCompletionClient, SceneNotFoundError,
                                 ServerError)
from repro.server.server import AsyncCompletionServer, ServerConfig

SCENE = """
subtype InputStreamReader <: Reader
subtype BufferedReader <: Reader
local url : URL
imported java.net.URL.openStream : URL -> InputStream \
[freq=96] [style=method] [display=openStream]
imported java.io.InputStreamReader.new : InputStream -> InputStreamReader \
[freq=133] [style=constructor] [display=InputStreamReader]
imported java.io.BufferedReader.new : Reader -> BufferedReader \
[freq=161] [style=constructor] [display=BufferedReader]
goal BufferedReader
"""

ADD_OP = {"op": "add", "decl": "local charset_name : String"}
REMOVE_OP = {"op": "remove", "name": "charset_name"}


@contextlib.asynccontextmanager
async def running_server(**config_overrides):
    config = ServerConfig(port=0, **config_overrides)
    server = AsyncCompletionServer(config=config)
    await server.start()
    client = AsyncCompletionClient(server.host, server.port)
    try:
        yield server, client
    finally:
        await client.close()
        await server.close()


async def _collect(client, scene_id, **kwargs):
    chunks = []
    async for chunk in client.complete_stream(scene_id, **kwargs):
        chunks.append(chunk)
    return chunks


class TestStreaming:
    def test_chunk_framing_rank_order_and_weight_monotonicity(self):
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE, name="reader")
                chunks = await _collect(client, registered["scene_id"], n=5)

                assert [c["chunk"] for c in chunks[:-1]] == \
                    ["snippet"] * (len(chunks) - 1)
                assert chunks[-1]["chunk"] == "done"
                snippets = chunks[:-1]
                assert [c["rank"] for c in snippets] == \
                    list(range(1, len(snippets) + 1))
                weights = [c["weight"] for c in snippets]
                assert weights == sorted(weights)

                done = chunks[-1]
                assert done["cache_hit"] is False
                assert done["scene_id"] == registered["scene_id"]
                # The done chunk is the self-check: the streamed prefix
                # must be exactly its snippet list.
                assert [{"rank": c["rank"], "code": c["code"],
                         "weight": c["weight"]} for c in snippets] == \
                    [{"rank": s["rank"], "code": s["code"],
                      "weight": s["weight"]} for s in done["snippets"]]
        asyncio.run(main())

    def test_warm_stream_replays_the_cached_result(self):
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE)
                cold = await _collect(client, registered["scene_id"], n=4)
                warm = await _collect(client, registered["scene_id"], n=4)
                assert warm[-1]["cache_hit"] is True
                assert warm[:-1] == cold[:-1]
        asyncio.run(main())

    def test_stream_and_batch_agree(self):
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE)
                chunks = await _collect(client, registered["scene_id"], n=4)
                batch = await client.complete(registered["scene_id"], n=4)
                assert chunks[-1]["snippets"] == batch["snippets"]
        asyncio.run(main())

    def test_unknown_scene_fails_before_the_stream_starts(self):
        async def main():
            async with running_server() as (_, client):
                with pytest.raises(SceneNotFoundError):
                    await _collect(client, "scn_feedfacedeadbeef")
        asyncio.run(main())

    def test_stream_metrics(self):
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE)
                first = await _collect(client, registered["scene_id"], n=3)
                second = await _collect(client, registered["scene_id"], n=3)
                stats = await client.stats()
                assert stats["server"]["streams"] == 2
                assert stats["server"]["stream_chunks"] == \
                    len(first) + len(second)
        asyncio.run(main())


class TestEditScene:
    def test_add_and_remove_yield_new_content_identity(self):
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE, name="reader")
                edited = await client.edit_scene(registered["scene_id"],
                                                 [ADD_OP])
                assert edited["scene_id"] != registered["scene_id"]
                assert edited["previous_scene_id"] == registered["scene_id"]
                assert edited["added"] == ["charset_name"]
                assert edited["removed"] == []
                assert edited["reused"] is False
                assert edited["declarations"] == \
                    registered["declarations"] + 1
        asyncio.run(main())

    def test_round_trip_edit_reattaches_the_original_scene(self):
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE)
                baseline = await client.complete(registered["scene_id"], n=4)
                edited = await client.edit_scene(registered["scene_id"],
                                                 [ADD_OP])
                back = await client.edit_scene(edited["scene_id"],
                                               [REMOVE_OP])
                assert back["scene_id"] == registered["scene_id"]
                assert back["reused"] is True
                assert back["cached"] is True
                replay = await client.complete(registered["scene_id"], n=4)
                assert replay["cache_hit"] is True
                assert replay["snippets"] == baseline["snippets"]
        asyncio.run(main())

    def test_edited_text_re_registers_to_the_same_scene(self):
        """The response's canonical text is the journal/replay currency:
        registering it on a fresh server must rebuild the same
        content-derived identity and rankings."""
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE)
                edited = await client.edit_scene(registered["scene_id"],
                                                 [ADD_OP])
                ranked = await client.complete(edited["scene_id"], n=4)
            async with running_server() as (_, fresh_client):
                replayed = await fresh_client.register_scene(edited["text"])
                assert replayed["scene_id"] == edited["scene_id"]
                again = await fresh_client.complete(replayed["scene_id"],
                                                    n=4)
                assert again["snippets"] == ranked["snippets"]
        asyncio.run(main())

    def test_streaming_an_edited_scene(self):
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE)
                edited = await client.edit_scene(registered["scene_id"],
                                                 [ADD_OP])
                chunks = await _collect(client, edited["scene_id"], n=4)
                assert chunks[-1]["scene_id"] == edited["scene_id"]
                assert chunks[-1]["cache_hit"] is False
        asyncio.run(main())

    def test_edit_metrics(self):
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE)
                edited = await client.edit_scene(registered["scene_id"],
                                                 [ADD_OP])
                await client.edit_scene(edited["scene_id"], [REMOVE_OP])
                stats = await client.stats()
                assert stats["server"]["scenes_edited"] == 2
                assert stats["server"]["edits_reused"] == 1
        asyncio.run(main())

    def test_unknown_scene(self):
        async def main():
            async with running_server() as (_, client):
                with pytest.raises(SceneNotFoundError):
                    await client.edit_scene("scn_feedfacedeadbeef",
                                            [ADD_OP])
        asyncio.run(main())

    def test_bad_delta_is_a_scene_error_and_applies_nothing(self):
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE)
                with pytest.raises(ServerError) as excinfo:
                    await client.edit_scene(registered["scene_id"],
                                            [{"op": "remove",
                                              "name": "ghost"}])
                assert excinfo.value.code == "scene_error"
                stats = await client.stats()
                assert stats["server"]["scenes_edited"] == 0
                assert stats["scenes"]["count"] == 1
        asyncio.run(main())


class TestProtocolVersionGate:
    def test_mismatched_version_is_rejected(self):
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE)
                # The client injects the current version unless the
                # payload pins its own — pin v1 to probe the gate.
                with pytest.raises(ServerError) as excinfo:
                    await client._request(
                        "POST", "/v1/complete",
                        {"v": 1, "scene_id": registered["scene_id"]})
                assert excinfo.value.code == "unsupported_version"
                assert excinfo.value.status == 400
        asyncio.run(main())

    def test_versionless_payloads_still_serve(self):
        async def main():
            async with running_server() as (_, client):
                registered = await client.register_scene(SCENE)
                served = await client._request(
                    "POST", "/v1/complete",
                    {"scene_id": registered["scene_id"]})
                assert served["inhabited"] is True
        asyncio.run(main())
