"""Scene lifecycle round trip: release, re-register, byte-identical serve.

The regression this pins down: an explicit ``release-scene`` must purge
the scene's engine state (results, refcounts) *completely* enough that
re-registering the identical text rebuilds the same content-derived
identity and the same rankings — and *cleanly* enough that every counter
(registry releases, server metrics, fingerprint refcounts, cache stats)
reconciles afterwards.
"""

import asyncio
import contextlib

import pytest

from repro.server.client import AsyncCompletionClient, SceneNotFoundError
from repro.server.server import AsyncCompletionServer, ServerConfig

SCENE = """
subtype FileWriter <: Writer
local path : String
imported java.io.FileWriter.new : String -> FileWriter \
[freq=118] [style=constructor] [display=FileWriter]
imported java.io.PrintWriter.new : Writer -> PrintWriter \
[freq=102] [style=constructor] [display=PrintWriter]
goal PrintWriter
"""


@contextlib.asynccontextmanager
async def running_server(**config_overrides):
    config = ServerConfig(port=0, **config_overrides)
    server = AsyncCompletionServer(config=config)
    await server.start()
    client = AsyncCompletionClient(server.host, server.port)
    try:
        yield server, client
    finally:
        await client.close()
        await server.close()


class TestReleaseRoundTrip:
    def test_release_then_reregister_is_byte_identical(self):
        async def main():
            async with running_server() as (server, client):
                first = await client.register_scene(SCENE, name="writer")
                baseline = await client.complete(first["scene_id"], n=5)
                assert baseline["cache_hit"] is False

                released = await client.release_scene(first["scene_id"])
                assert released["released"] is True
                with pytest.raises(SceneNotFoundError):
                    await client.complete(first["scene_id"])

                second = await client.register_scene(SCENE, name="writer")
                assert second["scene_id"] == first["scene_id"]
                assert second["cached"] is False    # truly rebuilt

                replay = await client.complete(second["scene_id"], n=5)
                # The release purged the result cache, so this is a real
                # re-synthesis — and it must land on identical bytes.
                assert replay["cache_hit"] is False
                assert replay["snippets"] == baseline["snippets"]

                warm = await client.complete(second["scene_id"], n=5)
                assert warm["cache_hit"] is True
                assert warm["snippets"] == baseline["snippets"]
        asyncio.run(main())

    def test_counters_reconcile_after_the_round_trip(self):
        async def main():
            async with running_server() as (server, client):
                first = await client.register_scene(SCENE)
                await client.complete(first["scene_id"])
                await client.release_scene(first["scene_id"])
                await client.register_scene(SCENE)
                await client.complete(first["scene_id"])

                assert server.registry.releases == 1
                assert server.registry.evictions == 0
                # Exactly one live fingerprint ref: the re-registration.
                refs = server.registry._fingerprint_refs
                assert list(refs.values()) == [1]

                stats = await client.stats()
                assert stats["server"]["scenes_released"] == 1
                assert stats["server"]["scenes_registered"] == 2
                assert stats["server"]["completions"] == 2
                # Both completions synthesized: the release dropped the
                # cached result along with the scene.
                assert stats["server"]["synthesized"] == 2
                assert stats["server"]["cache_hits"] == 0
                assert stats["scenes"]["count"] == 1
        asyncio.run(main())

    def test_release_is_idempotent(self):
        async def main():
            async with running_server() as (server, client):
                first = await client.register_scene(SCENE)
                released = await client.release_scene(first["scene_id"])
                assert released["released"] is True
                again = await client.release_scene(first["scene_id"])
                assert again["released"] is False
                assert server.registry.releases == 1
        asyncio.run(main())

    def test_release_after_edit_keeps_the_sibling_servable(self):
        """Releasing the pre-edit scene must not nuke the edited scene's
        state: the two are distinct content (distinct fingerprints), so
        the purge is scoped to the released identity only."""
        async def main():
            async with running_server() as (server, client):
                origin = await client.register_scene(SCENE)
                edited = await client.edit_scene(
                    origin["scene_id"],
                    [{"op": "add", "decl": "local banner : String"}])
                ranked = await client.complete(edited["scene_id"], n=4)

                await client.release_scene(origin["scene_id"])

                replay = await client.complete(edited["scene_id"], n=4)
                assert replay["cache_hit"] is True
                assert replay["snippets"] == ranked["snippets"]
                assert len(server.registry._fingerprint_refs) == 1
        asyncio.run(main())
