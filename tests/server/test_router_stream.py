"""Edit sessions and streaming through the sharded router.

The attached-backend tests pin the proxy mechanics: NDJSON framing is
preserved end to end, edits run on the backend that holds the warm
prepared state (sticky session homes beat the ring for edited ids), and
every edit lands in the journal as a plain registration of the canonical
text.  The end-to-end test is the durability acceptance path from the
issue: SIGKILL the backend owning a delta-edited scene mid-session and
assert journal replay restores the edited state byte-identically.
"""

import asyncio
import contextlib
import hashlib

from repro.server.client import AsyncCompletionClient
from repro.server.router import CompletionRouter, RouterConfig
from repro.server.server import AsyncCompletionServer, ServerConfig

SCENE = """
subtype InputStreamReader <: Reader
subtype BufferedReader <: Reader
local url : URL
imported java.net.URL.openStream : URL -> InputStream \
[freq=96] [style=method] [display=openStream]
imported java.io.InputStreamReader.new : InputStream -> InputStreamReader \
[freq=133] [style=constructor] [display=InputStreamReader]
imported java.io.BufferedReader.new : Reader -> BufferedReader \
[freq=161] [style=constructor] [display=BufferedReader]
goal BufferedReader
"""

ADD_OP = {"op": "add", "decl": "local charset_name : String"}


@contextlib.asynccontextmanager
async def attached_router(n=2, **router_overrides):
    """A router over *n* in-process backends (no subprocesses)."""
    backends = []
    for _ in range(n):
        server = AsyncCompletionServer(config=ServerConfig(port=0))
        await server.start()
        backends.append(server)
    router = CompletionRouter(RouterConfig(
        port=0, attach=tuple(f"{s.host}:{s.port}" for s in backends),
        **router_overrides))
    await router.start()
    client = AsyncCompletionClient(router.host, router.port)
    try:
        yield router, backends, client
    finally:
        await client.close()
        await router.close()
        for server in backends:
            await server.close()


def _backend_for(router, backends, scene_id):
    """The in-process server the router would use for *scene_id*."""
    backend = router._owner(scene_id)
    for server in backends:
        if (server.host, server.port) == (backend.host, backend.port):
            return server
    raise AssertionError("router routed to an unknown backend")


async def _collect(client, scene_id, **kwargs):
    chunks = []
    async for chunk in client.complete_stream(scene_id, **kwargs):
        chunks.append(chunk)
    return chunks


class TestRoutedStreaming:
    def test_stream_framing_survives_the_proxy(self):
        async def main():
            async with attached_router() as (router, backends, client):
                registered = await client.register_scene(SCENE)
                chunks = await _collect(client, registered["scene_id"], n=4)
                assert [c["chunk"] for c in chunks[:-1]] == \
                    ["snippet"] * (len(chunks) - 1)
                assert chunks[-1]["chunk"] == "done"
                assert [c["rank"] for c in chunks[:-1]] == \
                    list(range(1, len(chunks)))
                assert router.streams_proxied == 1

                # Proxied bytes must equal what the owning backend sent.
                owner = _backend_for(router, backends,
                                     registered["scene_id"])
                direct_client = AsyncCompletionClient(owner.host, owner.port)
                try:
                    direct = await _collect(direct_client,
                                            registered["scene_id"], n=4)
                finally:
                    await direct_client.close()
                assert direct[-1]["cache_hit"] is True
                assert direct[:-1] == chunks[:-1]
        asyncio.run(main())

    def test_routed_stats_aggregate_stream_counters(self):
        async def main():
            async with attached_router() as (router, backends, client):
                registered = await client.register_scene(SCENE)
                chunks = await _collect(client, registered["scene_id"], n=3)
                stats = await client.stats()
                assert stats["router"]["streams_proxied"] == 1
                assert stats["server"]["streams"] == 1
                assert stats["server"]["stream_chunks"] == len(chunks)
        asyncio.run(main())


class TestRoutedEditSessions:
    def test_edit_journals_the_canonical_text(self):
        async def main():
            async with attached_router() as (router, backends, client):
                registered = await client.register_scene(SCENE)
                edited = await client.edit_scene(registered["scene_id"],
                                                 [ADD_OP])
                assert edited["added"] == ["charset_name"]
                digest = hashlib.sha256(
                    edited["text"].encode("utf-8")).hexdigest()
                entry = router.journal.lookup_digest(digest)
                assert entry is not None
                assert entry.scene_id == edited["scene_id"]
                assert router.edits == 1
                stats = await client.stats()
                assert stats["router"]["edits"] == 1
                assert stats["router"]["session_homes"] == 1
        asyncio.run(main())

    def test_edited_scene_sticks_to_the_editing_backend(self):
        """The ring hashes the *new* content id, which may route away
        from the backend holding the warm incremental state; the sticky
        session home must win so follow-up queries stay warm."""
        async def main():
            async with attached_router() as (router, backends, client):
                registered = await client.register_scene(SCENE)
                origin_owner = _backend_for(router, backends,
                                            registered["scene_id"])
                edited = await client.edit_scene(registered["scene_id"],
                                                 [ADD_OP])
                home = _backend_for(router, backends, edited["scene_id"])
                assert home is origin_owner

                served = await client.complete(edited["scene_id"], n=4)
                assert served["scene_id"] == edited["scene_id"]
                # The completion ran on the sticky home: its metrics moved.
                assert home.metrics.completions >= 1
        asyncio.run(main())

    def test_round_trip_edit_is_warm_through_the_router(self):
        async def main():
            async with attached_router() as (router, backends, client):
                registered = await client.register_scene(SCENE)
                baseline = await client.complete(registered["scene_id"], n=4)
                edited = await client.edit_scene(registered["scene_id"],
                                                 [ADD_OP])
                back = await client.edit_scene(
                    edited["scene_id"],
                    [{"op": "remove", "name": "charset_name"}])
                assert back["scene_id"] == registered["scene_id"]
                assert back["reused"] is True
                replay = await client.complete(registered["scene_id"], n=4)
                assert replay["cache_hit"] is True
                assert replay["snippets"] == baseline["snippets"]
        asyncio.run(main())


class TestRouterEditSessionEndToEnd:
    def test_killing_the_session_backend_mid_edit_session(self, tmp_path):
        """SIGKILL the backend holding a delta-edited scene: the next
        query fails over to the sibling replica (journal re-teach
        restores the edited state there), the dead backend respawns in
        the background, and the session keeps editing with identical
        rankings."""
        async def main():
            router = CompletionRouter(RouterConfig(
                port=0, backends=2,
                journal_path=str(tmp_path / "journal.jsonl"),
                snapshot_dir=str(tmp_path / "snapshots")))
            await router.start()
            client = AsyncCompletionClient(router.host, router.port,
                                           timeout=120.0)
            try:
                registered = await client.register_scene(SCENE,
                                                         name="session")
                edited = await client.edit_scene(registered["scene_id"],
                                                 [ADD_OP])
                cold = await client.complete(edited["scene_id"], n=5)
                assert cold["scene_id"] == edited["scene_id"]

                owner = router._owner(edited["scene_id"])
                owner.process.kill()
                owner.process.wait()

                served = await client.complete(edited["scene_id"], n=5)
                assert served["snippets"] == cold["snippets"], (
                    "journal replay must restore the delta-edited state")
                assert served["scene_id"] == edited["scene_id"]
                assert "degraded" not in served, (
                    "the sibling replica should serve full-fidelity")

                # The dead owner respawns in the background; wait for it.
                for _ in range(400):
                    if router.restarts >= 1 and all(
                            backend.healthy
                            for backend in router.backends.values()):
                        break
                    await asyncio.sleep(0.05)
                assert router.restarts >= 1

                # The session continues: another edit on the replayed
                # state, and a net-no-op removal lands back on the
                # original registered content.
                back = await client.edit_scene(
                    edited["scene_id"],
                    [{"op": "remove", "name": "charset_name"}])
                assert back["scene_id"] == registered["scene_id"]

                health = await client.healthz()
                assert all(backend["healthy"]
                           for backend in health["backends"])
            finally:
                await client.close()
                await router.close()

        asyncio.run(main())
