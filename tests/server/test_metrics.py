"""Latency windows and serving counters."""

import pytest

from repro.server.metrics import LatencyWindow, ServerMetrics


class TestLatencyWindow:
    def test_empty_window(self):
        window = LatencyWindow()
        assert window.percentile(0.5) is None
        snapshot = window.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p95_ms"] is None

    def test_percentiles_on_known_data(self):
        window = LatencyWindow()
        for ms in range(1, 101):            # 1..100 ms
            window.record(ms / 1000)
        assert window.percentile(0.50) == pytest.approx(0.051)
        assert window.percentile(0.95) == pytest.approx(0.096)
        snapshot = window.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["max_ms"] == pytest.approx(100.0)
        assert snapshot["mean_ms"] == pytest.approx(50.5)

    def test_window_is_bounded_but_count_is_lifetime(self):
        window = LatencyWindow(window=10)
        for _ in range(50):
            window.record(0.001)
        for _ in range(10):
            window.record(1.0)              # the window now holds only these
        assert window.count == 60
        assert window.percentile(0.5) == pytest.approx(1.0)

    def test_max_ages_out_with_the_window(self):
        window = LatencyWindow(window=10)
        window.record(5.0)                  # cold-start spike
        for _ in range(10):
            window.record(0.001)            # pushes the spike out
        assert window.snapshot()["max_ms"] == pytest.approx(1.0)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            LatencyWindow(window=0)


class TestServerMetrics:
    def test_completion_accounting(self):
        metrics = ServerMetrics()
        metrics.record_completion(0.010, cache_hit=True, coalesced=False,
                                  partial=False)
        metrics.record_completion(0.020, cache_hit=False, coalesced=True,
                                  partial=False)
        metrics.record_completion(0.500, cache_hit=False, coalesced=False,
                                  partial=True)
        assert metrics.completions == 3
        assert metrics.cache_hits == 1
        assert metrics.coalesced == 1
        assert metrics.deadline_partial == 1
        # Warm window saw the hit and the coalesced join, not the cold run.
        assert metrics.latency["warm"].count == 2
        assert metrics.latency["complete"].count == 3

    def test_queue_gauge_and_peak(self):
        metrics = ServerMetrics()
        metrics.enter_queue()
        metrics.enter_queue()
        metrics.leave_queue()
        metrics.enter_queue()
        assert metrics.queue_depth == 2
        assert metrics.queue_peak == 2

    def test_snapshot_shape(self):
        metrics = ServerMetrics()
        metrics.requests["POST /v1/complete"] += 1
        metrics.record_synthesis(0.005)
        metrics.record_error("bad_request")
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == {"POST /v1/complete": 1}
        assert snapshot["synthesized"] == 1
        assert snapshot["errors"] == {"bad_request": 1}
        assert snapshot["uptime_s"] >= 0
        assert set(snapshot["latency"]) == {"complete", "warm", "synthesis"}
