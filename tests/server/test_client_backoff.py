"""Client-side 429 handling: full-jitter exponential backoff.

Everything runs against a fake transport (a stubbed ``_request_once``)
with a recorded ``sleep`` and a seeded RNG — no sockets, no wall clock.
"""

import asyncio
import random

import pytest

from repro.server.client import (AsyncCompletionClient, OverloadedError,
                                 jittered_backoff_s)


class TestJitteredBackoff:
    def test_delay_stays_inside_the_exponential_window(self):
        rng = random.Random(7)
        for attempt in range(12):
            window = min(2.0, 0.05 * (2 ** attempt))
            for _ in range(50):
                delay = jittered_backoff_s(attempt, base=0.05, cap=2.0,
                                           rng=rng)
                assert 0.0 <= delay <= window

    def test_delays_are_actually_jittered(self):
        """The whole point: two draws for the same attempt differ, so a
        rejected fleet does not retry in lockstep."""
        rng = random.Random(7)
        draws = {jittered_backoff_s(4, rng=rng) for _ in range(20)}
        assert len(draws) > 1

    def test_cap_bounds_late_attempts(self):
        rng = random.Random(7)
        for _ in range(50):
            assert jittered_backoff_s(30, base=0.05, cap=2.0,
                                      rng=rng) <= 2.0

    def test_mean_grows_with_attempt(self):
        """Later attempts back off longer on average (exponential part)."""
        rng = random.Random(7)

        def mean(attempt):
            return sum(jittered_backoff_s(attempt, rng=rng)
                       for _ in range(400)) / 400

        assert mean(0) < mean(2) < mean(5)

    def test_rejects_negative_attempt(self):
        with pytest.raises(ValueError, match="attempt"):
            jittered_backoff_s(-1)


class _Overloaded(OverloadedError):
    def __init__(self):
        super().__init__("overloaded", "busy", 429)


def _flaky_client(failures: int, *, retries: int,
                  rng=None) -> tuple[AsyncCompletionClient, dict]:
    """A client whose transport 429s *failures* times, then succeeds.

    The injected ``sleep`` records delays instead of waiting, so the
    whole retry dance is instantaneous and deterministic.
    """
    recorded = {"sleeps": [], "calls": 0}

    async def fake_sleep(seconds):
        recorded["sleeps"].append(seconds)

    client = AsyncCompletionClient(
        overload_retries=retries, backoff_base_s=0.05, backoff_cap_s=2.0,
        rng=rng or random.Random(7), sleep=fake_sleep)

    async def fake_request_once(method, path, payload=None):
        recorded["calls"] += 1
        if recorded["calls"] <= failures:
            raise _Overloaded()
        return {"v": 1, "ok": True, "answer": recorded["calls"]}

    client._request_once = fake_request_once
    return client, recorded


class TestOverloadRetries:
    def test_retries_until_success_with_growing_jittered_sleeps(self):
        async def main():
            client, recorded = _flaky_client(3, retries=5)
            response = await client._request("POST", "/v1/complete", {})
            assert response["ok"] is True
            assert recorded["calls"] == 4
            assert len(recorded["sleeps"]) == 3
            for attempt, delay in enumerate(recorded["sleeps"]):
                assert 0.0 <= delay <= min(2.0, 0.05 * (2 ** attempt))

        asyncio.run(main())

    def test_exhausted_retries_raise_the_last_429(self):
        async def main():
            client, recorded = _flaky_client(10, retries=2)
            with pytest.raises(OverloadedError):
                await client._request("POST", "/v1/complete", {})
            assert recorded["calls"] == 3       # initial + 2 retries
            assert len(recorded["sleeps"]) == 2

        asyncio.run(main())

    def test_zero_retries_is_the_default_and_fails_fast(self):
        async def main():
            client, recorded = _flaky_client(1, retries=0)
            assert client.overload_retries == 0
            with pytest.raises(OverloadedError):
                await client._request("POST", "/v1/complete", {})
            assert recorded["calls"] == 1
            assert recorded["sleeps"] == []

        asyncio.run(main())

    def test_success_needs_no_sleep(self):
        async def main():
            client, recorded = _flaky_client(0, retries=5)
            response = await client._request("GET", "/healthz")
            assert response["ok"] is True
            assert recorded["sleeps"] == []

        asyncio.run(main())
