"""Resilience: breakers, retry budgets, degraded answers, admin surface.

The unit tests drive :class:`CircuitBreaker` with a fake monotonic clock
and :class:`RetryBudget`/:class:`LastKnownGood` with plain calls — no
sleeps anywhere.  The behaviour tests run the router over *attached*
in-process backends and simulate death by closing a backend's listening
socket: deterministic, timing-free, and exactly what a SIGKILL looks
like from the router's side of the wire.
"""

import asyncio
import contextlib

import pytest

from repro.server import protocol
from repro.server.client import (AsyncCompletionClient, ServerError)
from repro.server.router import (CircuitBreaker, CompletionRouter,
                                 LastKnownGood, RetryBudget, RouterConfig)
from repro.server.server import AsyncCompletionServer, ServerConfig

SCENE = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
goal File
"""

OTHER_SCENE = """
local count : Int
imported demo.Box.new : Int -> Box \
[freq=10] [style=constructor] [display=Box]
goal Box
"""


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


# -- circuit breaker ---------------------------------------------------------


class TestCircuitBreaker:
    def test_starts_closed_and_admits(self):
        breaker = CircuitBreaker(clock=FakeClock())
        assert breaker.state == "closed"
        assert breaker.allow() is True
        assert breaker.describe()["state"] == "closed"

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=2.0,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow() is False
        assert breaker.opened_total == 1
        assert breaker.last_failure_at is not None

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed", (
            "non-consecutive failures must not open the circuit")

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=2.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.allow() is False     # still cooling down
        clock.advance(2.0)
        assert breaker.allow() is True      # half-open: probe admitted
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() is True

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout_s=2.0,
                                 clock=clock)
        for _ in range(5):
            breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(2.0)
        assert breaker.allow() is True
        assert breaker.state == "half_open"
        breaker.record_failure()            # one strike in half-open
        assert breaker.state == "open"
        assert breaker.opened_total == 2
        assert breaker.allow() is False     # a fresh cooldown started

    def test_half_open_admits_exactly_one_probe(self):
        """Regression: half-open must be a *single* probe slot.

        Before the fix every caller that found the breaker half-open was
        admitted — a burst against a barely-recovered backend.  Now the
        first ``allow()`` claims the probe; concurrent callers wait for
        its verdict.
        """
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=2.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow() is True      # the probe slot
        assert breaker.state == "half_open"
        assert breaker.allow() is False     # concurrent caller: wait
        assert breaker.allow() is False
        breaker.record_failure()            # probe lost
        assert breaker.state == "open"
        assert breaker.allow() is False     # fresh cooldown started
        clock.advance(2.0)
        assert breaker.allow() is True      # next probe window
        assert breaker.allow() is False     # still one at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow(), (
            "a closed breaker admits everyone again")

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)

    def test_describe_is_json_shaped(self):
        breaker = CircuitBreaker(clock=FakeClock())
        breaker.record_failure()
        described = breaker.describe()
        assert described["consecutive_failures"] == 1
        assert described["opened_total"] == 0
        assert isinstance(described["last_failure_at"], float)


# -- retry budget ------------------------------------------------------------


class TestRetryBudget:
    def test_starts_full_and_spends_down(self):
        budget = RetryBudget(ratio=0.2, burst=2.0)
        assert budget.try_spend() is True
        assert budget.try_spend() is True
        assert budget.try_spend() is False
        assert budget.granted == 2
        assert budget.denied == 1

    def test_requests_accrue_fractional_credit(self):
        budget = RetryBudget(ratio=0.2, burst=1.0)
        assert budget.try_spend() is True   # drain the initial burst
        assert budget.try_spend() is False
        for _ in range(4):
            budget.on_request()
        assert budget.try_spend() is False  # 0.8 tokens: not yet a retry
        budget.on_request()
        assert budget.try_spend() is True   # the 5th request earns one

    def test_credit_caps_at_burst(self):
        budget = RetryBudget(ratio=1.0, burst=2.0)
        for _ in range(100):
            budget.on_request()
        assert budget.tokens == 2.0
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()

    def test_ratio_bounds_steady_state_retry_fraction(self):
        """Over a long run, grants can't exceed ratio*requests + burst."""
        budget = RetryBudget(ratio=0.2, burst=10.0)
        requests = 500
        for _ in range(requests):
            budget.on_request()
            budget.try_spend()              # every request wants a retry
        assert budget.granted <= 0.2 * requests + 10.0
        assert budget.denied == requests - budget.granted

    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="ratio"):
            RetryBudget(ratio=1.5)
        with pytest.raises(ValueError, match="burst"):
            RetryBudget(burst=0.5)


# -- last-known-good cache ---------------------------------------------------


class TestLastKnownGood:
    KEY = ("scn_1", None, None, None, None)

    def test_remember_and_get_returns_a_copy(self):
        lkg = LastKnownGood(capacity=4)
        payload = {"ok": True, "snippets": [{"code": "new File(name)"}]}
        lkg.remember(self.KEY, payload)
        served = lkg.get(self.KEY)
        assert served == payload
        served["mutated"] = True
        assert "mutated" not in lkg.get(self.KEY)
        assert lkg.hits == 2

    def test_lru_eviction_prefers_recent(self):
        lkg = LastKnownGood(capacity=2)
        keys = [("scn_a",), ("scn_b",), ("scn_c",)]
        for key in keys:
            lkg.remember(key, {"ok": True})
        assert lkg.get(keys[0]) is None     # oldest fell out
        assert lkg.get(keys[1]) is not None
        assert lkg.get(keys[2]) is not None
        assert len(lkg) == 2

    def test_purge_scene_drops_every_variant(self):
        lkg = LastKnownGood(capacity=8)
        lkg.remember(("scn_1", "goal_a"), {"ok": True})
        lkg.remember(("scn_1", "goal_b"), {"ok": True})
        lkg.remember(("scn_2", None), {"ok": True})
        assert lkg.purge_scene("scn_1") == 2
        assert lkg.get(("scn_1", "goal_a")) is None
        assert lkg.get(("scn_2", None)) is not None


# -- protocol: admin + priority ----------------------------------------------


class TestAdminProtocol:
    def test_round_trip(self):
        request = protocol.AdminBackendsRequest(action="drain",
                                                backend_id="b1")
        parsed = protocol.AdminBackendsRequest.from_payload(
            request.to_payload())
        assert parsed.action == "drain"
        assert parsed.backend_id == "b1"

    def test_rejects_unknown_action(self):
        with pytest.raises(protocol.ProtocolError, match="action"):
            protocol.AdminBackendsRequest.from_payload(
                {"v": protocol.PROTOCOL_VERSION, "action": "explode"})

    def test_drain_requires_backend_id(self):
        with pytest.raises(protocol.ProtocolError, match="backend_id"):
            protocol.AdminBackendsRequest.from_payload(
                {"v": protocol.PROTOCOL_VERSION, "action": "drain"})

    def test_address_only_valid_for_add(self):
        with pytest.raises(protocol.ProtocolError, match="address"):
            protocol.AdminBackendsRequest.from_payload(
                {"v": protocol.PROTOCOL_VERSION, "action": "remove",
                 "backend_id": "b0", "address": "127.0.0.1:1"})

    def test_priority_bounds(self):
        request = protocol.CompleteRequest.from_payload(
            {"v": protocol.PROTOCOL_VERSION, "scene_id": "scn_1",
             "priority": 0})
        assert request.priority == 0
        with pytest.raises(protocol.ProtocolError, match="priority"):
            protocol.CompleteRequest.from_payload(
                {"v": protocol.PROTOCOL_VERSION, "scene_id": "scn_1",
                 "priority": protocol.MAX_PRIORITY + 1})


# -- behaviour: failover, degradation, elasticity ----------------------------


@contextlib.asynccontextmanager
async def attached_router(n=2, **router_overrides):
    """A router over *n* in-process backends (no subprocesses).

    Closing a backend's ``AsyncCompletionServer`` makes its address
    refuse connections — the router sees exactly what a SIGKILL'd
    process looks like, without any process or timing machinery.
    """
    backends = []
    for _ in range(n):
        server = AsyncCompletionServer(config=ServerConfig(port=0))
        await server.start()
        backends.append(server)
    router = CompletionRouter(RouterConfig(
        port=0, attach=tuple(f"{s.host}:{s.port}" for s in backends),
        **router_overrides))
    await router.start()
    client = AsyncCompletionClient(router.host, router.port)
    try:
        yield router, backends, client
    finally:
        await client.close()
        await router.close()
        for server in backends:
            await server.close()


def _owner_servers(router, backends, scene_id):
    servers = []
    for owner_id in router.ring.route_n(scene_id,
                                        router.config.replication):
        backend = router.backends[owner_id]
        for server in backends:
            if (server.host, server.port) == (backend.host, backend.port):
                servers.append(server)
                break
    return servers


class TestReplicaFailover:
    def test_kill_one_replica_serves_from_sibling(self):
        """One dead replica is invisible: the sibling answers the very
        next completion, full-fidelity (not degraded)."""
        async def main():
            async with attached_router(2) as (router, backends, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                first = await client.complete(scene_id)
                assert first["inhabited"] is True

                primary = _owner_servers(router, backends, scene_id)[0]
                await primary.close()       # refuse all future connections

                served = await client.complete(scene_id)
                assert served["snippets"] == first["snippets"]
                assert "degraded" not in served
                assert router.failovers >= 1
                stats = await client.stats()
                section = stats["router"]
                assert section["failovers"] >= 1
                assert section["degraded_served"] == 0

        asyncio.run(main())

    def test_kill_during_burst_zero_errors_bounded_retries(self):
        """The timing-free e2e: a replica dies mid-burst.  Every request
        still answers full-fidelity, and the retry volume stays inside
        the budget envelope (granted <= ratio*requests + burst)."""
        async def main():
            async with attached_router(2) as (router, backends, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                other = (await client.register_scene(
                    OTHER_SCENE))["scene_id"]
                await client.complete(scene_id)
                await client.complete(other)

                primary = _owner_servers(router, backends, scene_id)[0]
                total = 40
                for index in range(total):
                    if index == 5:
                        await primary.close()
                    served = await client.complete(
                        scene_id if index % 2 else other)
                    assert served.get("ok", True) is not False
                    assert "degraded" not in served

                budget = router.retry_budget
                ceiling = (budget.ratio * (total + 4) + budget.burst)
                assert budget.granted <= ceiling
                assert router.failovers >= 1
                # The very first post-kill contact marked the corpse
                # unhealthy; candidate ordering then routes around it,
                # so failovers stay far below one per post-kill request
                # (every one beyond the first paid a budget token).
                dead = router.backends[router.ring.route(scene_id)]
                assert dead.healthy is False
                assert dead.breaker.consecutive_failures >= 1
                assert router.failovers <= budget.granted + 1

        asyncio.run(main())

    def test_all_replicas_down_serves_degraded_from_lkg(self):
        async def main():
            # burst=1: the budget runs dry before the breakers open, so
            # this test also proves exhaustion degrades instead of 5xx.
            async with attached_router(
                    2, retry_budget_burst=1.0) as (router, backends,
                                                   client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                baseline = await client.complete(scene_id)
                assert baseline["inhabited"] is True

                for server in backends:
                    await server.close()    # every replica is gone

                served = await client.complete(scene_id)
                assert served["degraded"] is True
                assert served["snippets"] == baseline["snippets"]
                assert router.degraded_served == 1

                # The degraded path keeps answering while the budget
                # drains — and keeps answering after it's empty, too.
                for _ in range(5):
                    again = await client.complete(scene_id)
                    assert again["degraded"] is True
                assert router.retry_budget.denied > 0

        asyncio.run(main())

    def test_all_down_without_lkg_is_an_error_not_a_hang(self):
        """A never-completed query shape has nothing cached: with every
        replica down the client sees a clean error envelope."""
        async def main():
            async with attached_router(2) as (router, backends, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                for server in backends:
                    await server.close()
                with pytest.raises(ServerError):
                    await client.complete(scene_id)

        asyncio.run(main())

    def test_degraded_stream_replays_cached_snippets(self):
        async def main():
            async with attached_router(2) as (router, backends, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                baseline = await client.complete(scene_id)
                for server in backends:
                    await server.close()

                chunks = []
                async for chunk in client.complete_stream(scene_id):
                    chunks.append(chunk)
                done = chunks[-1]
                assert done["chunk"] == "done"
                assert done["degraded"] is True
                streamed = [c for c in chunks if c["chunk"] == "snippet"]
                assert ([s["code"] for s in streamed]
                        == [s["code"] for s in baseline["snippets"]])

        asyncio.run(main())


class TestAdminElasticity:
    def test_add_by_address_replays_and_serves(self):
        async def main():
            async with attached_router(2) as (router, backends, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                await client.complete(scene_id)

                extra = AsyncCompletionServer(config=ServerConfig(port=0))
                await extra.start()
                try:
                    added = await client.admin_backend(
                        "add", address=f"{extra.host}:{extra.port}")
                    assert added["backend"]["healthy"] is True
                    roster = await client.admin_backends()
                    assert len(roster["backends"]) == 3
                    assert roster["replication"] == 2

                    # The new backend owns a slice of the ring; scenes
                    # whose replica set now includes it were replayed.
                    new_id = added["backend"]["backend_id"]
                    owners = router.ring.route_n(
                        scene_id, router.config.replication)
                    if new_id in owners:
                        assert added["replayed"] >= 1
                    served = await client.complete(scene_id)
                    assert "degraded" not in served
                finally:
                    await extra.close()

        asyncio.run(main())

    def test_drain_moves_scenes_and_keeps_serving(self):
        async def main():
            async with attached_router(3) as (router, backends, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                baseline = await client.complete(scene_id)

                victim_id = router.ring.route(scene_id)
                drained = await client.admin_backend(
                    "drain", backend_id=victim_id)
                assert drained["backend"]["draining"] is True
                assert victim_id not in router.ring.backends
                assert victim_id in router.backends   # still attached

                served = await client.complete(scene_id)
                assert served["snippets"] == baseline["snippets"]
                assert "degraded" not in served
                assert router.drains == 1

        asyncio.run(main())

    def test_remove_tears_down_and_survivors_serve(self):
        async def main():
            async with attached_router(3) as (router, backends, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                baseline = await client.complete(scene_id)

                victim_id = router.ring.route(scene_id)
                removed = await client.admin_backend(
                    "remove", backend_id=victim_id)
                assert removed["removed"] is True
                assert victim_id not in router.backends
                roster = await client.admin_backends()
                assert len(roster["backends"]) == 2

                served = await client.complete(scene_id)
                assert served["snippets"] == baseline["snippets"]
                assert "degraded" not in served

        asyncio.run(main())

    def test_cannot_drain_the_last_backend(self):
        async def main():
            async with attached_router(1) as (router, backends, client):
                (backend_id,) = router.backends
                with pytest.raises(ServerError, match="last backend"):
                    await client.admin_backend("drain",
                                               backend_id=backend_id)

        asyncio.run(main())

    def test_unknown_backend_is_not_found(self):
        async def main():
            async with attached_router(2) as (router, backends, client):
                with pytest.raises(ServerError, match="unknown backend"):
                    await client.admin_backend("drain", backend_id="b99")

        asyncio.run(main())

    def test_attach_mode_add_requires_address(self):
        async def main():
            async with attached_router(2) as (router, backends, client):
                with pytest.raises(ServerError, match="address"):
                    await client.admin_backend("add")

        asyncio.run(main())


class TestBreakerObservability:
    def test_healthz_and_stats_surface_breaker_state(self):
        async def main():
            async with attached_router(2) as (router, backends, client):
                scene_id = (await client.register_scene(SCENE))["scene_id"]
                await client.complete(scene_id)
                primary_id = router.ring.route(scene_id)
                primary = _owner_servers(router, backends, scene_id)[0]
                await primary.close()
                await client.complete(scene_id)     # trips a failure

                health = await client.healthz()
                by_id = {b["backend_id"]: b for b in health["backends"]}
                described = by_id[primary_id]["breaker"]
                assert described["consecutive_failures"] >= 1
                assert described["last_failure_at"] is not None

                stats = await client.stats()
                section = stats["router"]
                assert section["replication"] == 2
                assert primary_id in section["breakers"]
                budget = section["retry_budget"]
                assert {"ratio", "burst", "tokens", "granted",
                        "denied"} <= set(budget)

        asyncio.run(main())
