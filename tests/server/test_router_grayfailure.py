"""Gray-failure defences: deadlines, hedging, ejection, rebalancing.

Unit tests drive the router's pure helpers (:class:`LatencyTracker`,
the deadline clamps, the ejection sweep, the skew policy) with
fabricated samples and clocks — no sleeps, no races.  Behaviour tests
run the router over *attached* in-process backends and simulate the
gray failure with ``ServerConfig(inject_latency_ms=...)`` — a backend
that answers, just pathologically late, which is exactly what a
SIGSTOP'd shard looks like from the router's side of the wire until
the attempt timeout fires.
"""

import asyncio
import contextlib
import dataclasses

import pytest

from repro.server.client import (AsyncCompletionClient,
                                 DeadlineExceededError, ServerError)
from repro.server.protocol import CompleteRequest, ProtocolError
from repro.server.router import (Backend, CompletionRouter, LatencyTracker,
                                 RouterConfig)
from repro.server.server import AsyncCompletionServer, ServerConfig

SCENE = """
local name : String
imported java.io.File.new : String -> File \
[freq=100] [style=constructor] [display=File]
goal File
"""

SCENE_TEMPLATE = """
local name : String
imported demo.Box{index}.new : String -> Box{index} \
[freq=10] [style=constructor] [display=Box{index}]
goal Box{index}
"""


# -- latency tracker ---------------------------------------------------------


class TestLatencyTracker:
    def test_records_window_ewma_and_lifetime_count(self):
        tracker = LatencyTracker(window=4, alpha=0.5)
        for seconds in (0.010, 0.020, 0.030, 0.040, 0.050):
            tracker.record(seconds)
        assert tracker.count == 5
        assert tracker.window_count == 4    # bounded window dropped one
        assert tracker.ewma_ms is not None and tracker.ewma_ms > 0

    def test_percentile_of_empty_window_is_none(self):
        tracker = LatencyTracker()
        assert tracker.percentile(0.95) is None
        assert tracker.describe()["p95_ms"] is None

    def test_percentile_picks_the_tail(self):
        tracker = LatencyTracker(window=100)
        for _ in range(99):
            tracker.record(0.010)
        tracker.record(1.0)                 # one outlier
        assert tracker.percentile(0.5) == pytest.approx(10.0)
        assert tracker.percentile(0.99) == pytest.approx(1000.0)

    def test_reset_clears_window_but_keeps_lifetime_count(self):
        tracker = LatencyTracker()
        tracker.record(0.010)
        tracker.record(0.020)
        tracker.reset()
        assert tracker.window_count == 0
        assert tracker.ewma_ms is None
        assert tracker.count == 2           # history stays in the books

    def test_describe_is_json_shaped(self):
        tracker = LatencyTracker()
        tracker.record(0.0125)
        described = tracker.describe()
        assert described["count"] == 1
        assert described["window"] == 1
        assert described["ewma_ms"] == pytest.approx(12.5)
        assert described["p50_ms"] == described["p95_ms"]


# -- deadline clamps (unit) --------------------------------------------------


def _bare_router(n: int = 1, **overrides) -> CompletionRouter:
    """An unstarted router over *n* fake backends.

    The deadline, hedge-delay, ejection, and skew helpers are pure
    functions of backend state — no sockets needed, so the fakes carry
    no client at all.
    """
    router = CompletionRouter(RouterConfig(port=0, **overrides))
    for index in range(n):
        router._adopt_backend(Backend(backend_id=f"t{index}",
                                      host="127.0.0.1", port=1 + index,
                                      client=None))
    return router


class TestDeadlineClamps:
    def test_no_budget_means_no_deadline(self):
        request = CompleteRequest(scene_id="scn_1")
        assert CompletionRouter._deadline_at(request) is None
        assert CompletionRouter._remaining_budget_ms(None) is None

    def test_remaining_budget_is_clamped_at_zero(self):
        import time as _time
        spent = _time.monotonic() - 5.0     # died five seconds ago
        assert CompletionRouter._remaining_budget_ms(spent) == 0

    def test_fail_fast_raises_deadline_exceeded_and_counts(self):
        import time as _time
        router = _bare_router()
        router._fail_fast_if_spent(None)    # unbudgeted: never refused
        with pytest.raises(ProtocolError) as excinfo:
            router._fail_fast_if_spent(_time.monotonic() - 0.001)
        assert excinfo.value.code == "deadline_exceeded"
        assert router.deadline_exceeded == 1

    def test_attempt_timeout_is_min_of_config_and_remaining(self):
        import time as _time
        router = _bare_router(request_timeout=10.0)
        assert router._attempt_timeout_s(None) == 10.0
        soon = _time.monotonic() + 1.0
        assert router._attempt_timeout_s(soon) <= 1.0
        far = _time.monotonic() + 3600.0
        assert router._attempt_timeout_s(far) == 10.0
        assert router._attempt_timeout_s(_time.monotonic() - 1.0) == 0.0


class TestHedgeDelay:
    def test_cold_window_uses_the_floor(self):
        router = _bare_router(hedge_floor_ms=80)
        backend = next(iter(router.backends.values()))
        assert router._hedge_delay_s(backend, None) == pytest.approx(0.080)

    def test_delay_is_percentile_derived(self):
        router = _bare_router(hedge_factor=2.0, hedge_floor_ms=10)
        backend = next(iter(router.backends.values()))
        for _ in range(20):
            backend.latency.record(0.100)   # p95 = 100 ms
        assert router._hedge_delay_s(backend, None) == pytest.approx(0.200)

    def test_delay_is_bounded_by_half_the_remaining_budget(self):
        import time as _time
        router = _bare_router(hedge_factor=2.0, hedge_floor_ms=500)
        backend = next(iter(router.backends.values()))
        deadline_at = _time.monotonic() + 0.100
        delay = router._hedge_delay_s(backend, deadline_at)
        assert delay is not None and delay <= 0.050 + 1e-3

    def test_factor_zero_disables_hedging(self):
        router = _bare_router(hedge_factor=0.0)
        backend = next(iter(router.backends.values()))
        assert router._hedge_delay_s(backend, None) is None


# -- ejection sweep (unit) ---------------------------------------------------


def _feed(backend: Backend, ms: float, n: int) -> None:
    for _ in range(n):
        backend.latency.record(ms / 1000.0)


class TestEjectionSweep:
    def test_outlier_p95_is_ejected(self):
        router = _bare_router(3, eject_min_samples=8,
                              eject_multiplier=3.0)
        slow, *cohort = list(router.backends.values())
        _feed(slow, 500.0, 8)
        for backend in cohort:
            _feed(backend, 10.0, 8)
        router._sweep_ejections(now=100.0)
        assert slow.ejected is True
        assert router.ejections == 1
        assert all(not backend.ejected for backend in cohort)

    def test_needs_minimum_samples_on_both_sides(self):
        router = _bare_router(2, eject_min_samples=8)
        slow, fast = list(router.backends.values())
        _feed(slow, 500.0, 8)
        _feed(fast, 10.0, 7)                # cohort one sample short
        router._sweep_ejections(now=100.0)
        assert slow.ejected is False

    def test_single_backend_never_ejects_itself(self):
        router = _bare_router(eject_min_samples=1)
        (backend,) = router.backends.values()
        _feed(backend, 500.0, 10)
        router._sweep_ejections(now=100.0)
        assert backend.ejected is False

    def test_ejection_clears_after_reset_with_a_fresh_window(self):
        router = _bare_router(2, eject_min_samples=4, eject_reset_s=5.0)
        slow, fast = list(router.backends.values())
        _feed(slow, 500.0, 4)
        _feed(fast, 10.0, 4)
        router._sweep_ejections(now=100.0)
        assert slow.ejected is True
        router._sweep_ejections(now=104.0)  # still inside the penalty
        assert slow.ejected is True
        router._sweep_ejections(now=105.0)
        assert slow.ejected is False
        assert slow.latency.window_count == 0, (
            "readmission must be judged on post-recovery samples only")

    def test_ejected_backend_sorts_last_among_healthy(self):
        router = _bare_router(2)
        scene_id = "scn_order"
        first = router._candidates(scene_id)[0]
        first.ejected = True
        assert router._candidates(scene_id)[0] is not first
        assert first in router._candidates(scene_id)    # last resort


# -- skew policy (unit) ------------------------------------------------------


class TestSkewPolicy:
    def test_skew_pair_requires_ratio_and_absolute_gap(self):
        router = _bare_router(2, rebalance_skew_ratio=3.0,
                              rebalance_min_gap=4.0)
        hot, cold = list(router.backends.values())
        hot.load_ewma, cold.load_ewma = 3.0, 0.5
        assert router._skew_pair() is None  # 6x ratio but gap only 2.5
        hot.load_ewma = 12.0
        pair = router._skew_pair()
        assert pair is not None and pair[0] is hot and pair[1] is cold
        cold.load_ewma = 5.0                # gap 7 but ratio only 2.4x
        assert router._skew_pair() is None

    def test_unhealthy_and_draining_backends_are_not_rebalance_peers(self):
        router = _bare_router(2)
        hot, cold = list(router.backends.values())
        hot.load_ewma, cold.load_ewma = 100.0, 0.0
        cold.healthy = False
        assert router._skew_pair() is None  # one live backend is no pair

    def test_sweep_waits_out_the_dwell_before_acting(self):
        """The policy needs *sustained* skew: a single hot sample must
        not trigger a move, and the dwell clock resets when skew
        subsides."""
        async def main():
            router = _bare_router(2, rebalance_dwell_s=10.0,
                                  rebalance_min_gap=1.0,
                                  rebalance_skew_ratio=2.0)
            hot, cold = list(router.backends.values())
            fired = []

            async def _recording_rebalance(a, b):
                fired.append((a.backend_id, b.backend_id))
                router._skew_since = None
                return {"from": a.backend_id, "to": b.backend_id,
                        "scenes": [], "at": 0.0}

            router._rebalance_once = _recording_rebalance
            hot.inflight, cold.inflight = 50, 0
            await router._sweep_rebalance(now=100.0)    # skew noticed
            await router._sweep_rebalance(now=105.0)    # inside dwell
            assert fired == []
            hot.inflight = 0                            # skew subsides
            for tick in (106.0, 107.0, 108.0, 120.0):
                hot.load_ewma = 0.0                     # decayed away
                await router._sweep_rebalance(now=tick)
            assert fired == [], "dwell must reset when skew subsides"
            hot.inflight = 50
            hot.load_ewma, cold.load_ewma = 50.0, 0.0
            await router._sweep_rebalance(now=200.0)
            await router._sweep_rebalance(now=211.0)    # dwell served
            assert fired == [(hot.backend_id, cold.backend_id)]

        asyncio.run(main())

    def test_dwell_zero_disables_the_automatic_policy(self):
        async def main():
            router = _bare_router(2, rebalance_dwell_s=0.0)
            hot, cold = list(router.backends.values())
            hot.load_ewma = 1000.0
            await router._sweep_rebalance(now=100.0)
            assert router._skew_since is None
            assert router.rebalances == 0

        asyncio.run(main())


# -- behaviour: in-process topology ------------------------------------------


@contextlib.asynccontextmanager
async def attached_router(n=2, server_configs=None, **router_overrides):
    """A router over *n* in-process backends (no subprocesses).

    ``server_configs`` lets a test hand individual backends a
    ``ServerConfig`` — e.g. ``inject_latency_ms`` to make exactly one
    shard pathologically slow, the in-process stand-in for SIGSTOP.
    """
    backends = []
    for index in range(n):
        config = (server_configs[index] if server_configs
                  else ServerConfig(port=0))
        server = AsyncCompletionServer(config=config)
        await server.start()
        backends.append(server)
    router = CompletionRouter(RouterConfig(
        port=0, attach=tuple(f"{s.host}:{s.port}" for s in backends),
        **router_overrides))
    await router.start()
    client = AsyncCompletionClient(router.host, router.port)
    try:
        yield router, backends, client
    finally:
        await client.close()
        await router.close()
        for server in backends:
            await server.close()


def _make_slow(server, latency_ms):
    """Turn one live backend gray: it still answers, just very late."""
    server.config = dataclasses.replace(server.config,
                                        inject_latency_ms=latency_ms)


def _primary_index(router, backends, scene_id):
    backend = router.backends[router._candidates(scene_id)[0].backend_id]
    for index, server in enumerate(backends):
        if (server.host, server.port) == (backend.host, backend.port):
            return index
    raise AssertionError("primary owner is not one of our servers")


class TestDeadlineBehaviour:
    def test_spent_budget_is_refused_with_504_and_never_retried(self):
        """Every replica is slow and the budget is tiny: the attempt
        timeout clamps to the remaining budget, the request dies with
        ``deadline_exceeded`` — and the ladder must *not* spend retry
        tokens chasing a budget the client already gave up on."""
        async def main():
            slow = [ServerConfig(port=0, inject_latency_ms=2_000)
                    for _ in range(2)]
            async with attached_router(
                    2, server_configs=slow,
                    hedge_factor=0.0) as (router, backends, client):
                scene_id = (await client.register_scene(
                    SCENE))["scene_id"]
                with pytest.raises(DeadlineExceededError):
                    await client.complete(scene_id, n=5, budget_ms=80)
                assert router.deadline_exceeded >= 1
                assert router.retry_budget.granted == 0, (
                    "deadline_exceeded must never be retried")
                assert router.failovers == 0

        asyncio.run(main())

    def test_unbudgeted_requests_still_serve_from_slow_backends(self):
        async def main():
            slow = [ServerConfig(port=0, inject_latency_ms=50)
                    for _ in range(2)]
            async with attached_router(
                    2, server_configs=slow,
                    hedge_factor=0.0) as (router, backends, client):
                scene_id = (await client.register_scene(
                    SCENE))["scene_id"]
                served = await client.complete(scene_id, n=5)
                assert served["snippets"]
                assert router.deadline_exceeded == 0

        asyncio.run(main())


class TestHedgingBehaviour:
    def test_slow_primary_is_hedged_to_the_sibling(self):
        """One shard answers late (the gray failure); the request's
        hedge must complete on the fast sibling well inside the budget,
        spending exactly one retry token."""
        async def main():
            async with attached_router(
                    2, hedge_floor_ms=30) as (router, backends, client):
                scene_id = (await client.register_scene(
                    SCENE))["scene_id"]
                baseline = await client.complete(scene_id, n=6)

                primary = _primary_index(router, backends, scene_id)
                _make_slow(backends[primary], 2_000)

                served = await client.complete(scene_id, n=7,
                                               budget_ms=10_000)
                assert served["snippets"]
                assert "degraded" not in served
                assert [s["code"] for s in served["snippets"]][:6] == [
                    s["code"] for s in baseline["snippets"]][:6]
                assert router.hedges >= 1
                assert router.hedges_won >= 1
                assert router.retry_budget.granted >= 1, (
                    "hedges must spend the shared retry-budget bucket")

        asyncio.run(main())

    def test_dry_budget_blocks_the_hedge(self):
        async def main():
            async with attached_router(
                    2, hedge_floor_ms=10,
                    retry_budget_burst=1.0) as (router, backends, client):
                scene_id = (await client.register_scene(
                    SCENE))["scene_id"]
                await client.complete(scene_id, n=6)

                primary = _primary_index(router, backends, scene_id)
                _make_slow(backends[primary], 150)
                while router.retry_budget.try_spend():
                    pass                    # drain the bucket dry

                served = await client.complete(scene_id, n=7)
                assert served["snippets"], (
                    "a dry bucket parks the request on the primary — "
                    "slow, but served")
                assert router.hedges == 0
                assert router.retry_budget.denied >= 1

        asyncio.run(main())


class TestRebalanceBehaviour:
    ZIPF_HITS = (64, 32, 16, 8, 4, 2)       # the skewed-tail workload

    async def _zipf_traffic(self, client, scenes=6):
        """Register *scenes* scenes and drive a Zipf-shaped completion
        mix over them; returns their scene ids, hottest first."""
        scene_ids = []
        for index in range(scenes):
            text = SCENE_TEMPLATE.format(index=index)
            scene_ids.append((await client.register_scene(
                text, name=f"zipf{index}.ins"))["scene_id"])
        for scene_id, hits in zip(scene_ids, self.ZIPF_HITS):
            for _ in range(hits):
                await client.complete(scene_id, n=3)
        return scene_ids

    @staticmethod
    def _traffic_share(router):
        """Per-backend share of observed scene traffic, by current
        candidate ordering — the quantity rebalancing exists to level."""
        shares = {backend_id: 0 for backend_id in router.backends}
        for scene_id, hits in router._scene_traffic.items():
            owner = router._candidates(scene_id)[0].backend_id
            shares[owner] += hits
        return shares

    def test_admin_rebalance_moves_hot_scenes_to_the_cold_owner(self):
        """The Zipf gate: a skewed-tail workload concentrates traffic
        on one owner; one ``rebalance`` admin action must re-home hot
        scenes so the hottest owner's share strictly drops — with every
        moved scene still answering full-fidelity from its new home."""
        async def main():
            async with attached_router(2) as (router, backends, client):
                scene_ids = await self._zipf_traffic(client)
                before = self._traffic_share(router)
                hot_id = max(before, key=before.get)
                cold_id = min(before, key=before.get)
                assert before[hot_id] > before[cold_id], (
                    "the Zipf mix must actually skew (seeded, so this "
                    "is deterministic)")

                moved = await client.admin_backend("rebalance")
                assert moved["moved"] >= 1
                assert moved["from"] == hot_id
                assert moved["to"] == cold_id

                after = self._traffic_share(router)
                # Moved scenes were popped from the traffic ledger, so
                # compare by re-measuring a fresh identical mix.
                for scene_id, hits in zip(scene_ids, self.ZIPF_HITS):
                    for _ in range(hits):
                        await client.complete(scene_id, n=3)
                after = self._traffic_share(router)
                assert after[hot_id] < before[hot_id], (
                    f"hot owner share did not drop: {before} -> {after}")
                assert after[cold_id] > before[cold_id]

                for scene_id in moved["scenes"]:
                    assert (router._candidates(scene_id)[0].backend_id
                            == cold_id), "moved scene not homed cold"
                    served = await client.complete(scene_id, n=5)
                    assert served["snippets"] and "degraded" not in served

                assert router.rebalances == 1
                assert len(router.rebalance_events) == 1
                stats = await client.stats()
                section = stats["router"]
                assert section["rebalances"] == 1
                assert section["rebalance_events"][0]["from"] == hot_id

        asyncio.run(main())

    def test_rebalance_without_skew_is_refused(self):
        async def main():
            async with attached_router(2) as (router, backends, client):
                with pytest.raises(ServerError, match="skew|two live"):
                    await client.admin_backend("rebalance")

        asyncio.run(main())

    def test_rebalance_needs_two_live_backends(self):
        async def main():
            async with attached_router(1) as (router, backends, client):
                with pytest.raises(ServerError, match="two live"):
                    await client.admin_backend("rebalance")

        asyncio.run(main())


class TestGraySignalsSurface:
    def test_stats_and_healthz_carry_the_gray_counters(self):
        async def main():
            async with attached_router(2) as (router, backends, client):
                scene_id = (await client.register_scene(
                    SCENE))["scene_id"]
                await client.complete(scene_id, n=5)
                stats = await client.stats()
                section = stats["router"]
                assert section["deadline_exceeded"] == 0
                assert section["slow_timeouts"] == 0
                assert section["hedges"] == {"fired": 0, "won": 0}
                assert section["ejections"] == 0
                assert section["ejected"] == []
                assert section["rebalances"] == 0
                assert section["rebalance_events"] == []
                latencies = section["backend_latency"]
                assert set(latencies) == set(router.backends)
                assert any(doc["count"] >= 1
                           for doc in latencies.values()), (
                    "serving must feed the per-backend latency windows")

                health = await client.healthz()
                for doc in health["backends"]:
                    assert "ejected" in doc
                    assert "latency" in doc

        asyncio.run(main())
