"""Wire-protocol round-trips, validation and deadline mapping."""

import dataclasses

import pytest

from repro.core.config import SynthesisConfig
from repro.core.ranking import CONTEXT_FIELDS, CompletionContext
from repro.server.protocol import (ERROR_CODES, MIN_PHASE_SECONDS,
                                   PROTOCOL_VERSION, STATUS_FOR_CODE,
                                   CompleteRequest, ProtocolError,
                                   RegisterSceneRequest, completion_payload,
                                   deadline_config, decode_body, encode_body,
                                   error_payload, ok_payload,
                                   parse_batch_payload)


class TestRegisterSceneRequest:
    def test_roundtrip(self):
        request = RegisterSceneRequest(text="local x : A\ngoal A",
                                       name="demo")
        assert (RegisterSceneRequest.from_payload(request.to_payload())
                == request)

    def test_text_required(self):
        with pytest.raises(ProtocolError, match="'text'"):
            RegisterSceneRequest.from_payload({"name": "demo"})

    def test_blank_text_rejected(self):
        with pytest.raises(ProtocolError):
            RegisterSceneRequest.from_payload({"text": "   "})

    def test_body_must_be_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            RegisterSceneRequest.from_payload(["not", "a", "dict"])


class TestCompleteRequest:
    def test_roundtrip(self):
        request = CompleteRequest(scene_id="scn_abc", goal="Reader",
                                  variant="full", n=5, deadline_ms=250)
        assert CompleteRequest.from_payload(request.to_payload()) == request

    def test_exactly_one_scene_source(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            CompleteRequest.from_payload({"goal": "A"})
        with pytest.raises(ProtocolError, match="exactly one"):
            CompleteRequest.from_payload(
                {"scene_id": "scn_x", "scene": "local x : A"})

    def test_unknown_variant_rejected(self):
        with pytest.raises(ProtocolError, match="variant"):
            CompleteRequest.from_payload(
                {"scene_id": "scn_x", "variant": "turbo"})

    def test_n_bounds(self):
        with pytest.raises(ProtocolError, match="'n'"):
            CompleteRequest.from_payload({"scene_id": "scn_x", "n": 0})
        with pytest.raises(ProtocolError, match="'n'"):
            CompleteRequest.from_payload({"scene_id": "scn_x", "n": True})

    def test_deadline_bounds(self):
        with pytest.raises(ProtocolError, match="deadline_ms"):
            CompleteRequest.from_payload(
                {"scene_id": "scn_x", "deadline_ms": 0})
        with pytest.raises(ProtocolError, match="deadline_ms"):
            CompleteRequest.from_payload(
                {"scene_id": "scn_x", "deadline_ms": 10_000_000})


class TestCompleteRequestContext:
    """Context hints on the wire: parse, reject, and stay in sync."""

    def test_roundtrip_with_context(self):
        request = CompleteRequest.from_payload(
            {"scene_id": "scn_x",
             "context": {"receiver_type": "java.io.File",
                         "position_kind": "after_new"}})
        assert request.context == CompletionContext(
            receiver_type="java.io.File", position_kind="after_new")
        assert CompleteRequest.from_payload(request.to_payload()) == request
        assert request.to_payload()["context"] == {
            "receiver_type": "java.io.File", "position_kind": "after_new"}

    def test_typo_key_maps_to_invalid_context(self):
        with pytest.raises(ProtocolError) as excinfo:
            CompleteRequest.from_payload(
                {"scene_id": "scn_x",
                 "context": {"reciever_type": "File"}})
        assert excinfo.value.code == "invalid_context"
        assert STATUS_FOR_CODE[excinfo.value.code] == 400
        assert "invalid_context" in ERROR_CODES

    def test_non_object_context_maps_to_invalid_context(self):
        with pytest.raises(ProtocolError) as excinfo:
            CompleteRequest.from_payload(
                {"scene_id": "scn_x", "context": "after_new"})
        assert excinfo.value.code == "invalid_context"

    def test_empty_context_normalises_to_none(self):
        request = CompleteRequest.from_payload(
            {"scene_id": "scn_x", "context": {}})
        assert request.context is None
        assert "context" not in request.to_payload()

    def test_wire_keys_stay_in_sync_with_the_dataclass(self):
        """Regression guard: add a field to CompleteRequest and forget
        ``to_payload`` and this fails — a silently dropped field would
        otherwise surface as hints (or budgets) vanishing across hops.
        """
        request = CompleteRequest(
            scene_id="scn_x", goal="Reader", variant="full", n=3,
            deadline_ms=100, budget_ms=50, stream=True, priority=7,
            context=CompletionContext(receiver_type="File"))
        payload = request.to_payload()
        field_names = {f.name for f in dataclasses.fields(CompleteRequest)}
        assert set(payload) == field_names - {"scene"}
        assert CompleteRequest.from_payload(
            dict(payload, scene_id=None,
                 scene="local x : A\ngoal A")) is not None

    def test_context_payload_keys_match_completion_context(self):
        """The hint keys the protocol accepts are exactly the
        :class:`CompletionContext` fields — no drift either way."""
        assert set(CONTEXT_FIELDS) == {
            f.name for f in dataclasses.fields(CompletionContext)}
        for key in CONTEXT_FIELDS:
            value = "after_new" if key == "position_kind" else "File"
            request = CompleteRequest.from_payload(
                {"scene_id": "scn_x", "context": {key: value}})
            assert getattr(request.context, key) == value


class TestBatchPayload:
    def test_parses_each_query(self):
        queries = parse_batch_payload(
            {"queries": [{"scene_id": "a"}, {"scene_id": "b", "n": 3}]})
        assert [q.scene_id for q in queries] == ["a", "b"]
        assert queries[1].n == 3

    def test_requires_nonempty_list(self):
        with pytest.raises(ProtocolError, match="queries"):
            parse_batch_payload({"queries": []})
        with pytest.raises(ProtocolError, match="queries"):
            parse_batch_payload({})

    def test_oversized_batch_rejected(self):
        from repro.server.protocol import MAX_BATCH_QUERIES
        queries = [{"scene_id": "x"}] * (MAX_BATCH_QUERIES + 1)
        with pytest.raises(ProtocolError, match="limit"):
            parse_batch_payload({"queries": queries})


class TestEnvelopes:
    def test_ok_envelope(self):
        payload = ok_payload(answer=42)
        assert payload["v"] == PROTOCOL_VERSION
        assert payload["ok"] is True
        assert payload["answer"] == 42

    def test_error_envelope(self):
        payload = error_payload("overloaded", "busy")
        assert payload["ok"] is False
        assert payload["error"] == {"code": "overloaded", "message": "busy"}

    def test_body_roundtrip(self):
        payload = ok_payload(nested={"a": [1, 2]})
        assert decode_body(encode_body(payload)) == payload

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_body(b"{nope")
        with pytest.raises(ProtocolError, match="empty"):
            decode_body(b"")


class TestCompletionPayload:
    def test_reports_partial_and_serving_flags(self):
        from repro.core.synthesizer import SynthesisResult

        result = SynthesisResult(inhabited=True, explore_truncated=True)
        payload = completion_payload(
            scene_id="scn_x", goal="Reader", variant="full", result=result,
            cache_hit=False, coalesced=True, deadline_ms=100,
            server_seconds=0.01)
        assert payload["partial"] is True
        assert payload["coalesced"] is True
        assert payload["cache_hit"] is False
        assert payload["deadline_ms"] == 100
        assert payload["snippets"] == []


class TestDeadlineConfig:
    BASE = SynthesisConfig.paper_defaults()     # 0.5 s prover, 7 s recon

    def test_none_is_identity(self):
        assert deadline_config(self.BASE, None) is self.BASE

    def test_generous_deadline_never_extends_budgets(self):
        config = deadline_config(self.BASE, 600_000)
        assert config.prover_time_limit <= self.BASE.prover_time_limit
        assert (config.reconstruction_time_limit
                <= self.BASE.reconstruction_time_limit)

    def test_proportional_split(self):
        config = deadline_config(self.BASE, 750)
        total = config.prover_time_limit + config.reconstruction_time_limit
        assert total == pytest.approx(0.75, rel=0.01)
        # 0.5 : 7 proportion -> prover gets 1/15th of the budget.
        assert config.prover_time_limit == pytest.approx(0.05, rel=0.01)

    def test_tiny_deadline_floors_phases(self):
        config = deadline_config(self.BASE, 1)
        assert config.prover_time_limit >= MIN_PHASE_SECONDS
        assert config.reconstruction_time_limit >= MIN_PHASE_SECONDS

    def test_deterministic_for_cache_keys(self):
        assert (deadline_config(self.BASE, 333)
                == deadline_config(self.BASE, 333))
        assert (deadline_config(self.BASE, 333)
                != deadline_config(self.BASE, 334))

    def test_unlimited_base_uses_paper_proportion(self):
        base = SynthesisConfig(prover_time_limit=None,
                               reconstruction_time_limit=None)
        config = deadline_config(base, 1500)
        total = config.prover_time_limit + config.reconstruction_time_limit
        assert total == pytest.approx(1.5, rel=0.01)
