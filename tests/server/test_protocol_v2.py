"""Protocol v2 surface: version gating, edit-scene shape, stream chunks."""

import json

import pytest

from repro.server.protocol import (MAX_EDIT_OPS, PROTOCOL_VERSION,
                                   STREAM_CONTENT_TYPE, CompleteRequest,
                                   EditSceneRequest, ProtocolError,
                                   encode_stream_chunk, error_payload,
                                   stream_done_chunk, stream_error_chunk,
                                   stream_snippet_chunk)


class TestVersionGate:
    def test_the_protocol_is_v2(self):
        assert PROTOCOL_VERSION == 2

    def test_matching_version_is_accepted(self):
        request = CompleteRequest.from_payload(
            {"v": PROTOCOL_VERSION, "scene_id": "scn_abc"})
        assert request.scene_id == "scn_abc"

    def test_versionless_payloads_are_accepted(self):
        request = CompleteRequest.from_payload({"scene_id": "scn_abc"})
        assert request.scene_id == "scn_abc"

    @pytest.mark.parametrize("version", [1, 3, "2", 2.0 + 1])
    def test_mismatched_version_is_rejected(self, version):
        with pytest.raises(ProtocolError) as excinfo:
            CompleteRequest.from_payload({"v": version,
                                          "scene_id": "scn_abc"})
        assert excinfo.value.code == "unsupported_version"
        assert excinfo.value.status == 400

    def test_the_gate_guards_every_request_shape(self):
        with pytest.raises(ProtocolError) as excinfo:
            EditSceneRequest.from_payload(
                {"v": 1, "scene_id": "scn_abc",
                 "ops": [{"op": "remove", "name": "x"}]})
        assert excinfo.value.code == "unsupported_version"


class TestCompleteRequestStreamFlag:
    def test_stream_flag_round_trip(self):
        request = CompleteRequest(scene_id="scn_abc", stream=True)
        payload = request.to_payload()
        assert payload["stream"] is True
        assert CompleteRequest.from_payload(payload).stream is True

    def test_stream_defaults_off_and_stays_off_the_wire(self):
        request = CompleteRequest(scene_id="scn_abc")
        assert request.stream is False
        assert "stream" not in request.to_payload()

    @pytest.mark.parametrize("bad", ["yes", 1, 0, None])
    def test_non_boolean_stream_is_rejected(self, bad):
        with pytest.raises(ProtocolError, match="'stream' must be a boolean"):
            CompleteRequest.from_payload({"scene_id": "scn_abc",
                                          "stream": bad})


class TestEditSceneRequest:
    OPS = [{"op": "add", "decl": "local x : String"},
           {"op": "remove", "name": "y"}]

    def test_round_trip(self):
        request = EditSceneRequest(scene_id="scn_abc",
                                   ops=tuple(self.OPS), name="demo")
        assert EditSceneRequest.from_payload(request.to_payload()) == request

    def test_scene_id_required(self):
        with pytest.raises(ProtocolError, match="'scene_id' is required"):
            EditSceneRequest.from_payload({"ops": self.OPS})

    def test_ops_must_be_a_non_empty_list(self):
        for bad in ({}, [], "add x", None):
            with pytest.raises(ProtocolError, match="non-empty list"):
                EditSceneRequest.from_payload({"scene_id": "scn_abc",
                                               "ops": bad})

    def test_op_count_is_capped(self):
        ops = [{"op": "remove", "name": f"n{i}"}
               for i in range(MAX_EDIT_OPS + 1)]
        with pytest.raises(ProtocolError, match="exceeds the"):
            EditSceneRequest.from_payload({"scene_id": "scn_abc",
                                           "ops": ops})

    def test_op_shapes_are_validated(self):
        cases = [
            ("ops\\[0\\] must be an object", ["remove x"]),
            ("'op' must be 'add' or 'remove'", [{"op": "rename"}]),
            ("add requires 'decl'", [{"op": "add"}]),
            ("add requires 'decl'", [{"op": "add", "decl": "  "}]),
            ("remove requires 'name'", [{"op": "remove"}]),
            ("remove requires 'name'", [{"op": "remove", "name": ""}]),
        ]
        for pattern, ops in cases:
            with pytest.raises(ProtocolError, match=pattern):
                EditSceneRequest.from_payload({"scene_id": "scn_abc",
                                               "ops": ops})

    def test_name_is_optional(self):
        request = EditSceneRequest.from_payload({"scene_id": "scn_abc",
                                                 "ops": self.OPS})
        assert request.name is None
        assert "name" not in request.to_payload()


class _Snippet:
    rank = 1
    code = "new File(name)"
    weight = 3.14159


class TestStreamChunks:
    def test_snippet_chunk_shape(self):
        chunk = stream_snippet_chunk(_Snippet())
        assert chunk == {"v": PROTOCOL_VERSION, "chunk": "snippet",
                         "rank": 1, "code": "new File(name)",
                         "weight": 3.1416}

    def test_done_chunk_wraps_the_batch_payload(self):
        completion = {"ok": True, "scene_id": "scn_abc", "snippets": []}
        chunk = stream_done_chunk(completion)
        assert chunk["chunk"] == "done"
        assert chunk["v"] == PROTOCOL_VERSION
        assert chunk["scene_id"] == "scn_abc"

    def test_error_chunk_carries_the_error_envelope(self):
        chunk = stream_error_chunk("internal", "boom")
        assert chunk["chunk"] == "error"
        assert chunk["error"] == error_payload("internal", "boom")["error"]

    def test_encode_is_one_compact_ndjson_line(self):
        encoded = encode_stream_chunk({"v": PROTOCOL_VERSION,
                                       "chunk": "done", "b": 1, "a": 2})
        assert encoded.endswith(b"\n")
        assert encoded.count(b"\n") == 1
        assert b" " not in encoded
        decoded = json.loads(encoded.decode("utf-8"))
        assert decoded["chunk"] == "done"
        # Deterministic key order: proxies and journals can byte-compare.
        assert encoded == encode_stream_chunk(decoded)

    def test_stream_content_type(self):
        assert STREAM_CONTENT_TYPE == "application/x-ndjson"
