"""Tests over the hand-modelled JDK surface."""

import pytest

from repro.core.succinct import sigma
from repro.javamodel.jdk import build_jdk, shared_jdk


@pytest.fixture(scope="module")
def jdk():
    return shared_jdk()


class TestStructure:
    def test_size_is_substantial(self, jdk):
        assert len(jdk) > 600
        assert len(jdk.classes()) > 200

    def test_no_subtype_cycles(self, jdk):
        assert not jdk.subtype_graph().has_cycle()

    def test_build_returns_fresh_instances(self):
        assert build_jdk() is not build_jdk()

    def test_expected_packages_present(self, jdk):
        packages = set(jdk.packages())
        for package in ["java.io", "java.lang", "java.net", "java.awt",
                        "javax.swing", "java.util"]:
            assert package in packages


class TestHierarchy:
    @pytest.mark.parametrize("sub,super_", [
        ("FileInputStream", "InputStream"),
        ("BufferedInputStream", "InputStream"),
        ("FileReader", "Reader"),
        ("LineNumberReader", "BufferedReader"),
        ("PrintStream", "OutputStream"),
        ("Panel", "Component"),
        ("JCheckBox", "JComponent"),
        ("JButton", "AbstractButton"),
        ("JWindow", "Window"),
        ("MulticastSocket", "DatagramSocket"),
        ("AWTPermission", "Permission"),
        ("DefaultBoundedRangeModel", "BoundedRangeModel"),
        ("MaskFormatter", "JFormattedTextField.AbstractFormatter"),
        ("String", "CharSequence"),
    ])
    def test_subtype_edges(self, jdk, sub, super_):
        assert jdk.subtype_graph().is_subtype(sub, super_)

    def test_no_reverse_edges(self, jdk):
        graph = jdk.subtype_graph()
        assert not graph.is_subtype("InputStream", "FileInputStream")
        assert not graph.is_subtype("Component", "Panel")


class TestBenchmarkCoverage:
    """Every Table 2 goal must have its key constructor modelled."""

    @pytest.mark.parametrize("name,type_text", [
        ("java.awt.AWTPermission.new(String)", "String -> AWTPermission"),
        ("java.io.BufferedInputStream.new(InputStream)",
         "InputStream -> BufferedInputStream"),
        ("java.io.BufferedReader.new(Reader)", "Reader -> BufferedReader"),
        ("java.net.DatagramSocket.new()", "DatagramSocket"),
        ("java.awt.DisplayMode.new(int,int,int,int)",
         "int -> int -> int -> int -> DisplayMode"),
        ("java.io.FileInputStream.new(FileDescriptor)",
         "FileDescriptor -> FileInputStream"),
        ("javax.swing.GroupLayout.new(Container)",
         "Container -> GroupLayout"),
        ("javax.swing.JFormattedTextField.new(JFormattedTextField.AbstractFormatter)",
         "JFormattedTextField.AbstractFormatter -> JFormattedTextField"),
        ("javax.swing.JTable.new(ObjectArray2D,ObjectArray)",
         "ObjectArray2D -> ObjectArray -> JTable"),
        ("javax.swing.Timer.new(int,ActionListener)",
         "int -> ActionListener -> Timer"),
        ("java.net.URL.new(String)", "String -> URL"),
        ("java.io.SequenceInputStream.new(InputStream,InputStream)",
         "InputStream -> InputStream -> SequenceInputStream"),
    ])
    def test_member_present_with_type(self, jdk, name, type_text):
        from repro.lang.parser import parse_type

        members = {member.name: member for member in jdk.members()}
        assert name in members, f"missing member {name}"
        assert members[name].type == parse_type(type_text)

    def test_member_names_globally_unique(self, jdk):
        names = [member.name for member in jdk.members()]
        assert len(names) == len(set(names))

    def test_succinct_compression_happens(self, jdk):
        types = [member.type for member in jdk.members()]
        distinct = len({sigma(tpe) for tpe in types})
        assert distinct < len(types)
