"""Tests for program points and distractor generation."""

import pytest

from repro.core.environment import DeclKind
from repro.core.errors import BenchmarkError
from repro.javamodel.distractors import DistractorGenerator
from repro.javamodel.jdk import shared_jdk
from repro.javamodel.scope import ProgramPoint


class TestDistractorGenerator:
    def test_exact_count(self):
        members = DistractorGenerator(seed=1).generate(137)
        assert len(members) == 137

    def test_names_unique(self):
        members = DistractorGenerator(seed=2).generate(2000)
        names = [member.name for member in members]
        assert len(names) == len(set(names))

    def test_deterministic_across_instances(self):
        first = DistractorGenerator(seed=3).generate(200)
        second = DistractorGenerator(seed=3).generate(200)
        assert [m.name for m in first] == [m.name for m in second]

    def test_different_seeds_differ(self):
        first = DistractorGenerator(seed=4).generate(50)
        second = DistractorGenerator(seed=5).generate(50)
        assert [m.name for m in first] != [m.name for m in second]

    def test_confusable_producers_require_arguments(self):
        members = DistractorGenerator(
            seed=6, confusable_types=("Goal",)).generate(3000)
        from repro.core.types import final_result, uncurry

        for member in members:
            arguments, result = uncurry(member.type)
            if result.name == "Goal":
                # Receiver plus at least one real parameter (see the
                # no-corpus shape argument in the module docstring).
                assert len(arguments) >= 2

    def test_types_parse_and_lower(self):
        members = DistractorGenerator(seed=7).generate(100)
        assert all(member.type is not None for member in members)


class TestProgramPoint:
    def _point(self):
        return ProgramPoint(shared_jdk(), {"java.io.File.new": 77})

    def test_import_packages_filters(self):
        point = self._point().import_packages("java.net")
        scene = point.build()
        names = [decl.name for decl in scene.environment]
        assert any(name.startswith("java.net.") for name in names)
        assert not any(name.startswith("javax.swing.") for name in names)

    def test_kinds_assigned(self):
        point = (self._point()
                 .import_packages("java.io")
                 .add_local("body", "InputStream")
                 .add_class_member("helper", "String")
                 .add_package_member("shared", "int")
                 .add_literal('"x"', "String"))
        scene = point.build()
        kinds = {decl.name: decl.kind for decl in scene.environment
                 if decl.kind is not DeclKind.IMPORTED}
        assert kinds == {
            "body": DeclKind.LOCAL,
            "helper": DeclKind.CLASS_MEMBER,
            "shared": DeclKind.PACKAGE_MEMBER,
            '"x"': DeclKind.LITERAL,
        }

    def test_frequencies_applied_to_imports(self):
        point = self._point().import_packages("java.io")
        scene = point.build()
        decl = next(decl for decl in scene.environment
                    if decl.name == "java.io.File.new(String)")
        assert decl.frequency == 77

    def test_locals_come_last(self):
        point = (self._point().import_packages("java.io")
                 .add_local("z_local", "int"))
        scene = point.build()
        assert list(scene.environment)[-1].name == "z_local"

    def test_distractors_pad_count(self):
        base = self._point().import_packages("java.io").build()
        padded = (self._point().import_packages("java.io")
                  .add_distractors(500, seed=9).build())
        assert padded.initial_count == base.initial_count + 500

    def test_goal_recorded(self):
        from repro.core.types import base

        scene = self._point().set_goal("File").build()
        assert scene.goal == base("File")

    def test_subtype_graph_included(self):
        scene = self._point().build()
        assert scene.subtypes.is_subtype("FileInputStream", "InputStream")

    def test_extra_subtype_edges(self):
        scene = self._point().add_subtype("MyStream", "InputStream").build()
        assert scene.subtypes.is_subtype("MyStream", "InputStream")

    def test_duplicate_local_raises_benchmark_error(self):
        point = (self._point().add_local("x", "int")
                 .add_local("x", "String"))
        with pytest.raises(BenchmarkError):
            point.build()
