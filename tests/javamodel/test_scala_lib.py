"""Tests for the Scala standard-library slice (higher-order members)."""

import pytest

from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.synthesizer import Synthesizer
from repro.core.types import Arrow
from repro.javamodel.jdk import scala_lib
from repro.javamodel.model import ApiModel
from repro.lang.parser import parse_type


@pytest.fixture(scope="module")
def model():
    api = ApiModel()
    scala_lib.build(api)
    return api


class TestModel:
    def test_higher_order_members_present(self, model):
        members = {member.name: member for member in model.members()}
        map_member = members["scala.collection.StringList.map(String -> String)"]
        assert map_member.type == parse_type(
            "StringList -> (String -> String) -> StringList")

    def test_fold_is_binary_higher_order(self, model):
        members = {member.name: member for member in model.members()}
        fold = members[
            "scala.collection.IntList.foldLeft(int,int -> int -> int)"]
        assert fold.type == parse_type(
            "IntList -> int -> (int -> int -> int) -> int")

    def test_function_valued_results(self, model):
        members = {member.name: member for member in model.members()}
        compose = members[
            "scala.FunctionOps.compose(String -> String,String -> String)"]
        # Result is itself a function type.
        _, result = compose.type, compose.type
        tail = compose.type
        while isinstance(tail, Arrow):
            last = tail
            tail = tail.result
        assert isinstance(last, Arrow)


class TestSynthesisWithScalaApi:
    def _environment(self, model, extra):
        from repro.javamodel.scope import ProgramPoint

        point = ProgramPoint(model, name="scala-scene")
        point.import_all()
        for name, type_text in extra:
            point.add_local(name, type_text)
        return point

    def test_map_with_synthesized_closure(self, model):
        point = self._environment(model, [("names", "StringList"),
                                          ("shorten", "String -> String")])
        point.set_goal("StringList")
        scene = point.build()
        result = Synthesizer(scene.environment,
                             subtypes=scene.subtypes).synthesize(
            scene.goal, n=10)
        codes = [snippet.code for snippet in result.snippets]
        assert "names" in codes
        assert any(".map(" in code and "=>" in code for code in codes)

    def test_get_or_else_chain(self, model):
        point = self._environment(model, [("maybe", "StringOption"),
                                          ("fallback", "String")])
        point.set_goal("String")
        scene = point.build()
        result = Synthesizer(scene.environment,
                             subtypes=scene.subtypes).synthesize(
            scene.goal, n=10)
        codes = [snippet.code for snippet in result.snippets]
        assert "maybe.get()" in codes
        assert "maybe.getOrElse(fallback)" in codes

    def test_function_goal_via_combinators(self, model):
        point = self._environment(model, [("exclaim", "String -> String")])
        point.set_goal("String -> String")
        scene = point.build()
        result = Synthesizer(scene.environment,
                             subtypes=scene.subtypes).synthesize(
            scene.goal, n=10)
        codes = [snippet.code for snippet in result.snippets]
        # The eta-expansion of the local function must rank at the top.
        assert any("exclaim(" in code for code in codes[:2])
