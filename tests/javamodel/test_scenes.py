"""Structural tests for the §2 motivating-example scenes."""

import pytest

from repro.core.environment import DeclKind
from repro.javamodel.scenes import (DRAWING_LAYOUT_INITIAL, FIGURE1_INITIAL,
                                    TREE_FILTER_INITIAL,
                                    drawing_layout_scene,
                                    sequence_of_streams_scene,
                                    tree_filter_scene)


@pytest.fixture(scope="module")
def figure1():
    return sequence_of_streams_scene()


@pytest.fixture(scope="module")
def tree_filter():
    return tree_filter_scene()


@pytest.fixture(scope="module")
def drawing():
    return drawing_layout_scene()


class TestFigure1Scene:
    def test_declaration_count(self, figure1):
        assert figure1.initial_count == FIGURE1_INITIAL == 3356

    def test_locals_present(self, figure1):
        body = figure1.environment.lookup("body")
        sig = figure1.environment.lookup("sig")
        assert body.kind is DeclKind.LOCAL
        assert str(sig.type) == "FileInputStream"

    def test_goal(self, figure1):
        assert str(figure1.goal) == "SequenceInputStream"

    def test_subtyping_for_sig(self, figure1):
        assert figure1.subtypes.is_subtype("FileInputStream", "InputStream")

    def test_deterministic(self):
        first = sequence_of_streams_scene()
        second = sequence_of_streams_scene()
        assert [d.name for d in first.environment] == \
            [d.name for d in second.environment]


class TestTreeFilterScene:
    def test_declaration_count(self, tree_filter):
        assert tree_filter.initial_count == TREE_FILTER_INITIAL

    def test_higher_order_local(self, tree_filter):
        predicate = tree_filter.environment.lookup("p")
        assert str(predicate.type) == "Tree -> Boolean"

    def test_constructor_takes_function(self, tree_filter):
        ctor = tree_filter.environment.lookup(
            "scala.tools.eclipse.FilterTypeTreeTraverser.new(Tree -> Boolean)")
        assert ctor is not None
        assert str(ctor.type) == "(Tree -> Boolean) -> FilterTypeTreeTraverser"


class TestDrawingLayoutScene:
    def test_declaration_count(self, drawing):
        assert drawing.initial_count == DRAWING_LAYOUT_INITIAL == 4965

    def test_panel_local(self, drawing):
        panel = drawing.environment.lookup("panel")
        assert str(panel.type) == "Panel"

    def test_subtype_chain_to_container(self, drawing):
        assert drawing.subtypes.is_subtype("Panel", "Container")

    def test_get_layout_member_present(self, drawing):
        member = drawing.environment.lookup("java.awt.Container.getLayout()")
        assert member is not None
        assert str(member.type) == "Container -> LayoutManager"
