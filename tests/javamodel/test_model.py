"""Unit tests for the API model core."""

import pytest

from repro.core.environment import RenderStyle
from repro.core.errors import EnvironmentError_
from repro.core.types import parse
from repro.javamodel.model import ApiModel


@pytest.fixture
def model():
    api = ApiModel()
    cls = api.add_class("com.example.Widget", extends=["Object"])
    cls.constructor()
    cls.constructor("String")
    cls.method("render", ["String"], "String")
    cls.method("create", ["int"], "Widget", static=True)
    cls.field("name", "String")
    cls.field("DEFAULT", "Widget", static=True)
    api.add_class("java.lang.Object")
    return api


def parse(text):
    from repro.lang.parser import parse_type

    return parse_type(text)


class TestClasses:
    def test_qualified_name(self, model):
        cls = model.lookup_class("Widget")
        assert cls.qualified_name == "com.example.Widget"
        assert cls.package == "com.example"

    def test_unqualified_name_rejected(self):
        with pytest.raises(EnvironmentError_):
            ApiModel().add_class("NoPackage")

    def test_duplicate_simple_name_rejected(self, model):
        with pytest.raises(EnvironmentError_):
            model.add_class("org.other.Widget")

    def test_packages(self, model):
        assert model.packages() == ["com.example", "java.lang"]


class TestMemberLowering:
    def _by_name(self, model, name):
        return {member.name: member for member in model.members()}[name]

    def test_constructor_type(self, model):
        member = self._by_name(model, "com.example.Widget.new(String)")
        assert member.type == parse("String -> Widget")
        assert member.render.style is RenderStyle.CONSTRUCTOR
        assert member.render.display == "Widget"

    def test_zero_arg_constructor(self, model):
        member = self._by_name(model, "com.example.Widget.new()")
        assert member.type == parse("Widget")

    def test_instance_method_takes_receiver(self, model):
        member = self._by_name(model, "com.example.Widget.render(String)")
        assert member.type == parse("Widget -> String -> String")
        assert member.render.style is RenderStyle.METHOD

    def test_static_method_has_no_receiver(self, model):
        member = self._by_name(model, "com.example.Widget.create(int)")
        assert member.type == parse("int -> Widget")
        assert member.render.style is RenderStyle.STATIC_METHOD
        assert member.render.display == "Widget.create"

    def test_instance_field(self, model):
        member = self._by_name(model, "com.example.Widget.name")
        assert member.type == parse("Widget -> String")
        assert member.render.style is RenderStyle.FIELD

    def test_static_field(self, model):
        member = self._by_name(model, "com.example.Widget.DEFAULT")
        assert member.type == parse("Widget")
        assert member.render.style is RenderStyle.STATIC_FIELD

    def test_symbol_strips_overload_signature(self, model):
        member = self._by_name(model, "com.example.Widget.new(String)")
        assert member.symbol == "com.example.Widget.new"

    def test_duplicate_member_rejected(self, model):
        handle = model.add_class("com.example.Other")
        handle.method("m", [], "int")
        with pytest.raises(EnvironmentError_):
            handle.method("m", [], "int")


class TestQueries:
    def test_members_of_packages(self, model):
        members = model.members_of_packages(["com.example"])
        assert len(members) == 6
        assert all(member.package == "com.example" for member in members)

    def test_subtype_graph_edges(self, model):
        graph = model.subtype_graph()
        assert graph.is_subtype("Widget", "Object")

    def test_merge_conflicts_detected(self, model):
        other = ApiModel()
        other.add_class("org.dup.Widget")
        with pytest.raises(EnvironmentError_):
            model.merge(other)
