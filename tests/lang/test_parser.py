"""Unit tests for the declaration-language parser."""

import pytest

from repro.core.environment import DeclKind, RenderStyle
from repro.core.errors import TypeSyntaxError
from repro.core.types import Arrow, arrow, base, format_type
from repro.lang.parser import parse_environment, parse_type


class TestParseType:
    def test_base(self):
        assert parse_type("Int") == base("Int")

    def test_arrow_right_associative(self):
        assert parse_type("A -> B -> C") == arrow(base("A"), base("B"),
                                                  base("C"))

    def test_parenthesised_argument(self):
        tpe = parse_type("(A -> B) -> C")
        assert isinstance(tpe, Arrow)
        assert tpe.argument == arrow(base("A"), base("B"))

    def test_scala_arrow(self):
        assert parse_type("A => B") == parse_type("A -> B")

    def test_qualified_names(self):
        tpe = parse_type("java.io.File -> java.io.FileReader")
        assert tpe.argument == base("java.io.File")

    def test_round_trip_through_format(self):
        for text in ["A", "A -> B", "(A -> B) -> C -> D",
                     "((A -> B) -> C) -> D"]:
            assert format_type(parse_type(text)) == text

    def test_trailing_garbage_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_type("A -> B extra")

    def test_empty_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_type("")

    def test_dangling_arrow_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_type("A ->")


class TestParseEnvironment:
    def test_declarations_with_kinds(self):
        spec = parse_environment("""
            local body : InputStream
            class getLayout : Container -> LayoutManager
            package helper : Int -> String
            imported java.io.File.new : String -> File
        """)
        kinds = {decl.name: decl.kind for decl in spec.declarations}
        assert kinds == {
            "body": DeclKind.LOCAL,
            "getLayout": DeclKind.CLASS_MEMBER,
            "helper": DeclKind.PACKAGE_MEMBER,
            "java.io.File.new": DeclKind.IMPORTED,
        }

    def test_literal_declaration_with_string_name(self):
        spec = parse_environment('literal "LPT1" : String')
        (decl,) = spec.declarations
        assert decl.name == '"LPT1"'
        assert decl.kind is DeclKind.LITERAL

    def test_attributes(self):
        spec = parse_environment(
            "imported f : A -> B [freq=42] [style=constructor] [display=F]")
        (decl,) = spec.declarations
        assert decl.frequency == 42
        assert decl.style is RenderStyle.CONSTRUCTOR
        assert decl.display == "F"

    def test_subtype_statement(self):
        spec = parse_environment("subtype FileReader <: Reader")
        (edge,) = spec.subtypes
        assert (edge.subtype, edge.supertype) == ("FileReader", "Reader")

    def test_goal_statement(self):
        spec = parse_environment("goal SequenceInputStream")
        assert spec.goal.type == base("SequenceInputStream")

    def test_goal_function_type(self):
        spec = parse_environment("goal Tree -> Boolean")
        assert spec.goal.type == arrow(base("Tree"), base("Boolean"))

    def test_duplicate_goal_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_environment("goal A\ngoal B")

    def test_type_statement(self):
        spec = parse_environment("type Int String Boolean")
        assert spec.base_types == ["Int", "String", "Boolean"]

    def test_comments_and_blank_lines(self):
        spec = parse_environment("""
            # a comment

            local a : A   # trailing comment
        """)
        assert len(spec.declarations) == 1

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_environment("bogus a : A")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_environment("local a : A [sparkles=1]")

    def test_bad_frequency_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_environment("imported a : A [freq=lots]")

    def test_unknown_style_rejected(self):
        with pytest.raises(TypeSyntaxError):
            parse_environment("imported a : A [style=fancy]")

    def test_statement_must_end_cleanly(self):
        with pytest.raises(TypeSyntaxError):
            parse_environment("local a : A local b : B")
