"""Round-trip tests: environment -> .ins text -> environment."""

import pytest

from repro.core.environment import (Declaration, DeclKind, Environment,
                                    RenderSpec, RenderStyle)
from repro.core.subtyping import SubtypeGraph, environment_with_subtyping
from repro.core.types import base
from repro.lang.loader import load_environment_text
from repro.lang.parser import parse_type
from repro.lang.serializer import save_scene, serialize_environment


@pytest.fixture
def scene():
    environment = Environment([
        Declaration("body", parse_type("InputStream"), DeclKind.LOCAL),
        Declaration("helper", parse_type("int -> String"),
                    DeclKind.CLASS_MEMBER),
        Declaration("shared", parse_type("Object"),
                    DeclKind.PACKAGE_MEMBER),
        Declaration('"LPT1"', parse_type("String"), DeclKind.LITERAL,
                    render=RenderSpec(RenderStyle.LITERAL, '"LPT1"')),
        Declaration("java.io.FileWriter.new", parse_type("String -> FileWriter"),
                    DeclKind.IMPORTED, frequency=120,
                    render=RenderSpec(RenderStyle.CONSTRUCTOR, "FileWriter")),
    ])
    graph = SubtypeGraph()
    graph.add_edge("FileWriter", "Writer")
    return environment, graph, parse_type("FileWriter")


class TestRoundTrip:
    def test_declarations_survive(self, scene):
        environment, graph, goal = scene
        text = serialize_environment(environment, graph, goal)
        loaded = load_environment_text(text)
        assert len(loaded.environment) == len(environment)
        for declaration in environment:
            reloaded = loaded.environment.lookup(declaration.name)
            assert reloaded is not None
            assert reloaded.type == declaration.type
            assert reloaded.kind == declaration.kind
            assert reloaded.frequency == declaration.frequency

    def test_render_styles_survive(self, scene):
        environment, graph, goal = scene
        loaded = load_environment_text(
            serialize_environment(environment, graph, goal))
        ctor = loaded.environment.lookup("java.io.FileWriter.new")
        assert ctor.render.style is RenderStyle.CONSTRUCTOR
        assert ctor.render.display == "FileWriter"

    def test_subtypes_and_goal_survive(self, scene):
        environment, graph, goal = scene
        loaded = load_environment_text(
            serialize_environment(environment, graph, goal))
        assert loaded.subtypes.is_subtype("FileWriter", "Writer")
        assert loaded.goal == goal

    def test_generated_coercions_skipped(self, scene):
        environment, graph, goal = scene
        with_coercions = environment_with_subtyping(environment, graph)
        text = serialize_environment(with_coercions, graph, goal)
        assert "$coerce$" not in text
        loaded = load_environment_text(text)
        assert len(loaded.environment) == len(environment)

    def test_header_comments(self, scene):
        environment, graph, goal = scene
        text = serialize_environment(environment, graph, goal,
                                     header="benchmark 20\nFileWriter LPT1")
        assert text.startswith("# benchmark 20\n# FileWriter LPT1")
        load_environment_text(text)  # still parses

    def test_save_scene_writes_file(self, scene, tmp_path):
        environment, graph, goal = scene
        path = tmp_path / "scene.ins"
        save_scene(path, environment, graph, goal)
        loaded = load_environment_text(path.read_text(encoding="utf-8"))
        assert loaded.goal == goal

    def test_round_trip_synthesis_equivalence(self, scene):
        from repro.core.synthesizer import Synthesizer

        environment, graph, goal = scene
        direct = Synthesizer(environment, subtypes=graph).synthesize(goal, n=5)
        loaded = load_environment_text(
            serialize_environment(environment, graph, goal))
        reloaded = Synthesizer(loaded.environment,
                               subtypes=loaded.subtypes).synthesize(
            loaded.goal, n=5)
        assert [s.code for s in direct.snippets] == \
            [s.code for s in reloaded.snippets]
