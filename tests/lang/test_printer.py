"""Unit tests for the Scala-like snippet renderer."""

from repro.core.environment import (Declaration, DeclKind, Environment,
                                    RenderSpec, RenderStyle)
from repro.core.terms import Binder, LNFTerm, lnf
from repro.core.types import arrow, base, parse
from repro.lang.printer import render_ranked, render_snippet, render_type

A = base("A")


def _env(*declarations):
    return Environment(declarations)


def _decl(name, text, style, display=""):
    return Declaration(name, parse(text), DeclKind.IMPORTED,
                       render=RenderSpec(style, display))


class TestRenderType:
    def test_scala_arrow(self):
        assert render_type(parse("A -> B")) == "A => B"


class TestRenderSnippet:
    def test_value(self):
        env = _env(Declaration("body", A, DeclKind.LOCAL))
        assert render_snippet(lnf("body"), env) == "body"

    def test_constructor(self):
        env = _env(
            _decl("java.io.File.new", "String -> File",
                  RenderStyle.CONSTRUCTOR, "File"),
            Declaration("name", base("String"), DeclKind.LOCAL))
        term = lnf("java.io.File.new", lnf("name"))
        assert render_snippet(term, env) == "new File(name)"

    def test_constructor_display_defaults_to_simple_name(self):
        env = _env(_decl("java.awt.GridBagLayout.new", "GridBagLayout",
                         RenderStyle.CONSTRUCTOR))
        assert render_snippet(lnf("java.awt.GridBagLayout.new"), env) == \
            "new GridBagLayout()"

    def test_method_with_receiver(self):
        env = _env(
            _decl("Container.getLayout", "Container -> LayoutManager",
                  RenderStyle.METHOD, "getLayout"),
            Declaration("panel", base("Container"), DeclKind.LOCAL))
        term = lnf("Container.getLayout", lnf("panel"))
        assert render_snippet(term, env) == "panel.getLayout()"

    def test_method_with_arguments(self):
        env = _env(
            _decl("Tree.filter", "Tree -> Pred -> List",
                  RenderStyle.METHOD, "filter"),
            Declaration("tree", base("Tree"), DeclKind.LOCAL),
            Declaration("p", base("Pred"), DeclKind.LOCAL))
        term = lnf("Tree.filter", lnf("tree"), lnf("p"))
        assert render_snippet(term, env) == "tree.filter(p)"

    def test_field(self):
        env = _env(
            _decl("Point.x", "Point -> Int", RenderStyle.FIELD, "x"),
            Declaration("pt", base("Point"), DeclKind.LOCAL))
        assert render_snippet(lnf("Point.x", lnf("pt")), env) == "pt.x"

    def test_static_method(self):
        env = _env(_decl("System.currentTimeMillis", "Long",
                         RenderStyle.STATIC_METHOD, "System.currentTimeMillis"))
        assert render_snippet(lnf("System.currentTimeMillis"), env) == \
            "System.currentTimeMillis()"

    def test_static_field(self):
        env = _env(_decl("System.out", "PrintStream",
                         RenderStyle.STATIC_FIELD, "System.out"))
        assert render_snippet(lnf("System.out"), env) == "System.out"

    def test_literal(self):
        env = _env(Declaration('"LPT1"', base("String"), DeclKind.LITERAL,
                               render=RenderSpec(RenderStyle.LITERAL,
                                                 '"LPT1"')))
        assert render_snippet(lnf('"LPT1"'), env) == '"LPT1"'

    def test_lambda_single_binder(self):
        env = _env(_decl("p", "Tree -> Boolean", RenderStyle.FUNCTION, "p"))
        term = LNFTerm((Binder("var1", base("Tree")),), "p", (lnf("var1"),))
        assert render_snippet(term, env) == "var1 => p(var1)"

    def test_lambda_multiple_binders(self):
        env = _env(_decl("f", "A -> B -> C", RenderStyle.FUNCTION, "f"))
        term = LNFTerm((Binder("a", base("A")), Binder("b", base("B"))),
                       "f", (lnf("a"), lnf("b")))
        assert render_snippet(term, env) == "(a, b) => f(a, b)"

    def test_lambda_receiver_parenthesised(self):
        # A method whose receiver is itself a lambda must parenthesise it.
        env = _env(
            _decl("Wrapper.run", "Wrapper -> Result", RenderStyle.METHOD,
                  "run"),
            _decl("mk", "(A -> A) -> Wrapper", RenderStyle.FUNCTION, "mk"))
        identity = LNFTerm((Binder("x", A),), "x", ())
        term = lnf("Wrapper.run", lnf("mk", identity))
        assert render_snippet(term, env) == "mk(x => x).run()"

    def test_unknown_head_falls_back_to_name(self):
        env = _env(Declaration("known", A, DeclKind.LOCAL))
        assert render_snippet(lnf("binder7"), env) == "binder7"

    def test_coercion_style_transparent(self):
        env = _env(
            _decl("c", "Sub -> Super", RenderStyle.COERCION),
            Declaration("s", base("Sub"), DeclKind.LOCAL))
        assert render_snippet(lnf("c", lnf("s")), env) == "s"


class TestRenderRanked:
    def test_ranked_listing(self):
        from repro.core.synthesizer import Snippet

        snippets = [
            Snippet(lnf("a"), lnf("a"), 5.0, 1, "a"),
            Snippet(lnf("b"), lnf("b"), 7.0, 2, "new B()"),
        ]
        listing = render_ranked(snippets)
        assert listing.splitlines() == ["  1. a", "  2. new B()"]
