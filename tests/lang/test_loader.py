"""Unit tests for loading environment files into runtime objects."""

import pytest

from repro.core.environment import DeclKind, RenderStyle
from repro.core.errors import TypeSyntaxError
from repro.core.synthesizer import Synthesizer
from repro.core.types import base
from repro.lang.loader import load_environment_file, load_environment_text

EXAMPLE = """
# A miniature java.io scene.
subtype FileInputStream <: InputStream

local body : InputStream
imported java.io.FileInputStream.new : String -> FileInputStream \
[freq=300] [style=constructor] [display=FileInputStream]
imported java.io.SequenceInputStream.new : \
InputStream -> InputStream -> SequenceInputStream \
[freq=50] [style=constructor] [display=SequenceInputStream]
local sig : String

goal SequenceInputStream
"""


class TestLoadText:
    def test_environment_contents(self):
        loaded = load_environment_text(EXAMPLE)
        assert len(loaded.environment) == 4
        body = loaded.environment.lookup("body")
        assert body.kind is DeclKind.LOCAL
        ctor = loaded.environment.lookup("java.io.FileInputStream.new")
        assert ctor.frequency == 300
        assert ctor.render.style is RenderStyle.CONSTRUCTOR

    def test_subtype_graph(self):
        loaded = load_environment_text(EXAMPLE)
        assert loaded.subtypes.is_subtype("FileInputStream", "InputStream")

    def test_goal(self):
        loaded = load_environment_text(EXAMPLE)
        assert loaded.goal == base("SequenceInputStream")

    def test_literal_render_defaults_to_verbatim(self):
        loaded = load_environment_text('literal "LPT1" : String')
        decl = loaded.environment.lookup('"LPT1"')
        assert decl.render.style is RenderStyle.LITERAL
        assert decl.render.display == '"LPT1"'

    def test_loaded_environment_synthesizes(self):
        loaded = load_environment_text(EXAMPLE)
        result = Synthesizer(loaded.environment,
                             subtypes=loaded.subtypes).synthesize(loaded.goal)
        assert result.inhabited
        codes = [snippet.code for snippet in result.snippets]
        assert any("SequenceInputStream" in code for code in codes)


class TestLoadFile:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "scene.ins"
        path.write_text(EXAMPLE, encoding="utf-8")
        loaded = load_environment_file(path)
        assert loaded.goal == base("SequenceInputStream")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TypeSyntaxError):
            load_environment_file(tmp_path / "missing.ins")
