"""Unit tests for the declaration-language lexer."""

import pytest

from repro.core.errors import TypeSyntaxError
from repro.lang.lexer import TokenKind, tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


def texts(text):
    return [token.text for token in tokenize(text)
            if token.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]


class TestBasicTokens:
    def test_identifier(self):
        assert kinds("foo") == [TokenKind.IDENT, TokenKind.EOF]

    def test_qualified_identifier_single_token(self):
        assert texts("java.io.FileInputStream.new") == \
            ["java.io.FileInputStream.new"]

    def test_arrow_forms(self):
        assert kinds("A -> B")[1] == TokenKind.ARROW
        assert kinds("A => B")[1] == TokenKind.ARROW

    def test_subtype_operator(self):
        assert kinds("A <: B")[1] == TokenKind.SUBTYPE

    def test_punctuation(self):
        assert kinds("( ) [ ] : = ,")[:-1] == [
            TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.LBRACKET,
            TokenKind.RBRACKET, TokenKind.COLON, TokenKind.EQUALS,
            TokenKind.COMMA]

    def test_number(self):
        token = tokenize("1234")[0]
        assert token.kind is TokenKind.NUMBER
        assert token.text == "1234"

    def test_string(self):
        token = tokenize('"LPT1"')[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "LPT1"

    def test_string_with_escape(self):
        token = tokenize(r'"a\"b"')[0]
        assert token.text == 'a"b'


class TestStructure:
    def test_newlines_tokenised(self):
        assert kinds("a\nb") == [TokenKind.IDENT, TokenKind.NEWLINE,
                                 TokenKind.IDENT, TokenKind.EOF]

    def test_comments_skipped(self):
        assert texts("a # comment -> ignored") == ["a"]

    def test_comment_does_not_eat_newline(self):
        assert kinds("a # c\nb")[1] == TokenKind.NEWLINE

    def test_backslash_line_continuation(self):
        assert texts("a \\\nb") == ["a", "b"]
        assert TokenKind.NEWLINE not in kinds("a \\\nb")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        b = [t for t in tokens if t.text == "b"][0]
        assert (b.line, b.column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(TypeSyntaxError):
            tokenize('"never closed')

    def test_string_with_newline(self):
        with pytest.raises(TypeSyntaxError):
            tokenize('"a\nb"')

    def test_unexpected_character(self):
        with pytest.raises(TypeSyntaxError):
            tokenize("a ~ b")

    def test_trailing_dot_identifier(self):
        with pytest.raises(TypeSyntaxError):
            tokenize("java.io. x")
