"""Curry–Howard translation between inhabitation queries and formulas.

Simple types and implicational propositional formulas are isomorphic:
basic types are atoms, arrows are implications.  An environment plus a goal
type becomes a sequent ``{formula of each declaration} |- formula of goal``,
which is what the baseline provers consume in the Table 2 comparison.

Subtype edges are translated exactly like the synthesizer treats them (§6):
one extra hypothesis ``sub -> super`` per direct edge.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.environment import Environment
from repro.core.subtyping import SubtypeGraph
from repro.core.types import Arrow, BaseType, Type
from repro.provers.formulas import Atom, Formula, Implication


def type_to_formula(tpe: Type) -> Formula:
    """Curry–Howard image of a simple type."""
    if isinstance(tpe, BaseType):
        return Atom(tpe.name)
    assert isinstance(tpe, Arrow)
    return Implication(type_to_formula(tpe.argument),
                       type_to_formula(tpe.result))


def formula_to_type(formula: Formula) -> Type:
    """Inverse of :func:`type_to_formula` (implicational fragment only)."""
    if isinstance(formula, Atom):
        return BaseType(formula.name)
    if isinstance(formula, Implication):
        return Arrow(formula_to_type(formula.left),
                     formula_to_type(formula.right))
    raise ValueError(f"not an implicational formula: {formula}")


def environment_to_sequent(environment: Environment, goal: Type,
                           subtypes: Optional[SubtypeGraph] = None,
                           ) -> tuple[list[Formula], Formula]:
    """Translate an inhabitation query into ``(hypotheses, goal formula)``.

    Duplicate hypothesis formulas are collapsed — provability only depends
    on the set of hypotheses, and the collapse is the same economy the
    succinct representation exploits.
    """
    seen: set[Formula] = set()
    hypotheses: list[Formula] = []
    for declaration in environment.declarations():
        formula = type_to_formula(declaration.type)
        if formula not in seen:
            seen.add(formula)
            hypotheses.append(formula)
    if subtypes is not None:
        for sub, sup in subtypes.edges():
            formula = Implication(Atom(sub), Atom(sup))
            if formula not in seen:
                seen.add(formula)
                hypotheses.append(formula)
    return hypotheses, type_to_formula(goal)
