"""Dyckhoff's contraction-free sequent calculus G4ip (LJT).

A complete, terminating decision procedure for propositional intuitionistic
logic with no loop checking: the left-implication rule is split into four
cases by the shape of the implication's antecedent, each of which strictly
decreases a multiset ordering (Dyckhoff 1992).  This is the proof-search
family the paper's fCube baseline belongs to — full backward sequent search
over the whole hypothesis multiset, which is exactly why it struggles on the
3000+-declaration environments where the succinct engine shines.

Rules implemented (Gamma is a set — G4ip admits set-based contexts):

=============  =========================================================
axiom          ``Gamma, p |- p``                 (p atomic)
L-bottom       ``Gamma, _|_ |- G``
R-impl         ``Gamma, A |- B  =>  Gamma |- A -> B``
R-conj         both conjuncts
R-disj         either disjunct (branching)
L-conj         ``A /\\ B`` replaced by ``A, B``
L-disj         branch on both disjuncts (invertible)
L0-impl        ``p, p -> B``  replaced by  ``p, B``  (p atomic in Gamma)
L-conj-impl    ``(A /\\ B) -> C``  replaced by  ``A -> (B -> C)``
L-disj-impl    ``(A \\/ B) -> C``  replaced by  ``A -> C, B -> C``
L-bottom-impl  ``_|_ -> C``  dropped
L-impl-impl    ``(A -> B) -> C``: prove ``B -> C |- A -> B`` and ``C |- G``
=============  =========================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.errors import BudgetExhaustedError
from repro.provers.formulas import (Atom, Bottom, Conjunction, Disjunction,
                                    Formula, Implication)

Sequent = tuple[frozenset, Formula]  # (hypotheses, goal)


@dataclass
class G4ipStats:
    """Search-effort counters for benchmarking."""

    sequents_visited: int = 0
    cache_hits: int = 0
    max_depth: int = 0


class G4ipProver:
    """A reusable G4ip prover with memoisation across queries."""

    name = "g4ip"

    def __init__(self, time_limit: Optional[float] = None):
        self._memo: dict[Sequent, bool] = {}
        self._time_limit = time_limit
        self._deadline: Optional[float] = None
        self.stats = G4ipStats()

    def prove(self, hypotheses: Iterable[Formula], goal: Formula) -> bool:
        """Decide ``hypotheses |- goal``.

        Raises :class:`BudgetExhaustedError` when the configured time limit
        runs out — callers treat that as a timeout, mirroring how the paper
        reports prover timeouts.
        """
        if self._time_limit is not None:
            self._deadline = time.perf_counter() + self._time_limit
        return self._prove(frozenset(hypotheses), goal, 0)

    # -- the calculus ---------------------------------------------------------

    def _prove(self, gamma: frozenset, goal: Formula, depth: int) -> bool:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise BudgetExhaustedError("G4ip time limit exceeded")

        key = (gamma, goal)
        cached = self._memo.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.sequents_visited += 1
        self.stats.max_depth = max(self.stats.max_depth, depth)

        result = self._step(gamma, goal, depth)
        self._memo[key] = result
        return result

    def _step(self, gamma: frozenset, goal: Formula, depth: int) -> bool:
        # Saturate the invertible rules iteratively (rather than one
        # recursion level per rule application) so that multi-thousand-
        # hypothesis environments do not exhaust the Python stack.
        working = set(gamma)
        while True:
            if self._deadline is not None and \
                    time.perf_counter() > self._deadline:
                raise BudgetExhaustedError("G4ip time limit exceeded")

            # R-impl is invertible: move antecedents into the context.
            if isinstance(goal, Implication):
                working.add(goal.left)
                goal = goal.right
                continue

            applied = False
            for hypothesis in list(working):
                if isinstance(hypothesis, Conjunction):
                    working.discard(hypothesis)
                    working.add(hypothesis.left)
                    working.add(hypothesis.right)
                    applied = True
                    break
                if isinstance(hypothesis, Implication):
                    antecedent = hypothesis.left
                    if isinstance(antecedent, Bottom):
                        working.discard(hypothesis)
                        applied = True
                        break
                    if isinstance(antecedent, Atom) and antecedent in working:
                        working.discard(hypothesis)
                        working.add(hypothesis.right)
                        applied = True
                        break
                    if isinstance(antecedent, Conjunction):
                        working.discard(hypothesis)
                        working.add(Implication(
                            antecedent.left,
                            Implication(antecedent.right, hypothesis.right)))
                        applied = True
                        break
                    if isinstance(antecedent, Disjunction):
                        working.discard(hypothesis)
                        working.add(Implication(antecedent.left,
                                                hypothesis.right))
                        working.add(Implication(antecedent.right,
                                                hypothesis.right))
                        applied = True
                        break
            if not applied:
                break
        gamma = frozenset(working)

        # Axiom and L-bottom on the saturated sequent.
        if isinstance(goal, Atom) and goal in gamma:
            return True
        if Bottom() in gamma:
            return True

        # Invertible right rule for conjunction (branches, so memoised
        # recursion rather than the loop above).
        if isinstance(goal, Conjunction):
            return (self._prove(gamma, goal.left, depth + 1)
                    and self._prove(gamma, goal.right, depth + 1))

        # L-disj (invertible but branching in work, done after the cheap ones).
        for hypothesis in gamma:
            if isinstance(hypothesis, Disjunction):
                rest = gamma - {hypothesis}
                return (self._prove(rest | {hypothesis.left}, goal, depth + 1)
                        and self._prove(rest | {hypothesis.right}, goal,
                                        depth + 1))

        # Non-invertible rules.
        if isinstance(goal, Disjunction):
            if self._prove(gamma, goal.left, depth + 1):
                return True
            if self._prove(gamma, goal.right, depth + 1):
                return True

        # L-impl-impl: try each nested implication hypothesis.
        for hypothesis in gamma:
            if isinstance(hypothesis, Implication) and \
                    isinstance(hypothesis.left, Implication):
                nested = hypothesis.left          # A -> B
                rest = gamma - {hypothesis}
                premise_left = rest | {Implication(nested.right,
                                                   hypothesis.right)}
                if self._prove(premise_left, nested, depth + 1) and \
                        self._prove(rest | {hypothesis.right}, goal,
                                    depth + 1):
                    return True

        return False


def prove_g4ip(hypotheses: Iterable[Formula], goal: Formula,
               time_limit: Optional[float] = None) -> bool:
    """One-shot G4ip provability check."""
    return G4ipProver(time_limit=time_limit).prove(hypotheses, goal)
