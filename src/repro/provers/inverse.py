"""A forward-saturating inverse-method prover (Imogen's family).

The inverse method decides ``Gamma_0 |- G`` for the implicational fragment
of propositional intuitionistic logic by *forward* saturation over sequents
built from the signed subformulas of the query:

* every derived sequent has the form ``Delta |- C`` with ``Delta`` a set of
  negative subformulas and ``C`` a positive subformula;
* initial sequents are ``{p} |- p`` for atoms with both polarities;
* rules (with implicit weakening handled by subsumption):

  - **R->**: from ``Delta |- B`` derive ``Delta - {A} |- A -> B`` for each
    positive subformula ``A -> B``;
  - **L->**: from ``Delta1 |- A`` and ``Delta2 |- C`` with ``B`` in
    ``Delta2`` derive ``Delta1 + (Delta2 - {B}) + {A -> B} |- C`` for each
    negative subformula ``A -> B``;

* a sequent ``Delta |- C`` *subsumes* ``Delta' |- C`` when
  ``Delta`` is a subset of ``Delta'``; only unsubsumed sequents are kept;
* success when some derived ``Delta |- G`` has ``Delta`` inside the
  hypothesis set.

Saturation over all hypothesis subformulas is precisely why this family
slows down on huge environments relative to the goal-directed succinct
engine — the effect Table 2's Imogen column shows.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.errors import BudgetExhaustedError
from repro.provers.formulas import (Atom, Formula, Implication,
                                    is_implicational)

Sequent = tuple[frozenset, Formula]


@dataclass
class InverseStats:
    """Search-effort counters for benchmarking."""

    generated: int = 0
    kept: int = 0
    subsumed: int = 0
    iterations: int = 0


def _signed_subformulas(hypotheses: list[Formula], goal: Formula,
                        ) -> tuple[set, set]:
    """Collect (negative, positive) signed subformulas of the query."""
    negative: set = set()
    positive: set = set()

    def walk(formula: Formula, sign: bool) -> None:
        target = positive if sign else negative
        if formula in target:
            return
        target.add(formula)
        if isinstance(formula, Implication):
            walk(formula.left, not sign)
            walk(formula.right, sign)

    walk(goal, True)
    for hypothesis in hypotheses:
        walk(hypothesis, False)
    return negative, positive


class InverseMethodProver:
    """Forward inverse-method prover for implicational formulas."""

    name = "inverse"

    def __init__(self, time_limit: Optional[float] = None,
                 max_sequents: int = 200_000):
        self._time_limit = time_limit
        self._max_sequents = max_sequents
        self.stats = InverseStats()

    def prove(self, hypotheses: Iterable[Formula], goal: Formula) -> bool:
        """Decide ``hypotheses |- goal`` (implicational fragment only)."""
        hypotheses = list(hypotheses)
        if not is_implicational(goal) or \
                not all(is_implicational(h) for h in hypotheses):
            raise ValueError("the inverse-method prover handles the "
                             "implicational fragment only")
        deadline = (time.perf_counter() + self._time_limit
                    if self._time_limit is not None else None)
        hypothesis_set = frozenset(hypotheses)

        negative, positive = _signed_subformulas(hypotheses, goal)
        negative_implications = [f for f in negative
                                 if isinstance(f, Implication)]
        positive_implications = [f for f in positive
                                 if isinstance(f, Implication)]

        # Initial sequents: {p} |- p for atoms of both polarities.
        both = {f for f in negative if isinstance(f, Atom)} & \
               {f for f in positive if isinstance(f, Atom)}
        database: list[Sequent] = []
        queue: list[Sequent] = [(frozenset((p,)), p) for p in sorted(
            both, key=lambda a: a.name)]

        def goal_reached(sequent: Sequent) -> bool:
            delta, conclusion = sequent
            return conclusion == goal and delta <= hypothesis_set

        def subsumed_by_database(candidate: Sequent) -> bool:
            delta, conclusion = candidate
            for existing_delta, existing_conclusion in database:
                if existing_conclusion == conclusion and \
                        existing_delta <= delta:
                    return True
            return False

        def add(candidate: Sequent) -> bool:
            """Insert with subsumption; returns True if goal reached."""
            self.stats.generated += 1
            if subsumed_by_database(candidate):
                self.stats.subsumed += 1
                return False
            queue.append(candidate)
            return goal_reached(candidate)

        for sequent in list(queue):
            if goal_reached(sequent):
                return True

        while queue:
            self.stats.iterations += 1
            if deadline is not None and time.perf_counter() > deadline:
                raise BudgetExhaustedError("inverse method time limit exceeded")
            if len(database) > self._max_sequents:
                raise BudgetExhaustedError("inverse method sequent budget "
                                           "exceeded")

            sequent = queue.pop(0)
            if subsumed_by_database(sequent):
                self.stats.subsumed += 1
                continue
            # Retire sequents the new one subsumes.
            delta, conclusion = sequent
            database[:] = [(d, c) for d, c in database
                           if not (c == conclusion and delta <= d)]
            database.append(sequent)
            self.stats.kept += 1

            # R->: close the conclusion under positive implications.
            for implication in positive_implications:
                if implication.right == conclusion:
                    candidate = (delta - {implication.left}, implication)
                    if add(candidate):
                        return True

            # L->: resolve against every database partner.
            for implication in negative_implications:
                for partner_delta, partner_conclusion in list(database):
                    # sequent proves the antecedent, partner consumes B.
                    if conclusion == implication.left and \
                            implication.right in partner_delta:
                        merged = (delta | (partner_delta -
                                           {implication.right})
                                  | {implication})
                        if add((merged, partner_conclusion)):
                            return True
                    # partner proves the antecedent, sequent consumes B.
                    if partner_conclusion == implication.left and \
                            implication.right in delta:
                        merged = (partner_delta | (delta - {implication.right})
                                  | {implication})
                        if add((merged, conclusion)):
                            return True

        return False


def prove_inverse(hypotheses: Iterable[Formula], goal: Formula,
                  time_limit: Optional[float] = None) -> bool:
    """One-shot inverse-method provability check."""
    return InverseMethodProver(time_limit=time_limit).prove(hypotheses, goal)
