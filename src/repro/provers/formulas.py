"""Propositional intuitionistic formulas.

The inhabitation queries the benchmarks produce are purely implicational
(Curry–Howard images of simple types), but the G4ip prover supports the full
propositional language — conjunction, disjunction and falsum — so it is a
credible stand-in for a general prover like fCube.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Union


@dataclass(frozen=True)
class Atom:
    """A propositional atom."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Implication:
    """Intuitionistic implication ``left -> right``."""

    left: "Formula"
    right: "Formula"

    def __str__(self) -> str:
        return format_formula(self)


@dataclass(frozen=True)
class Conjunction:
    """``left /\\ right``."""

    left: "Formula"
    right: "Formula"

    def __str__(self) -> str:
        return format_formula(self)


@dataclass(frozen=True)
class Disjunction:
    """``left \\/ right``."""

    left: "Formula"
    right: "Formula"

    def __str__(self) -> str:
        return format_formula(self)


@dataclass(frozen=True)
class Bottom:
    """Falsum."""

    def __str__(self) -> str:
        return "_|_"


Formula = Union[Atom, Implication, Conjunction, Disjunction, Bottom]


def atom(name: str) -> Atom:
    return Atom(name)


def implies(*formulas: Formula) -> Formula:
    """Right-associated implication chain ``f1 -> f2 -> ... -> fn``."""
    if not formulas:
        raise ValueError("implies() requires at least one formula")
    result = formulas[-1]
    for left in reversed(formulas[:-1]):
        result = Implication(left, result)
    return result


def conj(*formulas: Formula) -> Formula:
    """Right-associated conjunction."""
    if not formulas:
        raise ValueError("conj() requires at least one formula")
    result = formulas[-1]
    for left in reversed(formulas[:-1]):
        result = Conjunction(left, result)
    return result


def disj(*formulas: Formula) -> Formula:
    """Right-associated disjunction."""
    if not formulas:
        raise ValueError("disj() requires at least one formula")
    result = formulas[-1]
    for left in reversed(formulas[:-1]):
        result = Disjunction(left, result)
    return result


def is_implicational(formula: Formula) -> bool:
    """True when *formula* uses only atoms and implication."""
    if isinstance(formula, Atom):
        return True
    if isinstance(formula, Implication):
        return is_implicational(formula.left) and is_implicational(formula.right)
    return False


def atoms_of(formula: Formula) -> frozenset[str]:
    """All atom names occurring in *formula*."""
    if isinstance(formula, Atom):
        return frozenset((formula.name,))
    if isinstance(formula, Bottom):
        return frozenset()
    return atoms_of(formula.left) | atoms_of(formula.right)


def formula_size(formula: Formula) -> int:
    """Connective-and-atom count, a standard size measure."""
    if isinstance(formula, (Atom, Bottom)):
        return 1
    return 1 + formula_size(formula.left) + formula_size(formula.right)


def format_formula(formula: Formula) -> str:
    """Render with minimal parentheses; implication associates right."""
    if isinstance(formula, Atom):
        return formula.name
    if isinstance(formula, Bottom):
        return "_|_"
    if isinstance(formula, Implication):
        left = format_formula(formula.left)
        if isinstance(formula.left, Implication):
            left = f"({left})"
        return f"{left} -> {format_formula(formula.right)}"
    symbol = "/\\" if isinstance(formula, Conjunction) else "\\/"
    left = format_formula(formula.left)
    right = format_formula(formula.right)
    if not isinstance(formula.left, (Atom, Bottom)):
        left = f"({left})"
    if not isinstance(formula.right, (Atom, Bottom)):
        right = f"({right})"
    return f"{left} {symbol} {right}"
