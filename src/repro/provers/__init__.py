"""Baseline intuitionistic provers (paper §7.5, Table 2's last columns).

The paper compares InSynth's succinct-calculus prover against two
state-of-the-art intuitionistic theorem provers: Imogen (inverse method) and
fCube (sequent/tableau style).  Neither binary is available offline, so this
package implements from scratch the same two proof-search families:

* :mod:`repro.provers.g4ip` — Dyckhoff's contraction-free sequent calculus
  G4ip (terminating backward search, the family fCube belongs to);
* :mod:`repro.provers.inverse` — a forward-saturating inverse-method prover
  with subsumption for the implicational fragment (Imogen's family);
* :mod:`repro.provers.interface` — a common :class:`Prover` API, including
  an adapter exposing the succinct-calculus engine as a prover, so the three
  can be timed on identical queries.

Type inhabitation for the simply typed lambda calculus corresponds to
provability in the implicational fragment of propositional intuitionistic
logic (Curry–Howard), which is what :mod:`repro.provers.translation`
mediates.
"""

from repro.provers.formulas import (Atom, Bottom, Conjunction, Disjunction,
                                    Formula, Implication, atom, conj, disj,
                                    implies)
from repro.provers.g4ip import G4ipProver, prove_g4ip
from repro.provers.interface import ProofResult, Prover, SuccinctProver
from repro.provers.inverse import InverseMethodProver, prove_inverse
from repro.provers.translation import (environment_to_sequent,
                                       formula_to_type, type_to_formula)

__all__ = [
    "Atom", "Bottom", "Conjunction", "Disjunction", "Formula", "Implication",
    "atom", "conj", "disj", "implies",
    "G4ipProver", "prove_g4ip",
    "ProofResult", "Prover", "SuccinctProver",
    "InverseMethodProver", "prove_inverse",
    "environment_to_sequent", "formula_to_type", "type_to_formula",
]
