"""A common prover interface for the Table 2 prover comparison.

All three engines — the succinct-calculus prover (InSynth's own), G4ip
(fCube's family) and the inverse method (Imogen's family) — are exposed
behind one ``prove_timed`` API returning a :class:`ProofResult`, so the
benchmark harness can time them on identical queries and report timeouts
uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Protocol

from repro.core.config import SynthesisConfig
from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.errors import BudgetExhaustedError
from repro.core.synthesizer import Synthesizer
from repro.provers.formulas import Formula
from repro.provers.g4ip import G4ipProver
from repro.provers.inverse import InverseMethodProver
from repro.provers.translation import formula_to_type


@dataclass(frozen=True)
class ProofResult:
    """Outcome of one timed provability query."""

    prover: str
    provable: Optional[bool]  # None on timeout
    seconds: float
    timed_out: bool = False

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1000.0


class Prover(Protocol):
    """Anything that can decide ``hypotheses |- goal``."""

    name: str

    def prove(self, hypotheses: Iterable[Formula], goal: Formula) -> bool:
        ...


class SuccinctProver:
    """InSynth's own engine behind the common prover interface.

    Hypothesis formulas become a fresh environment of anonymous
    declarations (Curry–Howard in reverse); proving is exploration +
    pattern generation only, no reconstruction — exactly the paper's
    "prover" measurement.
    """

    name = "succinct"

    def __init__(self, time_limit: Optional[float] = None):
        self._time_limit = time_limit

    def prove(self, hypotheses: Iterable[Formula], goal: Formula) -> bool:
        declarations = [
            Declaration(f"h{index}", formula_to_type(formula), DeclKind.LOCAL)
            for index, formula in enumerate(hypotheses)
        ]
        environment = Environment(declarations)
        config = SynthesisConfig(prover_time_limit=self._time_limit,
                                 prioritised_exploration=False)
        synthesizer = Synthesizer(environment, config=config)
        space, patterns = synthesizer.prove(formula_to_type(goal))
        if space.truncated:
            raise BudgetExhaustedError("succinct prover time limit exceeded")
        return patterns.is_inhabited(space.root)


def prove_timed(prover: Prover, hypotheses: Iterable[Formula],
                goal: Formula) -> ProofResult:
    """Run one prover on one query, catching timeouts."""
    hypotheses = list(hypotheses)
    start = time.perf_counter()
    try:
        provable = prover.prove(hypotheses, goal)
    except BudgetExhaustedError:
        return ProofResult(prover.name, None,
                           time.perf_counter() - start, timed_out=True)
    return ProofResult(prover.name, provable, time.perf_counter() - start)


def default_provers(time_limit: Optional[float] = 5.0) -> list[Prover]:
    """The three engines of the Table 2 comparison."""
    return [
        SuccinctProver(time_limit=time_limit),
        InverseMethodProver(time_limit=time_limit),
        G4ipProver(time_limit=time_limit),
    ]
