"""repro — a reproduction of *Complete Completion using Types and Weights*
(Gvero, Kuncak, Kuraj, Piskac; PLDI 2013), the InSynth system.

Public API quick tour::

    from repro import (Declaration, DeclKind, Environment, Synthesizer,
                       WeightPolicy, parse_type)

    env = Environment([
        Declaration("name", parse_type("String"), DeclKind.LOCAL),
        Declaration("java.io.FileInputStream.new",
                    parse_type("String -> FileInputStream"),
                    DeclKind.IMPORTED, frequency=120),
    ])
    result = Synthesizer(env).synthesize(parse_type("FileInputStream"))
    for snippet in result.snippets:
        print(snippet.rank, snippet.code)

Packages:

* :mod:`repro.core` — succinct types, exploration, patterns, reconstruction,
  weights, subtyping (the paper's contribution);
* :mod:`repro.lang` — declaration-language frontend and snippet renderer;
* :mod:`repro.javamodel` — synthetic typed Java/Scala API model and program
  points;
* :mod:`repro.corpus` — corpus generation and frequency mining (§7.3);
* :mod:`repro.provers` — baseline intuitionistic provers (G4ip, inverse
  method) used in the Table 2 comparison;
* :mod:`repro.bench` — the 50-benchmark suite of Table 2 and its runner;
* :mod:`repro.engine` — the serving layer: a long-lived
  :class:`~repro.engine.CompletionEngine` with prepared scenes, an LRU
  result cache and a batched (optionally multi-process) query API.
"""

from repro.core import (Arrow, BaseType, Binder, Declaration, DeclKind,
                        Environment, LNFTerm, RenderSpec, RenderStyle,
                        Snippet, SubtypeGraph, SuccinctType, SynthesisConfig,
                        SynthesisResult, Synthesizer, Type, WeightPolicy,
                        arrow, base, declaration, erase_coercions, lnf,
                        sigma, synthesize)
from repro.engine import (CompletionEngine, EngineQuery, EngineResult,
                          PreparedScene)
from repro.lang.parser import parse_environment, parse_type
from repro.lang.printer import render_ranked, render_snippet

__version__ = "1.0.0"

__all__ = [
    "Arrow", "BaseType", "Binder", "Declaration", "DeclKind", "Environment",
    "LNFTerm", "RenderSpec", "RenderStyle", "Snippet", "SubtypeGraph",
    "SuccinctType", "SynthesisConfig", "SynthesisResult", "Synthesizer",
    "Type", "WeightPolicy", "arrow", "base", "declaration",
    "erase_coercions", "lnf", "sigma", "synthesize",
    "parse_environment", "parse_type", "render_ranked", "render_snippet",
    "CompletionEngine", "EngineQuery", "EngineResult", "PreparedScene",
    "__version__",
]
