"""Edit-session micro-benchmark — the ``BENCH_edit.json`` emitter.

Measures the incremental serving path's core claim on the largest
bundled Table 2 scene (row 28, 10,700 declarations): a
single-declaration delta applied through
:func:`~repro.incremental.delta.apply_scene_delta` (arena adoption,
MATCH-index merge, weight-memo transplant) must beat the full rebuild a
plain ``/v1/register-scene`` would do — re-extending, re-indexing and
re-summarising the scene from scratch.  Both an ``add`` and a ``remove``
are timed; every repeat uses a distinct declaration so neither path can
hide behind the engine's scene-table dedup, and the rebuild side runs on
a throwaway engine for the same reason.

Usage::

    python -m repro.bench.edit_bench --output BENCH_edit.json
    python -m repro.bench.edit_bench --check BENCH_edit.json \
        [--output benchmarks/out/BENCH_edit.json]

The built-in gate is structural, not trajectory-based: the run fails
(exit 1) when the median delta re-prepare does not beat the median full
rebuild for a single-declaration edit — that ordering is the reason the
incremental subsystem exists, so losing it is a bug, not noise.
``--check`` additionally fails when the summed delta time regresses more
than ``--max-regression`` against the committed report.  CI runs this
non-blocking and uploads the measured report next to ``BENCH_core``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Optional, Sequence

from repro.bench.core_bench import LARGEST_ROW

DEFAULT_REPEATS = 5

SCHEMA = "bench-edit/v1"


def _prepare_base(engine) -> tuple:
    """The row-28 serving scene, prepared once: (spec, prepared)."""
    from repro.bench.suite import BENCHMARKS, build_scene

    spec = BENCHMARKS[LARGEST_ROW - 1]
    scene = build_scene(spec)
    prepared = engine.prepare(scene.environment, scene.subtypes,
                              goal=scene.goal, name=spec.name)
    return spec, prepared


def _rebuild_ms(edited) -> float:
    """Wall time of the full path: re-prepare the edited scene from scratch.

    A throwaway engine sidesteps the scene-table dedup, and a fresh
    ``Environment`` over the same declaration objects forces the whole
    prepare — coercion extension, succinct signature, MATCH indexes —
    to run again, exactly what ``/v1/register-scene`` pays on a
    re-register.  (Parsing is deliberately excluded: it would only pad
    the rebuild side, and the delta path skips it too.)
    """
    from repro.core.environment import Environment
    from repro.engine import CompletionEngine

    throwaway = CompletionEngine()
    declarations = tuple(edited.base_environment)
    start = time.perf_counter()
    rebuilt = Environment(declarations)
    throwaway.prepare(rebuilt, edited.subtypes, goal=edited.goal,
                      name="rebuild")
    return (time.perf_counter() - start) * 1000


def measure(repeats: int = DEFAULT_REPEATS) -> dict:
    """Time delta-vs-rebuild for single-declaration edits of row 28."""
    from repro.engine import CompletionEngine
    from repro.incremental.delta import DeltaOp, apply_scene_delta

    engine = CompletionEngine()
    spec, prepared = _prepare_base(engine)

    # Distinct existing declarations to remove, one per repeat — locals
    # and imports only (removing the goal literal would be a different
    # scene class entirely).
    removable = [decl.name for decl in prepared.base_environment][:repeats]

    sections = {}
    for kind in ("add", "remove"):
        delta_samples, rebuild_samples = [], []
        for index in range(repeats):
            if kind == "add":
                ops = [DeltaOp.add(f"local bench_probe_{index} : String")]
            else:
                ops = [DeltaOp.remove(removable[index])]
            start = time.perf_counter()
            outcome = apply_scene_delta(engine, prepared, ops,
                                        name=spec.name)
            delta_samples.append((time.perf_counter() - start) * 1000)
            assert not outcome.reused, "benchmark edit hit the scene table"
            rebuild_samples.append(_rebuild_ms(outcome.prepared))
        sections[kind] = {
            "delta_ms": round(statistics.median(delta_samples), 2),
            "rebuild_ms": round(statistics.median(rebuild_samples), 2),
            "delta_best_ms": round(min(delta_samples), 2),
            "rebuild_best_ms": round(min(rebuild_samples), 2),
            "speedup": round(statistics.median(rebuild_samples)
                             / max(statistics.median(delta_samples), 1e-9),
                             2),
        }
    return {
        "row": LARGEST_ROW,
        "name": spec.name,
        "declarations": spec.row.n_initial,
        "repeats": repeats,
        "edits": sections,
    }


def build_report(measured: dict) -> dict:
    """The ``BENCH_edit.json`` document for one measurement."""
    edits = measured["edits"]
    return {
        "schema": SCHEMA,
        "protocol": {
            "statistic": f"median of {measured['repeats']} "
                         "single-declaration edits (distinct declaration "
                         "per repeat; rebuild on a throwaway engine)",
            "scene": f"Table 2 row {measured['row']} "
                     f"({measured['declarations']} declarations)",
            "paths": "delta = apply_scene_delta over the warm prepared "
                     "scene; rebuild = fresh Environment + prepare from "
                     "scratch on a throwaway engine",
        },
        "current": measured,
        "summary": {
            "delta_ms_sum": round(sum(e["delta_ms"]
                                      for e in edits.values()), 2),
            "rebuild_ms_sum": round(sum(e["rebuild_ms"]
                                        for e in edits.values()), 2),
        },
    }


def check_ordering(measured: dict) -> list[str]:
    """The structural gate: delta must beat rebuild on every edit kind."""
    failures = []
    for kind, section in measured["edits"].items():
        if section["delta_ms"] >= section["rebuild_ms"]:
            failures.append(
                f"{kind}: delta re-prepare {section['delta_ms']:.1f} ms "
                f"does not beat the full rebuild "
                f"{section['rebuild_ms']:.1f} ms on row {measured['row']}")
    return failures


def check_regression(committed: dict, measured: dict,
                     max_regression: float) -> list[str]:
    """Trajectory gate of *measured* against the *committed* report."""
    reference = committed.get("current", {}).get("edits", {})
    common = [kind for kind in reference if kind in measured["edits"]]
    if not common:
        return ["no comparable edit kinds between committed and measured"]
    committed_sum = sum(reference[kind]["delta_ms"] for kind in common)
    measured_sum = sum(measured["edits"][kind]["delta_ms"]
                       for kind in common)
    allowed = committed_sum * (1.0 + max_regression)
    if measured_sum > allowed:
        return [f"delta-time regression: {measured_sum:.1f} ms summed over "
                f"{common} exceeds the committed {committed_sum:.1f} ms by "
                f"more than {max_regression:.0%} (limit {allowed:.1f} ms)"]
    return []


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.edit_bench",
        description="measure delta re-prepare vs full rebuild for "
                    "single-declaration edits of the largest scene")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help=f"edits timed per kind (default "
                             f"{DEFAULT_REPEATS})")
    parser.add_argument("--output", default=None,
                        help="write the measured report to this path")
    parser.add_argument("--check", default=None, metavar="BENCH_edit.json",
                        help="compare against a committed report and fail "
                             "on delta-time regression")
    parser.add_argument("--max-regression", type=float, default=0.5,
                        help="allowed fractional delta-time regression "
                             "for --check (default 0.5 — single edits "
                             "are noisy)")
    args = parser.parse_args(argv)

    committed = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            committed = json.load(handle)

    measured = measure(repeats=args.repeats)
    report = build_report(measured)

    for kind, section in measured["edits"].items():
        print(f"{kind}: delta {section['delta_ms']:.1f} ms vs rebuild "
              f"{section['rebuild_ms']:.1f} ms "
              f"({section['speedup']:.1f}x) on "
              f"{measured['declarations']} declarations")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    failures = check_ordering(measured)
    if committed is not None and not failures:
        failures = check_regression(committed, measured,
                                    args.max_regression)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("edit-path ordering holds: delta re-prepare beats the full "
          "rebuild on both edit kinds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
