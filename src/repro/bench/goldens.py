"""Published Table 2 numbers, transcribed from the paper.

Each row records: the snippet size ``c/nc`` (declaration count with/without
coercion functions), the ``#Initial`` environment size, the goal-snippet
rank and total runtime (ms) for the three algorithm variants, the full
variant's prover/reconstruction split, and the Imogen / fCube provability
times.  ``rank = None`` encodes the paper's ``>10``.

Transcription note: a handful of fCube entries are typographically damaged
in the source text (e.g. ``0176``); they are stored as printed and only
used for qualitative comparison, never asserted against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PaperRow:
    """One published Table 2 row."""

    number: int
    name: str
    size_with_coercions: int
    size_visible: int
    n_initial: int
    rank_no_weights: Optional[int]
    total_no_weights_ms: int
    rank_no_corpus: Optional[int]
    total_no_corpus_ms: int
    rank_full: Optional[int]
    prove_full_ms: int
    recon_full_ms: int
    total_full_ms: int
    imogen_ms: int
    fcube_ms: int

    @property
    def size(self) -> str:
        return f"{self.size_with_coercions}/{self.size_visible}"


def _row(number, name, size, n_initial, rank_nw, total_nw, rank_nc, total_nc,
         rank_full, prove, recon, total, imogen, fcube) -> PaperRow:
    size_c, size_nc = (int(part) for part in size.split("/"))
    return PaperRow(number, name, size_c, size_nc, n_initial, rank_nw,
                    total_nw, rank_nc, total_nc, rank_full, prove, recon,
                    total, imogen, fcube)


#: ``None`` rank means the paper printed ``>10``.
PAPER_ROWS: tuple[PaperRow, ...] = (
    _row(1, "AWTPermissionStringname", "2/2", 5615, None, 5157, 1, 101, 1, 8, 125, 133, 127, 20123),
    _row(2, "BufferedInputStreamFileInputStream", "3/2", 3364, None, 2235, 1, 45, 1, 7, 46, 53, 44, 5827),
    _row(3, "BufferedOutputStream", "3/2", 3367, None, 2009, 1, 18, 1, 7, 11, 19, 44, 5781),
    _row(4, "BufferedReaderFileReaderfileReader", "4/2", 3364, None, 2276, 2, 69, 1, 7, 43, 50, 44, 176),
    _row(5, "BufferedReaderInputStreamReader", "4/2", 3364, None, 2481, 2, 66, 1, 7, 42, 49, 44, 175),
    _row(6, "BufferedReaderReaderin", "5/4", 4094, None, 5185, None, 4760, 6, 7, 237, 244, 61, 228),
    _row(7, "ByteArrayInputStreambytebuf", "4/4", 3366, None, 5146, 3, 94, None, 4, 18, 22, 44, 5836),
    _row(8, "ByteArrayOutputStreamintsize", "2/2", 3363, None, 2583, 2, 51, 2, 8, 63, 70, 44, 5204),
    _row(9, "DatagramSocket", "1/1", 3246, None, 5024, 1, 74, 1, 7, 80, 88, 38, 5555),
    _row(10, "DataInputStreamFileInput", "3/2", 3364, None, 2643, 1, 20, 1, 6, 46, 52, 44, 5791),
    _row(11, "DataOutputStreamFileOutput", "3/2", 3364, None, 5189, 1, 29, 1, 7, 38, 45, 44, 5839),
    _row(12, "DefaultBoundedRangeModel", "1/1", 6673, None, 3353, 1, 220, 1, 10, 257, 266, 193, 36337),
    _row(13, "DisplayModeintwidthintheightintbit", "2/2", 4999, None, 6116, 1, 136, 1, 6, 147, 154, 99, 10525),
    _row(14, "FileInputStreamFileDescriptorfdObj", "2/2", 3366, None, 3882, 3, 24, 2, 6, 17, 23, 44, 3929),
    _row(15, "FileInputStreamStringname", "2/2", 3363, None, 2870, 1, 125, 1, 9, 100, 109, 44, 4425),
    _row(16, "FileOutputStreamFilefile", "2/2", 3364, None, 4878, 1, 86, 1, 8, 51, 60, 44, 4415),
    _row(17, "FileReaderFilefile", "2/2", 3365, None, 3484, 2, 37, 2, 7, 13, 20, 44, 4495),
    _row(18, "FileStringname", "2/2", 3363, None, 3697, 1, 169, 1, 7, 155, 163, 44, 5859),
    _row(19, "FileWriterFilefile", "2/2", 3366, None, 4255, 1, 40, 1, 8, 28, 36, 45, 4515),
    _row(20, "FileWriterLPT1", "2/2", 3363, 6, 3884, 1, 139, 1, 7, 89, 96, 44, 4461),
    _row(21, "GridBagConstraints", "1/1", 8402, None, 3419, 1, 3241, 1, 19, 323, 342, 290, 121),
    _row(22, "GridBagLayout", "1/1", 8401, None, 2, 1, 1, 1, 0, 1, 1, 290, 56553),
    _row(23, "GroupLayoutContainerhost", "4/2", 6436, None, 4055, 1, 24, 1, 10, 26, 36, 190, 29794),
    _row(24, "ImageIconStringfilename", "2/2", 8277, None, 3625, 2, 495, 1, 13, 154, 167, 300, 50576),
    _row(25, "InputStreamReaderInputStreamin", "3/3", 3363, None, 3558, 8, 90, 4, 7, 177, 184, 44, 4507),
    _row(26, "JButtonStringtext", "2/2", 6434, None, 3289, 2, 117, 1, 9, 85, 95, 184, 27828),
    _row(27, "JCheckBoxStringtext", "2/2", 8401, None, 3738, 3, 134, 2, 18, 50, 68, 188, 4946),
    _row(28, "JformattedTextFieldAbstractFormatter", "3/2", 10700, None, 3087, 2, 2048, 4, 21, 101, 122, 520, 99238),
    _row(29, "JFormattedTextFieldFormatterformatter", "2/2", 9783, None, 3404, 2, 67, 2, 15, 85, 100, 419, 74713),
    _row(30, "JTableObjectnameObjectdata", "3/3", 8280, None, 3676, 2, 109, 2, 13, 129, 142, 300, 46738),
    _row(31, "JTextAreaStringtext", "2/2", 6433, None, 2012, 2, 232, None, 9, 293, 302, 183, 29601),
    _row(32, "JToggleButtonStringtext", "2/2", 8277, None, 3171, 2, 177, 2, 12, 123, 135, 299, 5231),
    _row(33, "JTree", "1/1", 8278, 2, 3534, 1, 3162, 1, 16, 2022, 2039, 298, 52417),
    _row(34, "JViewport", "1/1", 8282, 8, 5017, 1, 20, 8, 12, 7, 19, 298, 22946),
    _row(35, "JWindow", "1/1", 6434, 3, 4274, 1, 296, 1, 10, 425, 434, 194, 2862),
    _row(36, "LineNumberReaderReaderin", "5/4", 3363, None, 2315, None, 3770, 9, 6, 233, 239, 44, 5876),
    _row(37, "ObjectInputStreamInputStreamin", "3/2", 3367, None, 3093, 1, 20, 1, 6, 29, 35, 44, 5849),
    _row(38, "ObjectOutputStreamOutputStreamout", "3/2", 3364, None, 4883, 1, 31, 1, 7, 47, 54, 44, 5438),
    _row(39, "PipedReaderPipedWritersrc", "2/2", 3364, None, 2762, 2, 54, 2, 8, 60, 68, 44, 262),
    _row(40, "PipedWriter", "1/1", 3359, None, 4801, 1, 107, 1, 6, 133, 139, 44, 5432),
    _row(41, "Pointintxinty", "3/1", 4997, None, 2068, 5, 133, 2, 6, 96, 103, 101, 8573),
    _row(42, "PrintStreamOutputStreamout", "3/2", 3365, None, 2100, 6, 16, 1, 7, 20, 27, 44, 5841),
    _row(43, "PrintWriterBufferedWriter", "4/3", 3365, None, 2521, 4, 135, 4, 8, 36, 44, 44, 448),
    _row(44, "SequenceInputStreamInputStreams", "5/3", 3365, None, 4777, 2, 35, 2, 8, 20, 28, 44, 5862),
    _row(45, "ServerSocketintport", "2/2", 4094, None, 2285, 2, 28, 1, 6, 57, 63, 61, 11123),
    _row(46, "StreamTokenizerFileReaderfileReader", "3/2", 3365, None, 2012, 1, 34, 1, 8, 57, 65, 44, 5782),
    _row(47, "StringReaderStrings", "2/2", 3363, None, 2006, 1, 35, 1, 6, 37, 43, 45, 5746),
    _row(48, "TimerintvalueActionListeneract", "3/3", 6665, None, 2051, 1, 123, 1, 10, 189, 199, 186, 34841),
    _row(49, "TransferHandlerStringproperty", "2/2", 8648, None, 3911, 1, 27, 1, 14, 17, 31, 319, 67997),
    _row(50, "URLStringspecthrows", "3/3", 4093, None, 3302, 6, 124, 1, 8, 175, 183, 60, 11197),
)


def paper_row(number: int) -> PaperRow:
    """Look up a published row by its 1-based benchmark number."""
    return PAPER_ROWS[number - 1]


def paper_summary() -> dict[str, float]:
    """The §7.5 aggregate claims, recomputed from the rows."""
    full_found = [row for row in PAPER_ROWS if row.rank_full is not None]
    top1 = [row for row in full_found if row.rank_full == 1]
    nw_found = [row for row in PAPER_ROWS if row.rank_no_weights is not None]
    nc_failed = [row for row in PAPER_ROWS if row.rank_no_corpus is None]
    return {
        "full_top10_fraction": len(full_found) / len(PAPER_ROWS),
        "full_rank1_fraction": len(top1) / len(PAPER_ROWS),
        "no_weights_found": len(nw_found),
        "no_corpus_failed": len(nc_failed),
        "mean_total_full_ms": sum(row.total_full_ms for row in PAPER_ROWS)
        / len(PAPER_ROWS),
    }
