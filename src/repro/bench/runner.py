"""Running Table 2: three algorithm variants plus the prover comparison.

``run_benchmark`` executes one scene under any subset of the paper's three
variants —

* ``no_weights`` — uniform declaration weights, FIFO exploration;
* ``no_corpus``  — Table 1 locality weights with all frequencies zeroed;
* ``full``       — locality weights plus corpus frequencies;

— measures the goal-snippet rank (modulo literals) and the prover /
reconstruction time split, and pairs the outcome with the published row.

``run_provers`` times the succinct engine against the G4ip and inverse-
method baselines on the same inhabitation query.  General-purpose provers
blow up on multi-thousand-hypothesis sequents (that is the paper's point),
so the default caps the environment at a few hundred imported declarations;
pass ``import_cap=None`` to reproduce the full-size comparison and expect
baseline timeouts, as the paper reports for Imogen's reconstruction.

Both entry points sit on a shared :class:`~repro.engine.CompletionEngine`:
each Table 2 scene is built and prepared once per process and then serves
every variant, repeat and prover query, so a full suite run rebuilds
nothing and repeated rows come straight from the engine's result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.bench.goldens import PaperRow
from repro.bench.matching import find_rank
from repro.bench.suite import (BENCHMARKS, BenchmarkSpec, build_scene)
from repro.bench.timing import median_total_triple
from repro.core.config import SynthesisConfig
from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.errors import EngineError
from repro.core.synthesizer import Synthesizer
from repro.core.weights import WeightPolicy
from repro.engine import VARIANTS, CompletionEngine, policy_for_variant
from repro.engine.cache import LRUCache
from repro.javamodel.scope import Scene
from repro.provers.g4ip import G4ipProver
from repro.provers.interface import ProofResult, SuccinctProver, prove_timed
from repro.provers.inverse import InverseMethodProver
from repro.provers.translation import environment_to_sequent


def policy_for(variant: str) -> WeightPolicy:
    try:
        return policy_for_variant(variant)
    except EngineError as exc:
        raise ValueError(f"unknown variant {variant!r}") from exc


#: Process-wide serving state: one engine, plus built Table 2 scenes keyed
#: by benchmark number (scene construction pads thousands of seeded
#: distractors — worth doing once per process, not once per caller).
_ENGINE: Optional[CompletionEngine] = None
_SCENES = LRUCache(max_entries=64)


def shared_engine() -> CompletionEngine:
    """The engine shared by ``run_benchmark``/``run_suite``/``run_provers``."""
    global _ENGINE
    if _ENGINE is None:
        # Size the prepared-scene table for a full Table 2 sweep, so a
        # second run_suite() in the same process re-prepares nothing.
        _ENGINE = CompletionEngine(scene_entries=max(len(BENCHMARKS), 64))
    return _ENGINE


def scene_for(spec: BenchmarkSpec) -> Scene:
    """Build (or fetch the cached build of) one benchmark's scene."""
    scene = _SCENES.get(spec.number)
    if scene is None:
        scene = build_scene(spec)
        _SCENES.put(spec.number, scene)
    return scene


@dataclass(frozen=True)
class VariantOutcome:
    """One (benchmark, variant) measurement."""

    variant: str
    rank: Optional[int]          # None = not in the top N
    inhabited: bool
    prove_ms: float
    recon_ms: float
    total_ms: float
    snippets: int
    recon_expansions: int = 0
    top_snippet: str = ""

    @property
    def found(self) -> bool:
        return self.rank is not None


@dataclass
class BenchmarkResult:
    """All measured variants of one benchmark, with the paper row."""

    spec: BenchmarkSpec
    row: PaperRow
    initial_count: int
    outcomes: dict[str, VariantOutcome] = field(default_factory=dict)

    def outcome(self, variant: str) -> VariantOutcome:
        return self.outcomes[variant]


@dataclass(frozen=True)
class ProverComparison:
    """Timed provability results for one benchmark's query."""

    spec_number: int
    hypothesis_count: int
    succinct: ProofResult
    inverse: ProofResult
    g4ip: ProofResult

    def results(self) -> tuple[ProofResult, ...]:
        return (self.succinct, self.inverse, self.g4ip)


def run_benchmark(spec: BenchmarkSpec,
                  variants: Sequence[str] = VARIANTS,
                  n: int = 10,
                  config: Optional[SynthesisConfig] = None,
                  scene: Optional[Scene] = None,
                  engine: Optional[CompletionEngine] = None,
                  timing_repeats: int = 1,
                  timed_variants: Sequence[str] = ("full",)) -> BenchmarkResult:
    """Run one benchmark under the requested variants (N = 10 by default).

    The scene is prepared once on the (shared) engine and every variant is
    served through it, so timings reported for repeated queries reflect the
    original cold run — the cache returns the measured result verbatim.

    With ``timing_repeats`` > 1, timings come from that many *fresh*
    synthesizers over the shared prepared scene — the warm measurement
    protocol of :mod:`repro.bench.core_bench`, sharing its
    :func:`~repro.bench.timing.median_total_triple` statistic — and the
    reported ``prove_ms``/``recon_ms``/``total_ms`` are the triple of
    the run with the median ``total_ms``.
    A single OS scheduling hiccup then cannot land in the exported
    Table 2 artefacts, and each row stays arithmetically self-consistent
    (one real run's phase split, never a mix of fields from different
    runs).  The served run — cold on a freshly prepared scene — only
    contributes ranks, snippets and stats, and is the timing source just
    when ``timing_repeats`` is 1.

    Repeats only run for ``timed_variants`` (default: just ``full``, the
    one variant whose timings the exports/reports/gates consume); other
    variants keep the served run's timing, so a default suite pass does
    not triple-measure 100 rows nobody reads.
    """
    engine = engine or shared_engine()
    scene = scene or scene_for(spec)
    prepared = engine.prepare_scene(scene)
    result = BenchmarkResult(spec=spec, row=spec.row,
                             initial_count=scene.initial_count)
    for variant in variants:
        served = engine.complete(prepared, scene.goal, variant=variant,
                                 config=config, n=n)
        synthesis = served.result
        rank = find_rank(synthesis.snippets, spec.expected,
                         prepared.environment)
        best = synthesis.best()
        if timing_repeats > 1 and variant in timed_variants:
            samples = []
            for _ in range(timing_repeats):
                synthesizer = Synthesizer.from_prepared(
                    prepared.environment, prepared.base_environment,
                    prepared.subtypes, policy=policy_for(variant),
                    config=config or engine.default_config)
                repeat = synthesizer.synthesize(scene.goal, n=n)
                samples.append((repeat.prove_seconds * 1000.0,
                                repeat.reconstruction_seconds * 1000.0,
                                repeat.total_seconds * 1000.0))
        else:
            samples = [(synthesis.prove_seconds * 1000.0,
                        synthesis.reconstruction_seconds * 1000.0,
                        synthesis.total_seconds * 1000.0)]
        prove_ms, recon_ms, total_ms = median_total_triple(samples)
        result.outcomes[variant] = VariantOutcome(
            variant=variant,
            rank=rank,
            inhabited=synthesis.inhabited,
            prove_ms=prove_ms,
            recon_ms=recon_ms,
            total_ms=total_ms,
            snippets=len(synthesis.snippets),
            recon_expansions=synthesis.reconstruction_expansions,
            top_snippet=best.code if best else "",
        )
    return result


def run_suite(numbers: Optional[Iterable[int]] = None,
              variants: Sequence[str] = VARIANTS,
              n: int = 10,
              config: Optional[SynthesisConfig] = None,
              engine: Optional[CompletionEngine] = None,
              timing_repeats: int = 1,
              ) -> list[BenchmarkResult]:
    """Run several benchmarks (all 50 by default)."""
    chosen = (BENCHMARKS if numbers is None
              else [BENCHMARKS[number - 1] for number in numbers])
    return [run_benchmark(spec, variants=variants, n=n, config=config,
                          engine=engine, timing_repeats=timing_repeats)
            for spec in chosen]


def _capped_environment(scene: Scene, import_cap: Optional[int]) -> Environment:
    """Scale an environment down for the general-prover comparison.

    Every modelled JDK import is kept (so the query keeps its meaning —
    goal constructors included); only the generated distractor ballast is
    capped at *import_cap* declarations.
    """
    if import_cap is None:
        return scene.environment
    kept: list[Declaration] = []
    distractors = 0
    for declaration in scene.environment.declarations():
        if declaration.kind is DeclKind.IMPORTED and \
                declaration.name.startswith("gen."):
            if distractors >= import_cap:
                continue
            distractors += 1
        kept.append(declaration)
    return Environment(kept)


def run_provers(spec: BenchmarkSpec, time_limit: float = 5.0,
                import_cap: Optional[int] = 300,
                scene: Optional[Scene] = None) -> ProverComparison:
    """Time succinct vs inverse-method vs G4ip on one benchmark query."""
    scene = scene or scene_for(spec)
    environment = _capped_environment(scene, import_cap)
    hypotheses, goal = environment_to_sequent(environment, scene.goal,
                                              subtypes=scene.subtypes)
    succinct = prove_timed(SuccinctProver(time_limit=time_limit),
                           hypotheses, goal)
    inverse = prove_timed(InverseMethodProver(time_limit=time_limit),
                          hypotheses, goal)
    g4ip = prove_timed(G4ipProver(time_limit=time_limit), hypotheses, goal)
    return ProverComparison(
        spec_number=spec.number,
        hypothesis_count=len(hypotheses),
        succinct=succinct,
        inverse=inverse,
        g4ip=g4ip,
    )
