"""Running Table 2: three algorithm variants plus the prover comparison.

``run_benchmark`` executes one scene under any subset of the paper's three
variants —

* ``no_weights`` — uniform declaration weights, FIFO exploration;
* ``no_corpus``  — Table 1 locality weights with all frequencies zeroed;
* ``full``       — locality weights plus corpus frequencies;

— measures the goal-snippet rank (modulo literals) and the prover /
reconstruction time split, and pairs the outcome with the published row.

``run_provers`` times the succinct engine against the G4ip and inverse-
method baselines on the same inhabitation query.  General-purpose provers
blow up on multi-thousand-hypothesis sequents (that is the paper's point),
so the default caps the environment at a few hundred imported declarations;
pass ``import_cap=None`` to reproduce the full-size comparison and expect
baseline timeouts, as the paper reports for Imogen's reconstruction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.bench.goldens import PaperRow
from repro.bench.matching import find_rank
from repro.bench.suite import (BENCHMARKS, BenchmarkSpec, build_scene)
from repro.core.config import SynthesisConfig
from repro.core.environment import Declaration, DeclKind, Environment
from repro.core.synthesizer import Synthesizer
from repro.core.weights import WeightPolicy
from repro.javamodel.scope import Scene
from repro.provers.g4ip import G4ipProver
from repro.provers.interface import ProofResult, SuccinctProver, prove_timed
from repro.provers.inverse import InverseMethodProver
from repro.provers.translation import environment_to_sequent

VARIANTS = ("no_weights", "no_corpus", "full")


def policy_for(variant: str) -> WeightPolicy:
    if variant == "no_weights":
        return WeightPolicy.uniform_policy()
    if variant == "no_corpus":
        return WeightPolicy.without_corpus()
    if variant == "full":
        return WeightPolicy.standard()
    raise ValueError(f"unknown variant {variant!r}")


@dataclass(frozen=True)
class VariantOutcome:
    """One (benchmark, variant) measurement."""

    variant: str
    rank: Optional[int]          # None = not in the top N
    inhabited: bool
    prove_ms: float
    recon_ms: float
    total_ms: float
    snippets: int
    recon_expansions: int = 0
    top_snippet: str = ""

    @property
    def found(self) -> bool:
        return self.rank is not None


@dataclass
class BenchmarkResult:
    """All measured variants of one benchmark, with the paper row."""

    spec: BenchmarkSpec
    row: PaperRow
    initial_count: int
    outcomes: dict[str, VariantOutcome] = field(default_factory=dict)

    def outcome(self, variant: str) -> VariantOutcome:
        return self.outcomes[variant]


@dataclass(frozen=True)
class ProverComparison:
    """Timed provability results for one benchmark's query."""

    spec_number: int
    hypothesis_count: int
    succinct: ProofResult
    inverse: ProofResult
    g4ip: ProofResult

    def results(self) -> tuple[ProofResult, ...]:
        return (self.succinct, self.inverse, self.g4ip)


def run_benchmark(spec: BenchmarkSpec,
                  variants: Sequence[str] = VARIANTS,
                  n: int = 10,
                  config: Optional[SynthesisConfig] = None,
                  scene: Optional[Scene] = None) -> BenchmarkResult:
    """Run one benchmark under the requested variants (N = 10 by default)."""
    scene = scene or build_scene(spec)
    result = BenchmarkResult(spec=spec, row=spec.row,
                             initial_count=scene.initial_count)
    for variant in variants:
        synthesizer = Synthesizer(
            scene.environment,
            policy=policy_for(variant),
            config=config or SynthesisConfig.paper_defaults(),
            subtypes=scene.subtypes)
        synthesis = synthesizer.synthesize(scene.goal, n=n)
        rank = find_rank(synthesis.snippets, spec.expected,
                         synthesizer.environment)
        best = synthesis.best()
        result.outcomes[variant] = VariantOutcome(
            variant=variant,
            rank=rank,
            inhabited=synthesis.inhabited,
            prove_ms=synthesis.prove_seconds * 1000.0,
            recon_ms=synthesis.reconstruction_seconds * 1000.0,
            total_ms=synthesis.total_seconds * 1000.0,
            snippets=len(synthesis.snippets),
            recon_expansions=synthesis.reconstruction_expansions,
            top_snippet=best.code if best else "",
        )
    return result


def run_suite(numbers: Optional[Iterable[int]] = None,
              variants: Sequence[str] = VARIANTS,
              n: int = 10,
              config: Optional[SynthesisConfig] = None,
              ) -> list[BenchmarkResult]:
    """Run several benchmarks (all 50 by default)."""
    chosen = (BENCHMARKS if numbers is None
              else [BENCHMARKS[number - 1] for number in numbers])
    return [run_benchmark(spec, variants=variants, n=n, config=config)
            for spec in chosen]


def _capped_environment(scene: Scene, import_cap: Optional[int]) -> Environment:
    """Scale an environment down for the general-prover comparison.

    Every modelled JDK import is kept (so the query keeps its meaning —
    goal constructors included); only the generated distractor ballast is
    capped at *import_cap* declarations.
    """
    if import_cap is None:
        return scene.environment
    kept: list[Declaration] = []
    distractors = 0
    for declaration in scene.environment.declarations():
        if declaration.kind is DeclKind.IMPORTED and \
                declaration.name.startswith("gen."):
            if distractors >= import_cap:
                continue
            distractors += 1
        kept.append(declaration)
    return Environment(kept)


def run_provers(spec: BenchmarkSpec, time_limit: float = 5.0,
                import_cap: Optional[int] = 300,
                scene: Optional[Scene] = None) -> ProverComparison:
    """Time succinct vs inverse-method vs G4ip on one benchmark query."""
    scene = scene or build_scene(spec)
    environment = _capped_environment(scene, import_cap)
    hypotheses, goal = environment_to_sequent(environment, scene.goal,
                                              subtypes=scene.subtypes)
    succinct = prove_timed(SuccinctProver(time_limit=time_limit),
                           hypotheses, goal)
    inverse = prove_timed(InverseMethodProver(time_limit=time_limit),
                          hypotheses, goal)
    g4ip = prove_timed(G4ipProver(time_limit=time_limit), hypotheses, goal)
    return ProverComparison(
        spec_number=spec.number,
        hypothesis_count=len(hypotheses),
        succinct=succinct,
        inverse=inverse,
        g4ip=g4ip,
    )
