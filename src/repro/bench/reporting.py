"""Table 2-style reports and the §7.5 summary statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bench.goldens import paper_summary
from repro.bench.runner import BenchmarkResult, ProverComparison


def _rank(rank: Optional[int]) -> str:
    return ">10" if rank is None else str(rank)


def format_table(results: Sequence[BenchmarkResult]) -> str:
    """A Table 2 lookalike: measured ranks/times with paper ranks inline."""
    header = (f"{'#':>3} {'Benchmark':<38} {'#Init':>6} "
              f"{'NW rank':>8} {'NC rank':>8} {'rank':>5} {'paper':>6} "
              f"{'prove':>7} {'recon':>7} {'total':>7}")
    lines = [header, "-" * len(header)]
    for result in results:
        full = result.outcomes.get("full")
        nw = result.outcomes.get("no_weights")
        nc = result.outcomes.get("no_corpus")
        lines.append(
            f"{result.spec.number:>3} {result.spec.name[:38]:<38} "
            f"{result.initial_count:>6} "
            f"{_rank(nw.rank) if nw else '-':>8} "
            f"{_rank(nc.rank) if nc else '-':>8} "
            f"{_rank(full.rank) if full else '-':>5} "
            f"{_rank(result.row.rank_full):>6} "
            f"{full.prove_ms if full else 0:>6.0f} "
            f"{full.recon_ms if full else 0:>6.0f} "
            f"{full.total_ms if full else 0:>6.0f}")
    return "\n".join(lines)


def format_prover_table(comparisons: Sequence[ProverComparison]) -> str:
    """Prover-comparison table: succinct vs inverse vs G4ip."""
    header = (f"{'#':>3} {'hyps':>6} {'succinct':>10} {'inverse':>10} "
              f"{'g4ip':>10} {'verdicts':>10}")
    lines = [header, "-" * len(header)]
    for comparison in comparisons:
        def cell(result):
            if result.timed_out:
                return "timeout"
            return f"{result.milliseconds:.1f}ms"

        verdicts = "/".join(
            "?" if result.provable is None else ("+" if result.provable else "-")
            for result in comparison.results())
        lines.append(
            f"{comparison.spec_number:>3} {comparison.hypothesis_count:>6} "
            f"{cell(comparison.succinct):>10} {cell(comparison.inverse):>10} "
            f"{cell(comparison.g4ip):>10} {verdicts:>10}")
    return "\n".join(lines)


@dataclass(frozen=True)
class SuiteSummary:
    """The §7.5 aggregates, measured and paper side by side."""

    benchmarks: int
    full_top10: int
    full_rank1: int
    no_weights_found: Optional[int]
    no_corpus_found: Optional[int]
    mean_total_full_ms: float

    def as_text(self) -> str:
        paper = paper_summary()
        lines = [
            f"benchmarks run:           {self.benchmarks}",
            f"full: in top 10           {self.full_top10}/{self.benchmarks} "
            f"({100 * self.full_top10 / self.benchmarks:.0f}%; paper 96%)",
            f"full: at rank 1           {self.full_rank1}/{self.benchmarks} "
            f"({100 * self.full_rank1 / self.benchmarks:.0f}%; paper 64%)",
        ]
        if self.no_weights_found is not None:
            lines.append(
                f"no-weights: in top 10     {self.no_weights_found}"
                f"/{self.benchmarks} (paper {paper['no_weights_found']:.0f}/50)")
        if self.no_corpus_found is not None:
            lines.append(
                f"no-corpus: in top 10      {self.no_corpus_found}"
                f"/{self.benchmarks} (paper {50 - paper['no_corpus_failed']:.0f}/50)")
        lines.append(
            f"mean full total           {self.mean_total_full_ms:.1f} ms "
            f"(paper {paper['mean_total_full_ms']:.0f} ms)")
        return "\n".join(lines)


def summarize(results: Sequence[BenchmarkResult]) -> SuiteSummary:
    """Aggregate a suite run into the §7.5 headline numbers."""
    full = [result.outcomes["full"] for result in results
            if "full" in result.outcomes]
    yes_no_weights = None
    if all("no_weights" in result.outcomes for result in results):
        yes_no_weights = sum(
            1 for result in results
            if result.outcomes["no_weights"].found)
    yes_no_corpus = None
    if all("no_corpus" in result.outcomes for result in results):
        yes_no_corpus = sum(
            1 for result in results
            if result.outcomes["no_corpus"].found)
    return SuiteSummary(
        benchmarks=len(results),
        full_top10=sum(1 for outcome in full if outcome.found),
        full_rank1=sum(1 for outcome in full if outcome.rank == 1),
        no_weights_found=yes_no_weights,
        no_corpus_found=yes_no_corpus,
        mean_total_full_ms=(sum(outcome.total_ms for outcome in full)
                            / len(full)) if full else 0.0,
    )
