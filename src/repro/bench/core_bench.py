"""Core prover/reconstruction benchmark — the ``BENCH_core.json`` emitter.

Measures warm per-query synthesis latency on a fixed set of Table 2
scenes under the serving protocol the engine actually uses: the scene is
prepared once (coercion-extended environment, succinct signature, scene
arena), then every timed run constructs a *fresh*
:class:`~repro.core.synthesizer.Synthesizer` over the shared prepared
state and executes one full ``Synthesize`` (explore + patterns +
reconstruction, paper budgets, ``n`` = 10, ``full`` policy).  That is the
quantity the arena work optimises — cache-served repeats would measure
nothing, cold one-shot runs would mostly measure scene build.

Usage::

    python -m repro.bench.core_bench --output BENCH_core.json
    python -m repro.bench.core_bench --check BENCH_core.json \
        [--output benchmarks/out/BENCH_core.json]

``--check`` re-measures and fails (exit 1) when the summed prove time
*or* the summed reconstruction time regresses more than
``--max-regression`` (default 25%) against the ``current`` numbers
committed in the given file — the CI slow job runs exactly this, so the
repository carries a perf trajectory that PRs must defend on both
phases.  Timings are machine-dependent; the gate compares sums across
rows to damp per-row noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro.bench.timing import median_total_triple

#: Default measured rows: a spread of scene sizes, including the largest
#: bundled scene (row 28, 10700 declarations — the acceptance row).
DEFAULT_ROWS = (2, 9, 15, 21, 28, 44)

DEFAULT_REPEATS = 8

SCHEMA = "bench-core/v1"

#: The acceptance row (largest bundled scene by declaration count).
LARGEST_ROW = 28


def measure_rows(rows: Sequence[int] = DEFAULT_ROWS,
                 repeats: int = DEFAULT_REPEATS) -> dict:
    """Measure every row; returns ``{row: {prove_ms, recon_ms, ...}}``."""
    from repro.bench.suite import BENCHMARKS, build_scene
    from repro.core.config import SynthesisConfig
    from repro.core.subtyping import environment_with_subtyping
    from repro.core.synthesizer import Synthesizer
    from repro.core.weights import WeightPolicy

    results: dict[str, dict] = {}
    for number in rows:
        spec = BENCHMARKS[number - 1]
        scene = build_scene(spec)
        extended = environment_with_subtyping(scene.environment,
                                              scene.subtypes)
        extended.succinct_environment()
        samples = []
        for _ in range(repeats + 1):
            synthesizer = Synthesizer.from_prepared(
                extended, scene.environment, scene.subtypes,
                policy=WeightPolicy.standard(),
                config=SynthesisConfig.paper_defaults())
            start = time.perf_counter()
            result = synthesizer.synthesize(scene.goal, n=10)
            total = time.perf_counter() - start
            samples.append((result.prove_seconds * 1000,
                            result.reconstruction_seconds * 1000,
                            total * 1000))
        cold, warm = samples[0], samples[1:]
        prove, recon, total = median_total_triple(warm)
        results[str(number)] = {
            "name": spec.name,
            "declarations": spec.row.n_initial,
            "cold_total_ms": round(cold[2], 2),
            "prove_ms": round(prove, 2),
            "recon_ms": round(recon, 2),
            "total_ms": round(total, 2),
            "best_total_ms": round(min(s[2] for s in warm), 2),
        }
    return results


def _summed(rows: dict, field: str) -> float:
    return round(sum(row[field] for row in rows.values()), 2)


def build_report(rows: dict, baseline: Optional[dict] = None,
                 repeats: int = DEFAULT_REPEATS) -> dict:
    """The ``BENCH_core.json`` document for one measurement."""
    report = {
        "schema": SCHEMA,
        "protocol": {
            "statistic": f"median-total warm run of {repeats} "
                         "(fresh synthesizer, shared prepared scene; "
                         "one run's prove/recon/total triple)",
            "config": "paper defaults (0.5 s prover / 7 s recon), "
                      "n=10, full policy",
            "rows": sorted(int(number) for number in rows),
            "largest_scene": LARGEST_ROW,
        },
        "current": rows,
        "summary": {
            "prove_ms_sum": _summed(rows, "prove_ms"),
            "recon_ms_sum": _summed(rows, "recon_ms"),
            "total_ms_sum": _summed(rows, "total_ms"),
        },
    }
    if baseline is not None:
        report["baseline"] = baseline
        speedups = {}
        for number, row in rows.items():
            base = baseline.get(number)
            if base and row["total_ms"]:
                speedups[number] = round(base["total_ms"] / row["total_ms"],
                                         2)
        report["speedup_total"] = speedups
    return report


def check_regression(committed: dict, measured: dict,
                     max_regression: float) -> list[str]:
    """Regression findings of *measured* against the *committed* report.

    Gates both phases independently: summed prove time and summed recon
    time each may not regress more than *max_regression* against the
    committed ``current`` numbers — a PR that halves prove but doubles
    recon must not pass on the total.
    """
    failures = []
    reference = committed.get("current", {})
    common = [number for number in reference if number in measured]
    if not common:
        return [f"no comparable rows between committed and measured sets "
                f"({sorted(reference)} vs {sorted(measured)})"]
    for field, label in (("prove_ms", "prove"), ("recon_ms", "recon")):
        committed_sum = sum(reference[number][field] for number in common)
        measured_sum = sum(measured[number][field] for number in common)
        allowed = committed_sum * (1.0 + max_regression)
        if measured_sum > allowed:
            failures.append(
                f"{label}-time regression: {measured_sum:.1f} ms summed "
                f"over rows {common} exceeds the committed "
                f"{committed_sum:.1f} ms by more than {max_regression:.0%} "
                f"(limit {allowed:.1f} ms)")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.core_bench",
        description="measure warm core synthesis latency "
                    "(prove/recon/total per Table 2 scene)")
    parser.add_argument("--rows", default=None,
                        help="comma-separated Table 2 row numbers "
                             f"(default {','.join(map(str, DEFAULT_ROWS))})")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help=f"timed runs per row (default {DEFAULT_REPEATS})")
    parser.add_argument("--output", default=None,
                        help="write the measured report to this path")
    parser.add_argument("--check", default=None, metavar="BENCH_core.json",
                        help="compare against a committed report and fail "
                             "on prove- or recon-time regression")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional prove/recon-time "
                             "regression for --check (default 0.25)")
    args = parser.parse_args(argv)

    rows = DEFAULT_ROWS
    if args.rows:
        rows = tuple(int(part) for part in args.rows.split(",") if part.strip())

    committed = None
    baseline = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            committed = json.load(handle)
        baseline = committed.get("baseline")

    measured = measure_rows(rows, repeats=args.repeats)
    report = build_report(measured, baseline=baseline, repeats=args.repeats)

    for number, row in sorted(measured.items(), key=lambda kv: int(kv[0])):
        print(f"row {number:>2} ({row['name']}, {row['declarations']} decls): "
              f"prove {row['prove_ms']:.1f} ms, recon {row['recon_ms']:.1f} ms, "
              f"total {row['total_ms']:.1f} ms")
    summary = report["summary"]
    print(f"summed: prove {summary['prove_ms_sum']:.1f} ms, "
          f"recon {summary['recon_ms_sum']:.1f} ms, "
          f"total {summary['total_ms_sum']:.1f} ms")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if committed is not None:
        failures = check_regression(committed, measured,
                                    args.max_regression)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"regression check passed (within {args.max_regression:.0%} "
              f"of committed prove and recon times)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
