"""Shared timing-sample statistics for the bench emitters.

Both Table 2 (:mod:`repro.bench.runner`) and the ``BENCH_core.json``
gate (:mod:`repro.bench.core_bench`) damp scheduling-noise outliers the
same way; keeping the statistic here means the two artefact families
cannot silently drift onto different protocols.
"""

from __future__ import annotations

from typing import Sequence


def median_total_triple(samples: Sequence[tuple[float, float, float]],
                        ) -> tuple[float, float, float]:
    """The ``(prove_ms, recon_ms, total_ms)`` of the median-total run.

    Picks the whole triple of one real run — the one with the median
    ``total_ms``, lower middle for even counts — never a per-field
    median mix, which could report ``total_ms < prove_ms + recon_ms``.
    """
    ordered = sorted(samples, key=lambda sample: sample[2])
    return ordered[(len(ordered) - 1) // 2]
