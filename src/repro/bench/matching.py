"""Goal-snippet rank detection, equal modulo literal constants (§7.2).

The paper measures "whether InSynth can reconstruct an expression equal to
the one removed, modulo literal constants (of integer, string, or boolean
type)".  We implement that by rendering candidate snippets with every
literal-kind head masked as ``<lit>`` and comparing against the expected
snippet written in the same masked form.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.environment import DeclKind, Environment
from repro.core.synthesizer import Snippet
from repro.core.terms import LNFTerm

#: Placeholder the matcher substitutes for any literal constant.
LITERAL_PLACEHOLDER = "<lit>"


def _mask_literals(term: LNFTerm, environment: Environment) -> LNFTerm:
    declaration = environment.lookup(term.head)
    if declaration is not None and declaration.kind is DeclKind.LITERAL:
        return LNFTerm(term.binders, LITERAL_PLACEHOLDER, ())
    return LNFTerm(term.binders, term.head,
                   tuple(_mask_literals(argument, environment)
                         for argument in term.arguments))


def masked_code(term: LNFTerm, environment: Environment) -> str:
    """Render *term* with literal heads replaced by ``<lit>``."""
    from repro.core.environment import Declaration, RenderSpec, RenderStyle
    from repro.core.types import base
    from repro.lang.printer import render_snippet

    masked = _mask_literals(term, environment)
    if LITERAL_PLACEHOLDER in masked.__str__():
        # Give the placeholder a literal render spec so it prints verbatim.
        environment = environment.extended([Declaration(
            LITERAL_PLACEHOLDER, base("<any>"), DeclKind.LITERAL,
            render=RenderSpec(RenderStyle.LITERAL, LITERAL_PLACEHOLDER))])
    return render_snippet(masked, environment)


def find_rank(snippets: Sequence[Snippet], expected: str | Iterable[str],
              environment: Environment) -> Optional[int]:
    """The 1-based rank of the expected snippet, or ``None`` if absent.

    *expected* is one masked code string (or several alternatives, any of
    which counts as a hit — useful when argument order is ambiguous).
    """
    alternatives = ({expected} if isinstance(expected, str)
                    else set(expected))
    for snippet in snippets:
        if masked_code(snippet.surface_term, environment) in alternatives:
            return snippet.rank
    return None
