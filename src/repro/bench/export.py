"""Exporting benchmark results to CSV / JSON.

Reviewers of a reproduction usually want machine-readable numbers next to
the pretty tables; these helpers dump :class:`BenchmarkResult` /
:class:`ProverComparison` sequences with the paper's reference values in
adjacent columns.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Optional, Sequence

from repro.bench.runner import BenchmarkResult, ProverComparison

_RESULT_FIELDS = [
    "number", "name", "n_initial",
    "rank_no_weights", "rank_no_corpus", "rank_full",
    "paper_rank_no_weights", "paper_rank_no_corpus", "paper_rank_full",
    "prove_ms", "recon_ms", "total_ms", "paper_total_full_ms",
]


def _rank(value: Optional[int]) -> str:
    return "" if value is None else str(value)


def result_rows(results: Sequence[BenchmarkResult]) -> list[dict]:
    """Flatten results (with paper references) into dict rows."""
    rows = []
    for result in results:
        full = result.outcomes.get("full")
        rows.append({
            "number": result.spec.number,
            "name": result.spec.name,
            "n_initial": result.initial_count,
            "rank_no_weights": _rank(
                result.outcomes["no_weights"].rank
                if "no_weights" in result.outcomes else None),
            "rank_no_corpus": _rank(
                result.outcomes["no_corpus"].rank
                if "no_corpus" in result.outcomes else None),
            "rank_full": _rank(full.rank if full else None),
            "paper_rank_no_weights": _rank(result.row.rank_no_weights),
            "paper_rank_no_corpus": _rank(result.row.rank_no_corpus),
            "paper_rank_full": _rank(result.row.rank_full),
            "prove_ms": round(full.prove_ms, 2) if full else "",
            "recon_ms": round(full.recon_ms, 2) if full else "",
            "total_ms": round(full.total_ms, 2) if full else "",
            "paper_total_full_ms": result.row.total_full_ms,
        })
    return rows


def write_csv(results: Sequence[BenchmarkResult], path) -> None:
    """Write a Table 2 run as CSV."""
    rows = result_rows(results)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_RESULT_FIELDS)
        writer.writeheader()
        writer.writerows(rows)


def write_json(results: Sequence[BenchmarkResult], path) -> None:
    """Write a Table 2 run as JSON (one object per row)."""
    Path(path).write_text(json.dumps(result_rows(results), indent=2),
                          encoding="utf-8")


def prover_rows(comparisons: Sequence[ProverComparison]) -> list[dict]:
    rows = []
    for comparison in comparisons:
        row = {"number": comparison.spec_number,
               "hypotheses": comparison.hypothesis_count}
        for result in comparison.results():
            row[f"{result.prover}_ms"] = (
                "" if result.timed_out else round(result.milliseconds, 2))
            row[f"{result.prover}_provable"] = (
                "" if result.provable is None else result.provable)
        rows.append(row)
    return rows


def write_prover_csv(comparisons: Sequence[ProverComparison], path) -> None:
    """Write a prover comparison as CSV."""
    rows = prover_rows(comparisons)
    if not rows:
        Path(path).write_text("", encoding="utf-8")
        return
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
