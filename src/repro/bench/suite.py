"""The 50 benchmark scenes of Table 2.

Each :class:`BenchmarkSpec` reconstructs one java2s-derived benchmark: the
goal type at the cursor, the locals/literals the original example had in
scope, the imported packages (generalised imports, per §7.2), and the goal
expression that was removed — written in masked form, with ``<lit>``
standing for any literal constant.

Scenes are padded with seeded distractors to the paper's ``#Initial``
declaration count, so search-space sizes match row for row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bench.goldens import PAPER_ROWS, PaperRow, paper_row
from repro.core.errors import BenchmarkError
from repro.corpus.synthetic import default_frequencies
from repro.javamodel.jdk import shared_jdk
from repro.javamodel.scope import ProgramPoint, Scene

#: Import groups (package names of the modelled JDK).
IO_IMPORTS = ("java.io", "java.lang", "java.util", "java.nio.channels",
              "java.nio.charset")
NET_IMPORTS = IO_IMPORTS + ("java.net",)
AWT_IMPORTS = ("java.awt", "java.awt.event", "java.awt.image",
               "java.security", "javax.accessibility", "java.lang",
               "java.util", "java.io")
SWING_IMPORTS = AWT_IMPORTS + ("javax.swing", "javax.swing.text",
                               "javax.swing.table", "javax.swing.tree",
                               "javax.swing.border",
                               "java.awt.datatransfer")

#: Literals available at every program point (§7.2: goals are matched
#: modulo integer/string/boolean literals).
DEFAULT_LITERALS = (('"file.txt"', "String"), ("0", "int"),
                    ("true", "boolean"))


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 2 benchmark scene definition."""

    number: int
    goal: str
    expected: tuple[str, ...]
    imports: tuple[str, ...]
    locals: tuple[tuple[str, str], ...] = ()
    literals: tuple[tuple[str, str], ...] = DEFAULT_LITERALS
    confusables: tuple[str, ...] = ()
    description: str = ""

    @property
    def row(self) -> PaperRow:
        return paper_row(self.number)

    @property
    def name(self) -> str:
        return self.row.name


def _spec(number: int, goal: str, expected, imports,
          locals_=(), description: str = "",
          literals=DEFAULT_LITERALS) -> BenchmarkSpec:
    if isinstance(expected, str):
        expected = (expected,)
    return BenchmarkSpec(
        number=number, goal=goal, expected=tuple(expected),
        imports=tuple(imports), locals=tuple(locals_),
        literals=tuple(literals), confusables=(goal,),
        description=description)


BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    _spec(1, "AWTPermission", "new AWTPermission(name)", AWT_IMPORTS,
          [("name", "String")], "grant a named AWT permission"),
    _spec(2, "BufferedInputStream",
          "new BufferedInputStream(new FileInputStream(fileName))",
          IO_IMPORTS, [("fileName", "String")],
          "buffer a file input stream"),
    _spec(3, "BufferedOutputStream",
          "new BufferedOutputStream(new FileOutputStream(fileName))",
          IO_IMPORTS, [("fileName", "String")],
          "buffer a file output stream"),
    _spec(4, "BufferedReader", "new BufferedReader(fileReader)",
          IO_IMPORTS, [("fileReader", "FileReader")],
          "wrap an existing FileReader"),
    _spec(5, "BufferedReader", "new BufferedReader(in)",
          IO_IMPORTS, [("in", "InputStreamReader")],
          "wrap an existing InputStreamReader"),
    _spec(6, "BufferedReader",
          "new BufferedReader(new InputStreamReader(in))",
          IO_IMPORTS, [("in", "InputStream")],
          "read a raw input stream line by line"),
    _spec(7, "ByteArrayInputStream",
          "new ByteArrayInputStream(buf, <lit>, <lit>)",
          IO_IMPORTS, [("buf", "ByteArray")],
          "stream a slice of a byte buffer"),
    _spec(8, "ByteArrayOutputStream", "new ByteArrayOutputStream(size)",
          IO_IMPORTS, [("size", "int")],
          "pre-sized in-memory output stream"),
    _spec(9, "DatagramSocket", "new DatagramSocket()", NET_IMPORTS, [],
          "open a UDP socket on any free port"),
    _spec(10, "DataInputStream",
          "new DataInputStream(new FileInputStream(fileName))",
          IO_IMPORTS, [("fileName", "String")],
          "read binary data from a file"),
    _spec(11, "DataOutputStream",
          "new DataOutputStream(new FileOutputStream(fileName))",
          IO_IMPORTS, [("fileName", "String")],
          "write binary data to a file"),
    _spec(12, "DefaultBoundedRangeModel", "new DefaultBoundedRangeModel()",
          SWING_IMPORTS, [], "default slider/scrollbar model"),
    _spec(13, "DisplayMode", "new DisplayMode(<lit>, <lit>, <lit>, <lit>)",
          AWT_IMPORTS, [], "request a display mode by literal geometry"),
    _spec(14, "FileInputStream", "new FileInputStream(fdObj)",
          IO_IMPORTS, [("fdObj", "FileDescriptor")],
          "stream from an existing file descriptor"),
    _spec(15, "FileInputStream", "new FileInputStream(name)",
          IO_IMPORTS, [("name", "String")], "open a file by name"),
    _spec(16, "FileOutputStream", "new FileOutputStream(file)",
          IO_IMPORTS, [("file", "File")], "write to a File object"),
    _spec(17, "FileReader", "new FileReader(file)",
          IO_IMPORTS, [("file", "File")], "character-read a File"),
    _spec(18, "File", "new File(name)",
          IO_IMPORTS, [("name", "String")], "wrap a path into a File"),
    _spec(19, "FileWriter", "new FileWriter(file)",
          IO_IMPORTS, [("file", "File")], "character-write a File"),
    _spec(20, "FileWriter", "new FileWriter(<lit>)",
          IO_IMPORTS, [], "write to a literal device path (LPT1)"),
    _spec(21, "GridBagConstraints", "new GridBagConstraints()",
          AWT_IMPORTS, [], "fresh layout constraints"),
    _spec(22, "GridBagLayout", "new GridBagLayout()",
          AWT_IMPORTS, [], "fresh grid-bag layout"),
    _spec(23, "GroupLayout", "new GroupLayout(host)",
          SWING_IMPORTS, [("host", "Container")],
          "group layout for an existing container"),
    _spec(24, "ImageIcon", "new ImageIcon(filename)",
          SWING_IMPORTS, [("filename", "String")],
          "load an icon from a file"),
    _spec(25, "InputStreamReader", "new InputStreamReader(in)",
          IO_IMPORTS, [("in", "InputStream")],
          "decode a raw input stream"),
    _spec(26, "JButton", "new JButton(text)",
          SWING_IMPORTS, [("text", "String")], "labelled button"),
    _spec(27, "JCheckBox", "new JCheckBox(text)",
          SWING_IMPORTS, [("text", "String")], "labelled check box"),
    _spec(28, "JFormattedTextField", "new JFormattedTextField(formatter)",
          SWING_IMPORTS, [("formatter", "DefaultFormatter")],
          "formatted field from a concrete formatter (needs subtyping)"),
    _spec(29, "JFormattedTextField", "new JFormattedTextField(formatter)",
          SWING_IMPORTS,
          [("formatter", "JFormattedTextField.AbstractFormatter")],
          "formatted field from an abstract formatter"),
    _spec(30, "JTable", "new JTable(data, columnNames)",
          SWING_IMPORTS,
          [("data", "ObjectArray2D"), ("columnNames", "ObjectArray")],
          "table over row data and column names"),
    _spec(31, "JTextArea", "new JTextArea(text)",
          SWING_IMPORTS, [("text", "String")], "text area with content"),
    _spec(32, "JToggleButton", "new JToggleButton(text)",
          SWING_IMPORTS, [("text", "String")], "labelled toggle button"),
    _spec(33, "JTree", "new JTree()", SWING_IMPORTS, [],
          "default tree widget"),
    _spec(34, "JViewport", "new JViewport()", SWING_IMPORTS, [],
          "fresh viewport"),
    _spec(35, "JWindow", "new JWindow()", SWING_IMPORTS, [],
          "undecorated window"),
    _spec(36, "LineNumberReader",
          "new LineNumberReader(new InputStreamReader(in))",
          IO_IMPORTS, [("in", "InputStream")],
          "line-counting reader over a raw stream"),
    _spec(37, "ObjectInputStream", "new ObjectInputStream(in)",
          IO_IMPORTS, [("in", "InputStream")], "deserialise from a stream"),
    _spec(38, "ObjectOutputStream", "new ObjectOutputStream(out)",
          IO_IMPORTS, [("out", "OutputStream")], "serialise to a stream"),
    _spec(39, "PipedReader", "new PipedReader(src)",
          IO_IMPORTS, [("src", "PipedWriter")],
          "reader end of an existing pipe"),
    _spec(40, "PipedWriter", "new PipedWriter()", IO_IMPORTS, [],
          "writer end of a fresh pipe"),
    _spec(41, "Point", ("new Point(x, y)", "new Point(y, x)"),
          AWT_IMPORTS, [("x", "int"), ("y", "int")],
          "point from two coordinates"),
    _spec(42, "PrintStream", "new PrintStream(out)",
          IO_IMPORTS, [("out", "OutputStream")],
          "printing wrapper over a stream"),
    _spec(43, "PrintWriter", "new PrintWriter(new BufferedWriter(writer))",
          IO_IMPORTS, [("writer", "Writer")],
          "buffered printing wrapper (java2s idiom)"),
    _spec(44, "SequenceInputStream", "new SequenceInputStream(s1, s2)",
          IO_IMPORTS, [("s1", "FileInputStream"), ("s2", "FileInputStream")],
          "concatenate two file streams (Figure 1)"),
    _spec(45, "ServerSocket", "new ServerSocket(port)",
          NET_IMPORTS, [("port", "int")], "listen on a port"),
    _spec(46, "StreamTokenizer", "new StreamTokenizer(fileReader)",
          IO_IMPORTS, [("fileReader", "FileReader")],
          "tokenise an existing reader"),
    _spec(47, "StringReader", "new StringReader(s)",
          IO_IMPORTS, [("s", "String")], "read from a string"),
    _spec(48, "Timer", "new Timer(value, act)",
          SWING_IMPORTS, [("value", "int"), ("act", "ActionListener")],
          "swing timer with delay and callback"),
    _spec(49, "TransferHandler", "new TransferHandler(property)",
          SWING_IMPORTS, [("property", "String")],
          "drag-and-drop handler for a property"),
    _spec(50, "URL", "new URL(spec)",
          NET_IMPORTS, [("spec", "String")], "parse a URL from a string"),
)


def benchmark_by_number(number: int) -> BenchmarkSpec:
    spec = BENCHMARKS[number - 1]
    if spec.number != number:
        raise BenchmarkError(f"benchmark table out of order at {number}")
    return spec


def benchmark_by_name(name: str) -> BenchmarkSpec:
    for spec in BENCHMARKS:
        if spec.name == name:
            return spec
    raise BenchmarkError(f"no benchmark named {name!r}")


def build_scene(spec: BenchmarkSpec,
                pad_to_initial: bool = True) -> Scene:
    """Materialise a benchmark spec into a synthesis-ready scene."""
    point = ProgramPoint(shared_jdk(), default_frequencies().as_mapping(),
                         name=spec.name)
    point.import_packages(*spec.imports)
    if pad_to_initial:
        base_count = (len(point._imports) + len(spec.locals)
                      + len(spec.literals))
        missing = spec.row.n_initial - base_count
        if missing > 0:
            point.add_distractors(missing, seed=spec.number,
                                  confusable_types=spec.confusables)
    for name, type_text in spec.locals:
        point.add_local(name, type_text)
    for code, type_text in spec.literals:
        point.add_literal(code, type_text)
    point.set_goal(spec.goal)
    scene = point.build()
    if scene.goal is None:
        raise BenchmarkError(f"benchmark {spec.number} has no goal")
    return scene
