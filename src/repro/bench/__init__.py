"""The Table 2 benchmark suite and its runner.

* :mod:`repro.bench.goldens` — the published numbers for all 50 rows;
* :mod:`repro.bench.suite` — scene definitions (locals, imports, literals,
  goal, expected snippet) and builders;
* :mod:`repro.bench.matching` — goal-snippet rank detection, equal modulo
  literal constants (§7.2);
* :mod:`repro.bench.runner` — runs one or all benchmarks under the three
  algorithm variants plus the baseline provers;
* :mod:`repro.bench.reporting` — Table 2-style text reports.
"""

from repro.bench.goldens import PAPER_ROWS, PaperRow
from repro.bench.matching import find_rank, masked_code
from repro.bench.reporting import format_table, summarize
from repro.bench.runner import (BenchmarkResult, ProverComparison,
                                VariantOutcome, run_benchmark, run_provers,
                                run_suite)
from repro.bench.suite import (BENCHMARKS, BenchmarkSpec, benchmark_by_name,
                               benchmark_by_number, build_scene)

__all__ = [
    "PAPER_ROWS", "PaperRow",
    "find_rank", "masked_code",
    "format_table", "summarize",
    "BenchmarkResult", "ProverComparison", "VariantOutcome",
    "run_benchmark", "run_provers", "run_suite",
    "BENCHMARKS", "BenchmarkSpec", "benchmark_by_name",
    "benchmark_by_number", "build_scene",
]
