"""Rank-quality benchmark — the ``BENCH_rank.json`` emitter.

Where ``core_bench`` defends the repository's latency trajectory,
``rank_bench`` defends its *ranking* trajectory: the 1-based rank of the
expected snippet (and the mean reciprocal rank) over the Table 2 corpus
scenes, measured twice per scene — once on the base corpus-weight order
and once through the standard post-reconstruction weigher chain
(:meth:`repro.core.ranking.RankingPipeline.standard`).  Two replay
sections exercise the same metric under serving-shaped traffic:

* **trace** — the deterministic loadgen workload (``smoke`` profile):
  every Zipf-sampled ``complete`` event contributes one observation, so
  popular scenes dominate the averages exactly as they dominate
  production traffic, and repeated events ride the engine's result
  cache with the re-rank applied after lookup, like the server.
* **session** — the shipped IDE edit-session script replayed offline
  through ``engine.open_session``; each ``complete`` step contributes
  the rank of the scene's documented expected completion, across edits
  that add and then remove distractor declarations.

Everything here is deterministic (ranks, not timings), so the committed
``BENCH_rank.json`` reproduces byte-for-byte on any machine.

Usage::

    python -m repro.bench.rank_bench --output BENCH_rank.json
    python -m repro.bench.rank_bench --check BENCH_rank.json

``--check`` re-measures and fails (exit 1) when the summed expected rank
or the MRR of the standard chain regresses more than ``--max-regression``
(default 25%) against the committed numbers, or when the standard chain
stops improving on the base order outright — the structural claim this
PR's ranking layer makes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

SCHEMA = "bench-rank/v1"

DEFAULT_N = 10

#: The shipped edit-session script the ``session`` section replays.
DEFAULT_SESSION_SCRIPT = (Path(__file__).resolve().parents[3]
                          / "examples/edit_sessions/url_reader_session.json")

#: Documented expected completions for the shipped example scenes, as
#: masked code (literal arguments appear as ``<lit>``); keyed by the
#: scene file stem the loadgen trace derives its tenant variants from.
EXPECTED_BY_BASE = {
    "url_reader": "new BufferedReader(new InputStreamReader("
                  "url.openStream()))",
    "file_writer": "new PrintWriter(new FileWriter(path))",
    "swing_label": "new JLabel(message)",
}


def _observe(result, reranked, expected, environment, n: int) -> dict:
    """One (base, standard) rank observation; absent ranks count n+1."""
    from repro.bench.matching import find_rank

    base = find_rank(result.snippets, expected, environment)
    standard = find_rank(reranked.snippets, expected, environment)
    return {
        "rank_base": base if base is not None else n + 1,
        "rank_standard": standard if standard is not None else n + 1,
        "found_base": base is not None,
        "found_standard": standard is not None,
    }


def measure_scenes(rows: Optional[Sequence[int]] = None,
                   n: int = DEFAULT_N) -> dict:
    """Expected-snippet rank per Table 2 scene, base vs standard chain."""
    from repro.bench.runner import scene_for, shared_engine
    from repro.bench.suite import BENCHMARKS
    from repro.core.ranking import RankingPipeline

    engine = shared_engine()
    pipeline = RankingPipeline.standard()
    numbers = rows or [spec.number for spec in BENCHMARKS]
    specs = {spec.number: spec for spec in BENCHMARKS}
    results: dict[str, dict] = {}
    for number in numbers:
        spec = specs[number]
        scene = scene_for(spec)
        prepared = engine.prepare_scene(scene)
        served = engine.complete(prepared, scene.goal, variant="full", n=n)
        outcome = pipeline.rerank(served.result, prepared.environment)
        observed = _observe(served.result, outcome.result, spec.expected,
                            prepared.environment, n)
        results[str(number)] = {"name": spec.name, **observed}
    return results


def measure_trace(profile: str = "smoke", n: int = DEFAULT_N) -> dict:
    """Replay the loadgen trace's completions, one observation per event.

    The Zipf scene popularity baked into the trace weights the averages:
    a hot scene's rank counts once per arrival, exactly as served.  The
    engine runs the standard chain the way the server does — base
    results cached, re-rank after lookup — while the base rank is read
    off the cached result directly.
    """
    from repro.core.ranking import RankingPipeline
    from repro.engine import CompletionEngine
    from repro.lang.loader import load_environment_text
    from repro.loadgen.traces import PROFILES, generate_trace

    trace = generate_trace(PROFILES[profile])
    engine = CompletionEngine(ranking=RankingPipeline.standard(),
                              scene_entries=max(len(trace.scenes), 64))
    prepared_by_key: dict[str, object] = {}
    observations = []
    for event in trace.events:
        if event.op != "complete":
            continue
        scene = trace.scenes[event.scene]
        base_stem = scene["name"].split("@", 1)[0]
        expected = EXPECTED_BY_BASE.get(base_stem)
        if expected is None:
            continue
        prepared = prepared_by_key.get(event.scene)
        if prepared is None:
            loaded = load_environment_text(scene["text"])
            prepared = engine.prepare(loaded.environment, loaded.subtypes,
                                      goal=loaded.goal, name=scene["name"])
            prepared_by_key[event.scene] = prepared
        served = engine.complete(prepared, n=n)
        base = engine.results.get(served.key)
        observations.append(_observe(base, served.result, expected,
                                     prepared.environment, n))
    return {
        "profile": profile,
        "events": len(observations),
        "distinct_scenes": len(prepared_by_key),
        "rank_sum_base": sum(o["rank_base"] for o in observations),
        "rank_sum_standard": sum(o["rank_standard"] for o in observations),
        "mrr_base": _mrr(observations, "rank_base", "found_base"),
        "mrr_standard": _mrr(observations, "rank_standard",
                             "found_standard"),
    }


def measure_session(script_path: Optional[str] = None,
                    n: int = DEFAULT_N) -> dict:
    """Replay the shipped edit-session script, rank per complete step."""
    from repro.core.ranking import RankingPipeline
    from repro.engine import CompletionEngine
    from repro.lang.loader import load_environment_file

    path = Path(script_path) if script_path else DEFAULT_SESSION_SCRIPT
    raw = json.loads(path.read_text(encoding="utf-8"))
    steps = raw.get("steps") if isinstance(raw, dict) else raw
    scene_path = (Path(__file__).resolve().parents[3]
                  / "examples/scenes/url_reader.ins")
    expected = EXPECTED_BY_BASE["url_reader"]

    loaded = load_environment_file(scene_path)
    engine = CompletionEngine(ranking=RankingPipeline.standard())
    session = engine.open_session(
        engine.prepare(loaded.environment, loaded.subtypes,
                       goal=loaded.goal, name=scene_path.stem))
    step_rows = []
    for step in steps:
        kind, body = next(iter(step.items()))
        if kind == "edit":
            session.apply_delta(body)
            continue
        spec = body or {}
        count = spec.get("n", n)
        served = session.complete(n=count)
        base = engine.results.get(served.key)
        step_rows.append(_observe(base, served.result, expected,
                                  session.prepared.environment, count))
    return {
        "script": path.name,
        "complete_steps": len(step_rows),
        "rank_sum_base": sum(o["rank_base"] for o in step_rows),
        "rank_sum_standard": sum(o["rank_standard"] for o in step_rows),
        "steps": step_rows,
    }


def _mrr(observations, rank_field: str, found_field: str) -> float:
    if not observations:
        return 0.0
    total = sum(1.0 / o[rank_field] for o in observations if o[found_field])
    return round(total / len(observations), 4)


def summarize_scenes(rows: dict) -> dict:
    observations = list(rows.values())
    return {
        "scenes": len(observations),
        "rank_sum_base": sum(o["rank_base"] for o in observations),
        "rank_sum_standard": sum(o["rank_standard"] for o in observations),
        "mrr_base": _mrr(observations, "rank_base", "found_base"),
        "mrr_standard": _mrr(observations, "rank_standard",
                             "found_standard"),
    }


def build_report(scene_rows: dict, trace: dict, session: dict,
                 n: int = DEFAULT_N) -> dict:
    """The ``BENCH_rank.json`` document for one measurement."""
    return {
        "schema": SCHEMA,
        "protocol": {
            "statistic": "1-based expected-snippet rank (absent counts "
                         f"n+1) and MRR, n={n}, full policy; standard "
                         "weigher chain vs base corpus-weight order",
            "weighers": _weigher_names(),
            "deterministic": True,
        },
        "scenes": scene_rows,
        "summary": summarize_scenes(scene_rows),
        "trace": trace,
        "session": session,
    }


def _weigher_names() -> list:
    from repro.core.ranking import RankingPipeline

    return list(RankingPipeline.standard().names)


def check_regression(committed: dict, report: dict,
                     max_regression: float) -> list[str]:
    """Regression findings of *report* against the *committed* report.

    Three gates: the standard chain must still improve on (or equal) the
    base order's summed expected rank over the corpus scenes — the
    structural claim of the ranking layer; the summed standard rank may
    not regress more than *max_regression* against the committed value;
    and the standard MRR may not drop by more than the same fraction.
    The trace section is gated on MRR alone (its event count is part of
    the workload identity, not the quality signal).
    """
    failures = []
    summary = report["summary"]
    if summary["rank_sum_standard"] > summary["rank_sum_base"]:
        failures.append(
            f"structural: the standard chain worsens the summed expected "
            f"rank over the corpus scenes ({summary['rank_sum_standard']} "
            f"vs base {summary['rank_sum_base']})")
    reference = committed.get("summary", {})
    ref_sum = reference.get("rank_sum_standard")
    if ref_sum:
        allowed = ref_sum * (1.0 + max_regression)
        if summary["rank_sum_standard"] > allowed:
            failures.append(
                f"rank regression: summed standard rank "
                f"{summary['rank_sum_standard']} exceeds the committed "
                f"{ref_sum} by more than {max_regression:.0%} "
                f"(limit {allowed:.1f})")
    ref_mrr = reference.get("mrr_standard")
    if ref_mrr:
        floor = ref_mrr * (1.0 - max_regression)
        if summary["mrr_standard"] < floor:
            failures.append(
                f"MRR regression: standard-chain MRR "
                f"{summary['mrr_standard']} fell below the committed "
                f"{ref_mrr} by more than {max_regression:.0%} "
                f"(floor {floor:.4f})")
    committed_trace = committed.get("trace", {})
    ref_trace_mrr = committed_trace.get("mrr_standard")
    if ref_trace_mrr:
        floor = ref_trace_mrr * (1.0 - max_regression)
        if report["trace"]["mrr_standard"] < floor:
            failures.append(
                f"trace-replay regression: standard-chain MRR "
                f"{report['trace']['mrr_standard']} fell below the "
                f"committed {ref_trace_mrr} by more than "
                f"{max_regression:.0%} (floor {floor:.4f})")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.rank_bench",
        description="measure expected-snippet rank quality "
                    "(base order vs the standard weigher chain)")
    parser.add_argument("--rows", default=None,
                        help="comma-separated Table 2 row numbers "
                             "(default: all)")
    parser.add_argument("--n", type=int, default=DEFAULT_N,
                        help=f"snippets per completion (default {DEFAULT_N})")
    parser.add_argument("--trace-profile", default="smoke",
                        help="loadgen trace profile to replay "
                             "(default smoke)")
    parser.add_argument("--session-script", default=None, metavar="PATH",
                        help="edit-session script to replay (default: the "
                             "shipped url_reader session)")
    parser.add_argument("--output", default=None,
                        help="write the measured report to this path")
    parser.add_argument("--check", default=None, metavar="BENCH_rank.json",
                        help="compare against a committed report and fail "
                             "on rank-quality regression")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional rank/MRR regression for "
                             "--check (default 0.25)")
    args = parser.parse_args(argv)

    rows = None
    if args.rows:
        rows = tuple(int(part) for part in args.rows.split(",")
                     if part.strip())

    committed = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            committed = json.load(handle)

    scene_rows = measure_scenes(rows, n=args.n)
    trace = measure_trace(args.trace_profile, n=args.n)
    session = measure_session(args.session_script, n=args.n)
    report = build_report(scene_rows, trace, session, n=args.n)

    summary = report["summary"]
    print(f"scenes ({summary['scenes']}): summed expected rank "
          f"base={summary['rank_sum_base']} "
          f"standard={summary['rank_sum_standard']}; "
          f"MRR base={summary['mrr_base']:.4f} "
          f"standard={summary['mrr_standard']:.4f}")
    print(f"trace ({trace['profile']}, {trace['events']} completions over "
          f"{trace['distinct_scenes']} scenes): "
          f"MRR base={trace['mrr_base']:.4f} "
          f"standard={trace['mrr_standard']:.4f}")
    print(f"session ({session['script']}, {session['complete_steps']} "
          f"complete steps): rank sum base={session['rank_sum_base']} "
          f"standard={session['rank_sum_standard']}")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if committed is not None:
        failures = check_regression(committed, report, args.max_regression)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"rank-quality check passed (within {args.max_regression:.0%} "
              f"of the committed report; standard chain still improves on "
              f"base)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
