"""The sharded completion router: one front door, many backends.

``repro route`` supervises N backend completion servers (each a full
:class:`~repro.server.server.AsyncCompletionServer` process) and speaks
the *existing* versioned HTTP/JSON protocol on both sides — clients
already address scenes by content-derived ids, so sharding drops in with
zero wire changes.  The pieces:

* **Consistent hash ring** (:class:`HashRing`): every backend owns
  ``ring_replicas`` pseudo-random points on a 64-bit ring; a scene id
  routes to the backend owning the first point at or after its hash.
  Adding or removing one backend therefore remaps only ~1/N of the
  scenes — the property that makes scale-up cheap.
* **Scene journal** (:class:`SceneJournal`): a durable, content-addressed
  log of every registered scene's text.  Registration is idempotent
  (identical text ⇒ identical scene id), so replaying the journal into a
  backend — on restart, scale-up, or attach — is always safe.  Explicit
  releases append tombstones, so released scenes stay released across
  replays.
* **Replica supervision**: a dead managed backend is respawned on demand
  (first failing request pays the restart), its journal shard replayed,
  and — when a snapshot directory is configured — the backend restores
  its own result-cache snapshot (``repro serve --snapshot``), so a
  restart is not only transparent but *warm*.
* **Transparent re-registration**: a backend answering ``unknown scene``
  (evicted, or restarted outside the router's supervision) is re-taught
  the scene from the journal and the query retried — clients never see
  backend lifecycle.
* **Stats aggregation**: ``GET /v1/stats`` merges every backend's
  snapshot into one view — counters summed, latency windows merged
  (count summed, mean weighted, percentiles conservatively maxed) — with
  the per-shard truth under ``shards`` and the router's own counters
  under ``router``.
* **Replicated placement** (:meth:`HashRing.route_n`): every scene is
  journaled to R distinct ring owners (``replication``, default 2);
  reads go to the healthiest/least-loaded owner and fail over to a
  sibling replica instantly when one dies — the dead replica respawns
  in the background instead of stalling the request that found it.
* **Circuit breakers and retry budgets**: each backend carries a
  closed → open → half-open breaker (consecutive connection failures
  open it; a cooldown admits probe traffic), and failover retries spend
  a router-wide token bucket that accrues per request — a dead shard's
  retry storm can neither hammer the corpse nor starve healthy shards.
* **Graceful degradation**: when *every* replica of a scene is down,
  the router answers from its last-known-good completion cache with a
  ``degraded: true`` marker instead of a 5xx — stale-but-instant beats
  absent for an interactive completer.
* **Admin surface** (``/v1/admin/backends``): live add / drain / remove
  of backends over the already-safe ``HashRing.add/remove`` + journal
  replay path; drain moves sticky edit-sessions before removal.

The router holds no synthesis state of its own: everything it needs to
rebuild a backend is in the journal and the backends' snapshot files, so
the router process itself is restartable too (same journal ⇒ same
routing table ⇒ same shard contents).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import subprocess
import sys
import time
from bisect import bisect_left
from collections import Counter, OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Awaitable, Callable, Optional, Sequence

from repro.core.errors import ReproError
from repro.server import protocol
from repro.server.client import (AsyncCompletionClient, ClientConnectionError,
                                 SceneNotFoundError, ServerError,
                                 wait_until_healthy)
from repro.server.protocol import (CompleteRequest, EditSceneRequest,
                                   ProtocolError, RegisterSceneRequest,
                                   ReleaseSceneRequest)
from repro.server.server import (AsyncCompletionServer, _HttpError,
                                 _HttpRequest, _http_response, _stream_head,
                                 _stream_request_payload, read_http_request)

#: Sentinel prefix hashed to pick the probe backend for *new* scene text
#: (the scene id — the real routing key — is only known once a backend
#: has prepared the scene).  Deterministic, so duplicate registrations
#: always probe the same backend.
_DIGEST_KEY_PREFIX = "digest:"


# -- consistent hash ring ----------------------------------------------------


class HashRing:
    """Consistent hashing over backend ids.

    Each backend owns ``replicas`` points drawn from SHA-256 on a 64-bit
    ring; a key routes to the backend owning the first point at or after
    the key's hash (wrapping).  With V points per backend, adding or
    removing a backend moves only the keys in the arcs it gains or
    loses — ~1/N of the keyspace — while every other key keeps its
    owner, which is exactly the stability the scene journal's replay
    relies on.
    """

    def __init__(self, replicas: int = 64):
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.replicas = replicas
        self._points: list[tuple[int, str]] = []      # sorted (point, id)
        self._backends: set[str] = set()

    @staticmethod
    def _point(key: str) -> int:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def add(self, backend_id: str) -> None:
        if backend_id in self._backends:
            return
        self._backends.add(backend_id)
        self._points.extend(
            (self._point(f"{backend_id}#{index}"), backend_id)
            for index in range(self.replicas))
        self._points.sort()

    def remove(self, backend_id: str) -> None:
        if backend_id not in self._backends:
            return
        self._backends.discard(backend_id)
        self._points = [point for point in self._points
                        if point[1] != backend_id]

    def route(self, key: str) -> str:
        """The backend id owning *key*; raises when the ring is empty."""
        return self.route_n(key, 1)[0]

    def route_n(self, key: str, n: int) -> list[str]:
        """The first ``min(n, len(self))`` *distinct* owners of *key*.

        Walks clockwise from the key's point collecting distinct backend
        ids — the classic successor list.  The same walk that gives
        ``route`` its ~1/N remap property applies per replica slot:
        adding a backend can only insert itself into (and push the tail
        out of) a key's owner list, never shuffle the survivors'
        relative order, so replica sets stay stable under churn.
        """
        if not self._points:
            raise ProtocolError("no backends on the ring", code="internal")
        want = min(n, len(self._backends))
        index = bisect_left(self._points, (self._point(key), ""))
        owners: list[str] = []
        for step in range(len(self._points)):
            backend_id = self._points[(index + step) % len(self._points)][1]
            if backend_id not in owners:
                owners.append(backend_id)
                if len(owners) == want:
                    break
        return owners

    @property
    def backends(self) -> frozenset:
        return frozenset(self._backends)

    def __len__(self) -> int:
        return len(self._backends)


# -- scene journal -----------------------------------------------------------


@dataclass(frozen=True)
class JournalEntry:
    """One registered scene, replayable from text."""

    digest: str                             # sha256 of the exact text
    scene_id: str                           # content-derived serving id
    name: Optional[str]
    text: str


class SceneJournal:
    """Durable, content-addressed log of registered scene texts.

    The file format is append-only JSONL: ``{"op": "register", ...}``
    records a scene, ``{"op": "release", "scene_id": ...}`` tombstones
    it.  Replaying the file rebuilds the live set exactly; a torn final
    line (crash mid-append) is ignored.  With ``path=None`` the journal
    is memory-only — same semantics, no durability.

    Registration on the serving side is content-derived and idempotent,
    so replaying any suffix, prefix or repetition of the journal into a
    backend converges on the same registered set — the property that
    makes restart/scale-up replay unconditionally safe.
    """

    #: Compact on load once the historical op count exceeds this many
    #: times the live set (plus slack): register/release churn appends
    #: full scene texts and tombstones forever, so without an occasional
    #: rewrite the file and every restart's replay grow with *history*
    #: rather than with the live set.
    COMPACT_FACTOR = 4

    def __init__(self, path: Optional[str] = None, *,
                 compact_on_load: bool = True):
        self.path = Path(path) if path is not None else None
        self._by_digest: dict[str, JournalEntry] = {}
        self._by_scene: dict[str, JournalEntry] = {}
        self.corrupt_lines = 0
        self.compactions = 0
        #: ``False`` keeps the load strictly read-only (the dry-run
        #: validator must never rewrite the file it is inspecting).
        self._compact_on_load = compact_on_load
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        ops = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                ops += 1
                try:
                    op = json.loads(line)
                except json.JSONDecodeError:
                    self.corrupt_lines += 1
                    continue               # torn append; keep replaying
                self._apply(op)
        if (self._compact_on_load
                and ops > self.COMPACT_FACTOR * len(self._by_digest) + 16):
            self._compact()

    def _compact(self) -> None:
        """Rewrite the file as the live register set (atomic).

        Dead history — tombstoned scenes, superseded duplicates, corrupt
        lines — is dropped; the live entries are exactly preserved, so a
        reload after compaction rebuilds identical state.
        """
        assert self.path is not None
        import tempfile

        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                   prefix=".journal-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for digest, entry in self._by_digest.items():
                    handle.write(json.dumps(
                        {"op": "register", "digest": digest,
                         "scene_id": entry.scene_id, "name": entry.name,
                         "text": entry.text},
                        separators=(",", ":"), sort_keys=True) + "\n")
            os.replace(tmp, self.path)
            self.compactions += 1
            self.corrupt_lines = 0          # rewritten clean
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass                        # keep the uncompacted file

    def _apply(self, op: dict) -> None:
        if not isinstance(op, dict):
            self.corrupt_lines += 1
            return
        if op.get("op") == "register" and isinstance(op.get("text"), str):
            entry = JournalEntry(digest=op.get("digest", ""),
                                 scene_id=op.get("scene_id", ""),
                                 name=op.get("name"),
                                 text=op["text"])
            if entry.digest and entry.scene_id:
                self._by_digest[entry.digest] = entry
                self._by_scene.setdefault(entry.scene_id, entry)
        elif op.get("op") == "release" and isinstance(op.get("scene_id"),
                                                      str):
            self._forget(op["scene_id"])
        else:
            self.corrupt_lines += 1

    def _forget(self, scene_id: str) -> bool:
        removed = self._by_scene.pop(scene_id, None) is not None
        for digest in [digest for digest, entry in self._by_digest.items()
                       if entry.scene_id == scene_id]:
            del self._by_digest[digest]
            removed = True
        return removed

    def _append(self, op: dict) -> None:
        if self.path is None:
            return
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(op, separators=(",", ":"),
                                    sort_keys=True) + "\n")

    def record(self, *, digest: str, scene_id: str, name: Optional[str],
               text: str) -> bool:
        """Record one registration; returns False when already journaled."""
        if digest in self._by_digest:
            return False
        entry = JournalEntry(digest=digest, scene_id=scene_id, name=name,
                             text=text)
        self._by_digest[digest] = entry
        self._by_scene.setdefault(scene_id, entry)
        self._append({"op": "register", "digest": digest,
                      "scene_id": scene_id, "name": name, "text": text})
        return True

    def remove(self, scene_id: str) -> bool:
        """Tombstone a scene; returns False when it was not journaled."""
        removed = self._forget(scene_id)
        if removed:
            self._append({"op": "release", "scene_id": scene_id})
        return removed

    def lookup_digest(self, digest: str) -> Optional[JournalEntry]:
        return self._by_digest.get(digest)

    def lookup_scene(self, scene_id: str) -> Optional[JournalEntry]:
        return self._by_scene.get(scene_id)

    def entries(self) -> list[JournalEntry]:
        """Live scenes (tombstoned ones excluded), one per scene id."""
        return list(self._by_scene.values())

    def __len__(self) -> int:
        return len(self._by_scene)


# -- resilience primitives ---------------------------------------------------


class CircuitBreaker:
    """Per-backend circuit breaker: closed → open → half-open.

    ``failure_threshold`` consecutive connection failures open the
    circuit; after ``reset_timeout_s`` of cooldown the breaker admits
    exactly *one* probe (half-open) and its result decides — success
    closes it, failure re-opens it for another cooldown.  While the
    probe is outstanding every other :meth:`allow` answers ``False``,
    so a burst arriving right at cooldown expiry cannot stampede a
    still-sick backend.  Only *connection-level* failures count: a
    backend answering an error envelope is alive and keeps its breaker
    closed.

    The clock is injectable (monotonic seconds) so state transitions are
    unit-testable without sleeping; ``last_failure_at`` is wall-clock,
    for operators reading ``/healthz``.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 2.0, *,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be at least 1, "
                             f"got {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_total = 0               # lifetime open transitions
        self._opened_at: Optional[float] = None
        self._probe_inflight = False        # the single half-open probe
        self.last_failure_at: Optional[float] = None    # wall clock

    def allow(self) -> bool:
        """May a call be attempted now?  (Open → half-open on cooldown.)

        Half-open admits exactly one outstanding probe: the cooldown
        transition grants it, and every further ``allow`` is refused
        until :meth:`record_success` / :meth:`record_failure` settles
        the probe's fate.
        """
        if self.state == "open":
            assert self._opened_at is not None
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                self.state = "half_open"
                self._probe_inflight = True
            else:
                return False
        elif self.state == "half_open":
            if self._probe_inflight:
                return False
            self._probe_inflight = True
        return True

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_at = None
        self._probe_inflight = False

    def record_failure(self) -> None:
        self.last_failure_at = time.time()
        self.consecutive_failures += 1
        self._probe_inflight = False
        if (self.state == "half_open"
                or self.consecutive_failures >= self.failure_threshold):
            if self.state != "open":
                self.opened_total += 1
            self.state = "open"
            self._opened_at = self._clock()

    def describe(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opened_total": self.opened_total,
            "last_failure_at": self.last_failure_at,
        }


class RetryBudget:
    """Router-wide token bucket bounding failover/retry volume.

    Every incoming request earns ``ratio`` tokens (capped at ``burst``);
    every retry — a second or later attempt for the same request —
    spends one.  With the default ratio 0.2 at most ~20% of steady-state
    traffic can be retries, so a dead shard's retry storm is bounded by
    construction rather than by luck.  Purely count-based (no clock):
    deterministic under test and under replay.
    """

    def __init__(self, ratio: float = 0.2, burst: float = 10.0):
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"ratio must be within [0, 1], got {ratio}")
        if burst < 1.0:
            raise ValueError(f"burst must be at least 1, got {burst}")
        self.ratio = ratio
        self.burst = burst
        self.tokens = burst                 # start full: cold-start retries ok
        self.granted = 0
        self.denied = 0

    def on_request(self) -> None:
        """Accrue credit for one incoming (non-retry) request."""
        self.tokens = min(self.burst, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        """Spend one retry token; False = budget exhausted, stop retrying."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.granted += 1
            return True
        self.denied += 1
        return False

    def describe(self) -> dict:
        return {
            "ratio": self.ratio,
            "burst": self.burst,
            "tokens": round(self.tokens, 3),
            "granted": self.granted,
            "denied": self.denied,
        }


class LatencyTracker:
    """Per-backend service-time window + EWMA feeding the gray-failure
    defences.

    The bounded sample window yields the p95 that drives outlier
    ejection and the hedge threshold; the EWMA is the cheap trend line
    operators read off ``/healthz``.  A SIGSTOP'd backend never
    *completes* calls, so its window is fed by the budget-clamped
    timeouts it causes — slowness shows up here even when no call ever
    returns.  ``reset`` clears the window (keeping the lifetime count)
    so a recovered backend re-qualifies on fresh data instead of being
    haunted by its stalled past.
    """

    def __init__(self, window: int = 128, alpha: float = 0.2):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be within (0, 1], got {alpha}")
        self._samples: deque = deque(maxlen=window)
        self.alpha = alpha
        self.ewma_ms: Optional[float] = None
        self.count = 0                      # lifetime samples recorded

    def record(self, seconds: float) -> None:
        ms = seconds * 1000.0
        self._samples.append(ms)
        self.count += 1
        self.ewma_ms = (ms if self.ewma_ms is None
                        else self.alpha * ms + (1 - self.alpha) * self.ewma_ms)

    @property
    def window_count(self) -> int:
        return len(self._samples)

    def percentile(self, fraction: float) -> Optional[float]:
        """The *fraction*-quantile (0..1) of the window, in ms, or None."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(int(fraction * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def reset(self) -> None:
        self._samples.clear()
        self.ewma_ms = None

    def describe(self) -> dict:
        def _round(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value, 3)

        return {
            "count": self.count,
            "window": len(self._samples),
            "ewma_ms": _round(self.ewma_ms),
            "p50_ms": _round(self.percentile(0.50)),
            "p95_ms": _round(self.percentile(0.95)),
        }


class LastKnownGood:
    """Bounded LRU of the last successful completion per query shape.

    Keyed by ``(scene_id, goal, variant, n, deadline_ms)``; the stored
    payload is a *copy* of the backend's successful response.  When
    every replica of a scene is down, the router serves this copy with
    ``degraded: true`` instead of a 5xx — for an interactive completer a
    stale ranked list beats an error page, and the marker lets clients
    render it honestly.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        self.hits = 0

    def remember(self, key: tuple, payload: dict) -> None:
        self._entries.pop(key, None)
        self._entries[key] = dict(payload)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def get(self, key: tuple) -> Optional[dict]:
        payload = self._entries.get(key)
        if payload is None:
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return dict(payload)

    def purge_scene(self, scene_id: str) -> int:
        """Drop every cached answer for *scene_id* (on release)."""
        stale = [key for key in self._entries if key[0] == scene_id]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)


# -- backends ----------------------------------------------------------------


@dataclass
class Backend:
    """One shard: address, client, and (when managed) its process."""

    backend_id: str
    host: str
    port: int
    client: AsyncCompletionClient
    process: Optional[subprocess.Popen] = None
    snapshot_path: Optional[str] = None
    restarts: int = 0
    healthy: bool = True
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    draining: bool = False                  # admin drain in progress
    inflight: int = 0                       # router calls outstanding
    latency: LatencyTracker = field(default_factory=LatencyTracker)
    ejected: bool = False                   # latency outlier, demoted
    ejected_at: Optional[float] = None      # monotonic; rejoin clock
    load_ewma: float = 0.0                  # supervisor-sampled inflight

    @property
    def managed(self) -> bool:
        return self.process is not None

    def describe(self) -> dict:
        return {
            "backend_id": self.backend_id,
            "address": f"{self.host}:{self.port}",
            "managed": self.managed,
            "healthy": self.healthy,
            "draining": self.draining,
            "restarts": self.restarts,
            "inflight": self.inflight,
            "ejected": self.ejected,
            "latency": self.latency.describe(),
            "load_ewma": round(self.load_ewma, 3),
            "breaker": self.breaker.describe(),
            "snapshot_path": self.snapshot_path,
            # The supervised process id (None when attached): the chaos
            # harness reads this off /healthz to deliver its SIGKILLs —
            # killing through the public health view keeps the harness on
            # the operator's side of the wire.
            "pid": self.process.pid if self.process is not None else None,
        }


_LISTEN_PREFIXES = ("serving on http://", "routing on http://")


def _drain_pipe(stdout, label: str) -> None:
    """Forward a child's remaining output so its pipe can never fill.

    A spawned server keeps writing after its listen line (snapshot
    restore notes, warnings, tracebacks); nobody reading the pipe would
    eventually block the child on a full buffer — a wedged shard the
    supervisor cannot distinguish from overload.  Runs on a daemon
    thread; forwarding to stderr keeps backend diagnostics visible.
    """
    try:
        for line in stdout:
            sys.stderr.write(f"[{label}] {line}")
    except (OSError, ValueError):
        pass                                # child died / pipe closed


def spawn_cli_server(command: str, args: Sequence[str] = (),
                     label: Optional[str] = None
                     ) -> tuple[subprocess.Popen, str, int]:
    """Start ``repro <command> --port 0`` and wait for its listen line.

    Blocking — call from an executor in async code.  Returns
    ``(process, host, port)``.  The child inherits our environment plus
    this package's source root on ``PYTHONPATH``, so spawning works both
    from an installed package and a source checkout; after the listen
    line is seen, a daemon thread keeps draining (and forwarding) the
    child's output.  Shared by the router's backend supervision and the
    smoke harness — one spawn protocol, zero drift.
    """
    import threading

    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", command, "--port", "0",
         *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if not line:
            raise ClientConnectionError(
                f"repro {command} exited before listening "
                f"(rc={process.poll()})")
        if any(line.startswith(prefix) for prefix in _LISTEN_PREFIXES):
            address = line.split("http://", 1)[1].strip()
            host, _, port = address.rpartition(":")
            threading.Thread(
                target=_drain_pipe,
                args=(process.stdout, label or f"{command}:{port}"),
                daemon=True).start()
            return process, host, int(port)


def _spawn_serve_process(snapshot_path: Optional[str],
                         backend_args: Sequence[str],
                         label: Optional[str] = None
                         ) -> tuple[subprocess.Popen, str, int]:
    """Start one ``repro serve --port 0`` backend; blocking (executor)."""
    args = list(backend_args)
    if snapshot_path is not None:
        args = ["--snapshot", snapshot_path] + args
    return spawn_cli_server("serve", args, label=label)


# -- configuration -----------------------------------------------------------


@dataclass(frozen=True)
class RouterConfig:
    """Knobs for one :class:`CompletionRouter`."""

    host: str = "127.0.0.1"
    port: int = 8787                        # 0 = ephemeral
    #: Managed backends to spawn (ignored when ``attach`` names running
    #: servers instead).
    backends: int = 2
    #: Pre-existing backend addresses (``host:port``) to route over
    #: without supervising their processes.
    attach: tuple = ()
    #: Durable scene-journal file; ``None`` keeps the journal in memory
    #: (replays still work within the router's lifetime).
    journal_path: Optional[str] = None
    #: Directory for per-backend result-cache snapshots; when set, each
    #: managed backend gets ``--snapshot <dir>/<backend_id>.snapshot`` so
    #: respawned replicas start warm.
    snapshot_dir: Optional[str] = None
    #: Virtual nodes per backend on the hash ring.
    ring_replicas: int = 64
    #: Extra ``repro serve`` arguments for managed backends
    #: (e.g. ``("--workers", "2")``).
    backend_args: tuple = ()
    #: Per-request timeout towards backends.
    request_timeout: float = 120.0
    read_timeout: float = 60.0
    #: Distinct ring owners per scene (clamped to the live backend
    #: count).  R=2 means one SIGKILL never stalls a scene: a sibling
    #: replica already holds it.
    replication: int = 2
    #: Consecutive connection failures that open a backend's breaker.
    breaker_failures: int = 5
    #: Cooldown before an open breaker admits a half-open probe.
    breaker_reset_s: float = 2.0
    #: Retry tokens earned per incoming request (≤ this fraction of
    #: traffic can be failover retries) and the bucket's burst cap.
    retry_budget_ratio: float = 0.2
    retry_budget_burst: float = 10.0
    #: Last-known-good completion cache entries kept for degraded
    #: answers when every replica of a scene is down.
    lkg_entries: int = 512
    #: Supervisor sweep period: how often dead managed processes are
    #: re-kicked and unhealthy attached backends probed.
    supervise_interval_s: float = 0.25
    #: Hedged retries: when the first attempt outlives
    #: ``hedge_factor`` × its backend's windowed p95 (floored at
    #: ``hedge_floor_ms`` so a cold window cannot hedge instantly), one
    #: budgeted hedge fires to the next live sibling replica.  Hedges
    #: spend the same retry-budget token bucket as failovers, so hedge
    #: amplification is bounded by ``retry_budget_ratio`` by
    #: construction.  ``hedge_factor=0`` disables hedging.
    hedge_factor: float = 2.0
    hedge_floor_ms: int = 50
    #: Latency outlier ejection: a backend whose windowed p95 exceeds
    #: ``eject_multiplier`` × the cohort median (both sides needing at
    #: least ``eject_min_samples`` window samples) is demoted in
    #: candidate ordering like a half-open breaker; after
    #: ``eject_reset_s`` it rejoins with a cleared window.
    eject_multiplier: float = 3.0
    eject_min_samples: int = 16
    eject_reset_s: float = 5.0
    #: Sustained-skew rebalancing: when the hottest backend's
    #: supervisor-sampled inflight EWMA exceeds
    #: ``rebalance_skew_ratio`` × the coldest's *and* the absolute gap
    #: is at least ``rebalance_min_gap``, continuously for
    #: ``rebalance_dwell_s`` seconds, up to ``rebalance_max_scenes`` of
    #: the hottest backend's busiest scenes are re-homed onto the
    #: coldest owner (journal re-teach + sticky-session re-home).
    #: ``rebalance_dwell_s=0`` disables the automatic policy; the
    #: ``rebalance`` admin action still triggers one pass on demand.
    rebalance_skew_ratio: float = 3.0
    rebalance_min_gap: float = 4.0
    rebalance_dwell_s: float = 10.0
    rebalance_max_scenes: int = 8


def check_config(config: RouterConfig, *,
                 read_journal: bool = True) -> list[str]:
    """Validate a router configuration without spawning (or writing)
    anything.

    Returns a list of human-readable problems (empty = valid); backs
    ``repro route --check-config`` so CI can fail fast on misconfigured
    shard maps before paying for process spawns.  ``read_journal=False``
    skips parsing the journal's contents (path/permission checks only) —
    used on the real startup path, where the router is about to parse the
    file anyway and a second full read would double startup I/O.
    """
    problems: list[str] = []
    if config.attach:
        for address in config.attach:
            host, _, port = str(address).rpartition(":")
            if not host or not port.isdigit() or not 0 < int(port) < 65536:
                problems.append(f"--attach address {address!r} is not "
                                f"host:port")
    elif config.backends < 1:
        problems.append(f"--backends must be at least 1, "
                        f"got {config.backends}")
    if config.ring_replicas < 1:
        problems.append(f"--ring-replicas must be at least 1, "
                        f"got {config.ring_replicas}")
    if config.replication < 1:
        problems.append(f"--replication must be at least 1, "
                        f"got {config.replication}")
    if not 0.0 <= config.retry_budget_ratio <= 1.0:
        problems.append(f"retry budget ratio must be within [0, 1], "
                        f"got {config.retry_budget_ratio}")
    if config.breaker_failures < 1:
        problems.append(f"breaker failure threshold must be at least 1, "
                        f"got {config.breaker_failures}")
    if config.hedge_factor < 0:
        problems.append(f"hedge factor must be non-negative, "
                        f"got {config.hedge_factor}")
    if config.hedge_floor_ms < 0:
        problems.append(f"hedge floor must be non-negative, "
                        f"got {config.hedge_floor_ms}")
    if config.eject_multiplier < 1.0:
        problems.append(f"eject multiplier must be at least 1, "
                        f"got {config.eject_multiplier}")
    if config.eject_min_samples < 1:
        problems.append(f"eject min samples must be at least 1, "
                        f"got {config.eject_min_samples}")
    if config.rebalance_skew_ratio < 1.0:
        problems.append(f"rebalance skew ratio must be at least 1, "
                        f"got {config.rebalance_skew_ratio}")
    if config.rebalance_dwell_s < 0:
        problems.append(f"rebalance dwell must be non-negative, "
                        f"got {config.rebalance_dwell_s}")
    if config.rebalance_max_scenes < 1:
        problems.append(f"rebalance max scenes must be at least 1, "
                        f"got {config.rebalance_max_scenes}")
    if config.attach and config.snapshot_dir is not None:
        problems.append("--snapshot-dir only applies to managed backends "
                        "(drop it or drop --attach)")
    if config.journal_path is not None:
        parent = Path(config.journal_path).resolve().parent
        if not parent.is_dir():
            problems.append(f"journal directory {parent} does not exist")
        elif not os.access(parent, os.W_OK):
            problems.append(f"journal directory {parent} is not writable")
        elif Path(config.journal_path).exists():
            if not os.access(config.journal_path, os.R_OK):
                problems.append(f"journal {config.journal_path} is not "
                                f"readable")
            elif read_journal:
                try:
                    # Strictly read-only: a validator must never rewrite
                    # (compact) the file it is inspecting.
                    journal = SceneJournal(config.journal_path,
                                           compact_on_load=False)
                except OSError as exc:
                    problems.append(f"journal {config.journal_path} "
                                    f"cannot be read: {exc}")
                else:
                    if journal.corrupt_lines:
                        problems.append(
                            f"journal {config.journal_path} has "
                            f"{journal.corrupt_lines} unreadable line(s) "
                            f"({len(journal)} scenes replayable)")
    if config.snapshot_dir is not None and not config.attach:
        snapshot_dir = Path(config.snapshot_dir).resolve()
        if snapshot_dir.exists():
            if not snapshot_dir.is_dir():
                problems.append(f"--snapshot-dir {config.snapshot_dir} "
                                f"exists and is not a directory")
            elif not os.access(snapshot_dir, os.W_OK):
                problems.append(f"--snapshot-dir {config.snapshot_dir} "
                                f"is not writable")
        else:
            # start() will mkdir -p; fail fast if no existing ancestor
            # would allow that.
            ancestor = snapshot_dir.parent
            while not ancestor.exists() and ancestor != ancestor.parent:
                ancestor = ancestor.parent
            if not (ancestor.is_dir() and os.access(ancestor, os.W_OK)):
                problems.append(f"--snapshot-dir {config.snapshot_dir} "
                                f"cannot be created (nearest existing "
                                f"ancestor {ancestor} is not a writable "
                                f"directory)")
    return problems


# -- the router --------------------------------------------------------------


class CompletionRouter:
    """HTTP/JSON front door that shards scenes over backend servers."""

    #: The router serves the backend surface plus its own admin
    #: endpoints — the shared prefix is the server's tuple, so a
    #: *backend* endpoint can never exist on one side only.
    KNOWN_PATHS = AsyncCompletionServer.KNOWN_PATHS + (
        "/v1/admin/backends",)

    def __init__(self, config: Optional[RouterConfig] = None):
        self.config = config or RouterConfig()
        self.ring = HashRing(self.config.ring_replicas)
        self.journal = SceneJournal(self.config.journal_path)
        self.backends: dict[str, Backend] = {}
        self.requests: Counter = Counter()
        self.errors: Counter = Counter()
        self.reregistrations = 0            # unknown-scene retries served
        self.replayed = 0                   # journal entries re-registered
        self.restarts = 0                   # backend respawns
        self.edits = 0                      # scene deltas forwarded
        self.streams_proxied = 0            # streamed completions proxied
        self.failovers = 0                  # replica attempts failed over
        self.degraded_served = 0            # LKG answers with degraded: true
        self.drains = 0                     # admin drains completed
        self.deadline_exceeded = 0          # budget fast-fails (shed on time)
        self.slow_timeouts = 0              # attempts cut by the clamp
        self.hedges = 0                     # hedged retries fired
        self.hedges_won = 0                 # of which the hedge answered first
        self.ejections = 0                  # latency outliers demoted
        self.rebalances = 0                 # skew-driven scene migrations
        #: Recent rebalance decisions, oldest first, for stats readers.
        self.rebalance_events: deque = deque(maxlen=32)
        #: scene id -> serve count; feeds hottest-scene selection when a
        #: rebalance fires.  Bounded: beyond the cap the cold half is
        #: dropped (the hot entries are the only ones rebalancing reads).
        self._scene_traffic: Counter = Counter()
        self._skew_since: Optional[float] = None    # monotonic dwell clock
        self.retry_budget = RetryBudget(self.config.retry_budget_ratio,
                                        self.config.retry_budget_burst)
        self.lkg = LastKnownGood(self.config.lkg_entries)
        self._respawn_tasks: dict[str, asyncio.Task] = {}
        self._supervisor_task: Optional[asyncio.Task] = None
        #: scene id -> backend id for delta-edited scenes: an edit leaves
        #: warm incremental state on the backend that applied it, which
        #: the ring (hashing the *new* content id) knows nothing about.
        #: Bounded FIFO; a stale home self-heals through the
        #: unknown-scene re-teach path, because re-teaching registers the
        #: journaled text wherever :meth:`_owner` routed the request.
        self._session_homes: dict[str, str] = {}
        self.started = time.monotonic()
        self._respawn_locks: dict[str, asyncio.Lock] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self.host = self.config.host
        self.port = self.config.port

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self.config.attach:
            for address in self.config.attach:
                host, _, port = str(address).rpartition(":")
                self._adopt_backend(Backend(
                    backend_id=address, host=host, port=int(port),
                    client=self._client(host, int(port))))
        else:
            if self.config.snapshot_dir is not None:
                Path(self.config.snapshot_dir).mkdir(parents=True,
                                                     exist_ok=True)
            for index in range(self.config.backends):
                await self._spawn_backend(f"b{index}")
        for backend in self.backends.values():
            await wait_until_healthy(backend.client)
            await self._replay_into(backend)
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._supervisor_task = asyncio.ensure_future(self._supervise())

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            try:
                await self._supervisor_task
            except asyncio.CancelledError:
                pass
            self._supervisor_task = None
        for task in self._respawn_tasks.values():
            if not task.done():
                task.cancel()
        for task in self._respawn_tasks.values():
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass                        # shutting down; outcome moot
        self._respawn_tasks.clear()
        for backend in self.backends.values():
            await backend.client.close()
            if backend.process is not None:
                backend.process.terminate()
        for backend in self.backends.values():
            if backend.process is not None:
                try:
                    backend.process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    backend.process.kill()
                    backend.process.wait()

    def _client(self, host: str, port: int) -> AsyncCompletionClient:
        return AsyncCompletionClient(host, port,
                                     timeout=self.config.request_timeout)

    def _adopt_backend(self, backend: Backend) -> None:
        backend.breaker = CircuitBreaker(self.config.breaker_failures,
                                         self.config.breaker_reset_s)
        self.backends[backend.backend_id] = backend
        self.ring.add(backend.backend_id)
        self._respawn_locks[backend.backend_id] = asyncio.Lock()

    def _backend_snapshot_path(self, backend_id: str) -> Optional[str]:
        if self.config.snapshot_dir is None:
            return None
        return str(Path(self.config.snapshot_dir)
                   / f"{backend_id}.snapshot")

    async def _spawn_backend(self, backend_id: str) -> Backend:
        snapshot_path = self._backend_snapshot_path(backend_id)
        loop = asyncio.get_running_loop()
        process, host, port = await loop.run_in_executor(
            None, _spawn_serve_process, snapshot_path,
            self.config.backend_args, backend_id)
        backend = Backend(backend_id=backend_id, host=host, port=port,
                          client=self._client(host, port), process=process,
                          snapshot_path=snapshot_path)
        self._adopt_backend(backend)
        return backend

    # -- supervision ---------------------------------------------------------

    async def _respawn(self, backend: Backend) -> None:
        """Restart a dead managed backend and replay its journal shard.

        Serialised per backend: concurrent requests that all hit the dead
        shard pay one restart between them.  The respawned process
        restores its own snapshot (``repro serve --snapshot``), then the
        journal replay re-registers every scene the ring assigns it —
        restart over, state intact, warm where the snapshot had entries.
        """
        async with self._respawn_locks[backend.backend_id]:
            process = backend.process
            if process is not None and process.poll() is None:
                return                      # a peer already respawned it
            backend.healthy = False
            if process is not None:
                process.wait()              # reap the corpse
            await backend.client.close()
            loop = asyncio.get_running_loop()
            new_process, host, port = await loop.run_in_executor(
                None, _spawn_serve_process, backend.snapshot_path,
                self.config.backend_args, backend.backend_id)
            backend.process = new_process
            backend.host, backend.port = host, port
            backend.client = self._client(host, port)
            backend.restarts += 1
            self.restarts += 1
            await wait_until_healthy(backend.client)
            await self._replay_into(backend)
            backend.healthy = True
            backend.breaker.record_success()    # fresh process, clean slate

    async def _replay_into(self, backend: Backend) -> int:
        """Re-register every journaled scene whose R-owner set contains
        *backend* — with replication > 1 each scene replays into every
        surviving copy of its replica set, not just one primary."""
        replayed = 0
        for entry in self.journal.entries():
            owners = self.ring.route_n(entry.scene_id,
                                       self.config.replication)
            if backend.backend_id not in owners:
                continue
            try:
                await backend.client.register_scene(entry.text,
                                                    name=entry.name)
                replayed += 1
            except ReproError:
                self.errors["replay"] += 1   # scene text rotted; keep going
        self.replayed += replayed
        return replayed

    #: Most sticky edit-session homes kept (FIFO beyond this).
    MAX_SESSION_HOMES = 1024

    def _owner(self, scene_id: str) -> Backend:
        candidates = self._candidates(scene_id)
        if not candidates:
            raise ProtocolError("no backends on the ring", code="internal")
        return candidates[0]

    def _candidates(self, scene_id: str) -> list[Backend]:
        """The scene's replica set, best-first.

        The sticky edit-session home (warm incremental state) leads when
        it exists; the ring's R owners follow, healthiest and
        least-loaded first, so reads land on a live replica even while a
        sibling is mid-respawn.  An ejected backend (latency outlier)
        sorts with the non-closed breakers: still a candidate of last
        resort, never the first choice.
        """
        ids: list[str] = []
        home = self._session_homes.get(scene_id)
        if home is not None and home in self.backends:
            ids.append(home)
        for owner_id in self.ring.route_n(scene_id,
                                          self.config.replication):
            if owner_id not in ids:
                ids.append(owner_id)
        head = [self.backends[home]] if ids and ids[0] == home else []
        tail = [self.backends[backend_id]
                for backend_id in ids[len(head):]
                if backend_id in self.backends]
        tail.sort(key=lambda b: (not b.healthy,
                                 b.ejected or b.breaker.state != "closed",
                                 b.inflight))
        return head + tail

    def _kick_respawn(self, backend: Backend) -> None:
        """Start a *background* respawn of a dead managed backend.

        The request that found the corpse fails over to a sibling
        replica instead of paying the restart; the respawn task (one per
        backend, serialised by the respawn lock) rebuilds the replica
        off the critical path.
        """
        if not backend.managed or backend.process.poll() is None:
            return
        task = self._respawn_tasks.get(backend.backend_id)
        if task is not None and not task.done():
            return
        task = asyncio.ensure_future(self._respawn(backend))
        task.add_done_callback(self._respawn_task_done)
        self._respawn_tasks[backend.backend_id] = task

    def _respawn_task_done(self, task: asyncio.Task) -> None:
        if task.cancelled():
            return
        if task.exception() is not None:
            self.errors["respawn"] += 1     # the supervisor sweep re-kicks

    async def _supervise(self) -> None:
        """Background sweep: recover backends that traffic routes around.

        With replicated reads, a corpse stops *receiving* requests the
        moment it is marked unhealthy — so request-driven respawn alone
        can strand it dead forever (and a kick lost to the SIGKILL/
        ``poll()`` race would never be retried).  This loop re-kicks
        dead managed processes and health-probes unhealthy attached
        backends so both kinds rejoin without needing a request to trip
        over them.  The same sweep re-evaluates latency-outlier
        ejections and runs the sustained-skew rebalance policy — gray
        failures are a supervision concern exactly like crashes.
        """
        while True:
            await asyncio.sleep(self.config.supervise_interval_s)
            for backend in list(self.backends.values()):
                if backend.managed:
                    if backend.process.poll() is not None:
                        self._kick_respawn(backend)
                elif not backend.healthy:
                    try:
                        await backend.client.healthz()
                    except ReproError:
                        continue            # still down; next sweep retries
                    backend.healthy = True
                    backend.breaker.record_success()
            self._sweep_ejections(time.monotonic())
            await self._sweep_rebalance(time.monotonic())

    def _sweep_ejections(self, now: float) -> None:
        """Demote latency outliers; readmit served-out ejections.

        A backend whose windowed p95 detaches from the cohort median by
        ``eject_multiplier`` is marked ejected — candidate ordering then
        treats it like a half-open breaker (last resort, not first
        choice).  After ``eject_reset_s`` the mark clears and the
        latency window resets, so readmission is judged on post-recovery
        samples only.  Pure function of tracker state + *now*: unit
        tests drive it directly with fabricated samples and clocks.
        """
        backends = list(self.backends.values())
        for backend in backends:
            if not backend.ejected:
                continue
            assert backend.ejected_at is not None
            if now - backend.ejected_at >= self.config.eject_reset_s:
                backend.ejected = False
                backend.ejected_at = None
                backend.latency.reset()
        if len(backends) < 2:
            return
        minimum = self.config.eject_min_samples
        for backend in backends:
            if backend.ejected:
                continue
            if backend.latency.window_count < minimum:
                continue
            mine = backend.latency.percentile(0.95)
            cohort = sorted(
                sibling.latency.percentile(0.95)
                for sibling in backends
                if sibling is not backend
                and sibling.latency.window_count >= minimum)
            if mine is None or not cohort:
                continue
            median = cohort[len(cohort) // 2]
            if median > 0 and mine > self.config.eject_multiplier * median:
                backend.ejected = True
                backend.ejected_at = now
                self.ejections += 1

    #: Supervisor-sample smoothing for per-backend inflight load.
    LOAD_EWMA_ALPHA = 0.3
    #: Most per-scene traffic counters kept; beyond this the cold half
    #: is dropped (only the hot entries feed rebalance decisions).
    MAX_SCENE_TRAFFIC = 4096

    def _note_scene_traffic(self, scene_id: str) -> None:
        self._scene_traffic[scene_id] += 1
        if len(self._scene_traffic) > self.MAX_SCENE_TRAFFIC:
            self._scene_traffic = Counter(dict(
                self._scene_traffic.most_common(
                    self.MAX_SCENE_TRAFFIC // 2)))

    def _skew_pair(self) -> Optional[tuple["Backend", "Backend"]]:
        """(hottest, coldest) by load EWMA when skew exceeds the policy
        thresholds, else None."""
        live = [backend for backend in self.backends.values()
                if backend.healthy and not backend.draining]
        if len(live) < 2:
            return None
        hottest = max(live, key=lambda b: b.load_ewma)
        coldest = min(live, key=lambda b: b.load_ewma)
        gap = hottest.load_ewma - coldest.load_ewma
        ratio_ok = (hottest.load_ewma
                    > self.config.rebalance_skew_ratio * coldest.load_ewma)
        if ratio_ok and gap >= self.config.rebalance_min_gap:
            return hottest, coldest
        return None

    async def _sweep_rebalance(self, now: float) -> None:
        """One tick of the sustained-skew policy (dwell-gated)."""
        if self.config.rebalance_dwell_s <= 0:
            return
        for backend in self.backends.values():
            backend.load_ewma = (
                self.LOAD_EWMA_ALPHA * backend.inflight
                + (1 - self.LOAD_EWMA_ALPHA) * backend.load_ewma)
        pair = self._skew_pair()
        if pair is None:
            self._skew_since = None
            return
        if self._skew_since is None:
            self._skew_since = now
            return
        if now - self._skew_since < self.config.rebalance_dwell_s:
            return
        await self._rebalance_once(*pair)

    async def _rebalance_once(self, hot: "Backend",
                              cold: "Backend") -> dict:
        """Re-home up to ``rebalance_max_scenes`` of *hot*'s busiest
        scenes onto *cold*.

        Reuses the machinery every other recovery path already trusts:
        the journal re-teaches the scene's text to the cold owner
        (registration is idempotent), then the sticky-session home map
        points the scene there — exactly how drains move edit sessions.
        The hot copy is left in place; eviction reclaims it, and a
        stale copy is harmless because routing follows the home map.
        """
        moved: list[str] = []
        for scene_id, _hits in self._scene_traffic.most_common():
            if len(moved) >= self.config.rebalance_max_scenes:
                break
            candidates = self._candidates(scene_id)
            if not candidates:
                continue
            if candidates[0].backend_id != hot.backend_id:
                continue                    # not this backend's load
            entry = self.journal.lookup_scene(scene_id)
            if entry is None:
                continue                    # nothing durable to re-teach
            try:
                await self._call_fast(cold, lambda c, e=entry:
                                      c.register_scene(e.text, name=e.name))
            except (ProtocolError, ServerError):
                continue                    # cold owner balked; skip scene
            self._remember_home(scene_id, cold.backend_id)
            self._scene_traffic.pop(scene_id, None)     # count afresh
            moved.append(scene_id)
        event = {"from": hot.backend_id, "to": cold.backend_id,
                 "scenes": moved, "at": time.time()}
        if moved:
            self.rebalances += 1
            self.rebalance_events.append(event)
        self._skew_since = None             # moved (or nothing movable):
        return event                        # re-observe before acting again

    async def _call_fast(self, backend: Backend,
                         call: Callable[[AsyncCompletionClient],
                                        Awaitable[dict]]) -> dict:
        """One backend RPC with *no* blocking recovery.

        A connection failure marks the breaker, kicks a background
        respawn, and raises — the caller's ladder fails over to a
        sibling replica instead of waiting out a restart here.
        """
        backend.inflight += 1
        started = time.monotonic()
        try:
            result = await call(backend.client)
        except ClientConnectionError as exc:
            backend.healthy = False
            backend.breaker.record_failure()
            self._kick_respawn(backend)
            raise ProtocolError(
                f"backend {backend.backend_id} unreachable: {exc}",
                code="internal") from exc
        finally:
            backend.inflight -= 1
        backend.latency.record(time.monotonic() - started)
        backend.healthy = True
        backend.breaker.record_success()
        return result

    def _remember_home(self, scene_id: str, backend_id: str) -> None:
        self._session_homes.pop(scene_id, None)
        self._session_homes[scene_id] = backend_id
        while len(self._session_homes) > self.MAX_SESSION_HOMES:
            self._session_homes.pop(next(iter(self._session_homes)))

    async def _call(self, backend: Backend,
                    call: Callable[[AsyncCompletionClient], Awaitable[dict]]
                    ) -> dict:
        """One backend RPC with crash-respawn-retry for managed shards.

        The *blocking* recovery path: used where there is no sibling
        replica to fail over to (registrations, last-resort completions,
        R=1 topologies) — the first failing request pays the restart
        rather than erroring.  Serialised by the respawn lock, so a
        storm collapses onto one restart.
        """
        try:
            result = await call(backend.client)
            backend.healthy = True          # answered: recovered if it was down
            backend.breaker.record_success()
            return result
        except ClientConnectionError as exc:
            error: Exception = exc
            backend.breaker.record_failure()
            if backend.managed:
                if backend.process.poll() is None:
                    # The connection broke but the process looks alive —
                    # give a just-killed process a beat to actually die
                    # before deciding which failure this is.
                    await asyncio.sleep(0.2)
                if backend.process.poll() is not None:
                    # The respawn or the retried call can themselves fail
                    # (child dies before listening, respawned process
                    # crashes again); that is still shard infrastructure
                    # down, never a client error — fall through to the
                    # 'internal' wrap below rather than letting a bare
                    # ClientConnectionError surface as a 400.
                    try:
                        await self._respawn(backend)
                        result = await call(backend.client)
                        backend.breaker.record_success()
                        return result
                    except ClientConnectionError as retry_exc:
                        backend.breaker.record_failure()
                        error = retry_exc
            backend.healthy = False
            raise ProtocolError(
                f"backend {backend.backend_id} unreachable: {error}",
                code="internal") from error

    # -- connection handling (same wire as the server) -----------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_http_request(reader),
                        self.config.read_timeout)
                except asyncio.TimeoutError:
                    break
                except _HttpError as error:
                    self.errors["bad_request"] += 1
                    writer.write(_http_response(
                        error.status,
                        protocol.error_payload("bad_request", str(error)),
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                stream_payload = _stream_request_payload(request)
                if stream_payload is not None:
                    await self._proxy_stream(stream_payload, writer)
                    break               # EOF-framed body: connection is done
                status, payload = await self._dispatch(request)
                writer.write(_http_response(status, payload,
                                            request.keep_alive))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: _HttpRequest) -> tuple[int, dict]:
        route = (request.method, request.path)
        if request.path in self.KNOWN_PATHS and request.method in ("GET",
                                                                   "POST"):
            self.requests[f"{request.method} {request.path}"] += 1
        else:
            self.requests["other"] += 1
        try:
            if route == ("GET", "/healthz"):
                return 200, self._healthz_payload()
            if route == ("GET", "/v1/stats"):
                return 200, await self._stats_payload()
            if route == ("POST", "/v1/register-scene"):
                request_obj = RegisterSceneRequest.from_payload(
                    protocol.decode_body(request.body))
                return 200, await self.register_text(request_obj.text,
                                                      request_obj.name)
            if route == ("POST", "/v1/complete"):
                return 200, await self._complete_one(
                    CompleteRequest.from_payload(
                        protocol.decode_body(request.body)))
            if route == ("POST", "/v1/complete-batch"):
                return 200, await self._handle_batch(
                    protocol.decode_body(request.body))
            if route == ("POST", "/v1/release-scene"):
                return 200, await self._handle_release(
                    protocol.decode_body(request.body))
            if route == ("POST", "/v1/edit-scene"):
                return 200, await self._handle_edit(
                    protocol.decode_body(request.body))
            if route == ("GET", "/v1/admin/backends"):
                return 200, self._admin_list_payload()
            if route == ("POST", "/v1/admin/backends"):
                return 200, await self._handle_admin(
                    protocol.decode_body(request.body))
            if request.path in self.KNOWN_PATHS:
                self.errors["bad_request"] += 1
                return 405, protocol.error_payload(
                    "bad_request",
                    f"method {request.method} not allowed on {request.path}")
            raise ProtocolError(f"unknown path {request.path!r}",
                                code="not_found")
        except ServerError as error:
            # A backend answered an error envelope: pass it through with
            # its own code and status — the router adds no new failure
            # vocabulary to the wire.
            self.errors[error.code] += 1
            return error.status, protocol.error_payload(error.code,
                                                        error.message)
        except ProtocolError as error:
            self.errors[error.code] += 1
            return error.status, protocol.error_payload(error.code,
                                                        str(error))
        except ReproError as error:
            self.errors["bad_request"] += 1
            return 400, protocol.error_payload("bad_request", str(error))
        except Exception as error:          # noqa: BLE001 — serving boundary
            self.errors["internal"] += 1
            return 500, protocol.error_payload(
                "internal", f"{type(error).__name__}: {error}")

    # -- endpoint: register-scene --------------------------------------------

    async def register_text(self, text: str,
                            name: Optional[str] = None) -> dict:
        """Register one scene on every backend in its replica set.

        The routing key — the content-derived scene id — only exists
        after a backend has prepared the scene, so new text is first
        registered on a deterministic *probe* backend (hash of the text
        digest).  Once the id is known, the scene is registered on all R
        ring owners and released from the probe when it is not one of
        them; the journal then remembers digest → scene id, so every
        later registration and inline completion of the same text routes
        straight to the owners.
        """
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        known = self.journal.lookup_digest(digest)
        if known is not None:
            return await self._register_on_owners(known.scene_id, text,
                                                  name)

        probe = self.backends[self.ring.route(_DIGEST_KEY_PREFIX + digest)]
        response = await self._call(
            probe, lambda c: c.register_scene(text, name=name))
        scene_id = response["scene_id"]
        owner_ids = self.ring.route_n(scene_id, self.config.replication)
        if probe.backend_id not in owner_ids:
            try:                            # de-home the probe's stray copy
                await probe.client.release_scene(scene_id)
            except (ReproError, ClientConnectionError):
                pass                        # best-effort; eviction covers it
        self.journal.record(digest=digest, scene_id=scene_id,
                            name=name or response.get("name"), text=text)
        try:
            return await self._register_on_owners(scene_id, text, name)
        except ProtocolError:
            # Every owner is down right now: the registration is still
            # durable (journal) and valid (the probe prepared it) — the
            # replay/re-teach paths finish placement when owners return.
            return response

    async def _register_on_owners(self, scene_id: str, text: str,
                                  name: Optional[str]) -> dict:
        """Register *text* on each replica-set backend; first response
        wins, later copies are best-effort (a dead sibling is re-taught
        by journal replay when it respawns)."""
        response: Optional[dict] = None
        last_error: Optional[ProtocolError] = None
        for backend in self._candidates(scene_id):
            try:
                if response is None:
                    response = await self._call(
                        backend, lambda c: c.register_scene(text, name=name))
                else:
                    await self._call_fast(
                        backend, lambda c: c.register_scene(text, name=name))
            except ProtocolError as error:
                if error.code != "internal":
                    raise                   # scene itself is bad: surface it
                last_error = error
        if response is None:
            raise last_error or ProtocolError("no backends on the ring",
                                              code="internal")
        return response

    # -- endpoint: complete --------------------------------------------------

    async def _resolve_scene_id(self, request: CompleteRequest) -> str:
        """The routing key for one completion request.

        Inline scene text resolves to a scene id first (journal hit is a
        dict lookup; miss pays one registration) so the query routes by
        the same key every time.
        """
        if request.scene_id is not None:
            return request.scene_id
        digest = hashlib.sha256(request.scene.encode("utf-8")).hexdigest()
        entry = self.journal.lookup_digest(digest)
        if entry is None:
            registered = await self.register_text(request.scene, None)
            return registered["scene_id"]
        return entry.scene_id

    @staticmethod
    def _lkg_key(scene_id: str, request: CompleteRequest) -> tuple:
        # Context hints DO key the LKG store (unlike the backend result
        # cache): LKG replays full serialized *responses*, whose snippet
        # order already reflects the hints they were served with.
        context = (None if request.context is None
                   else tuple(sorted(request.context.to_payload().items())))
        return (scene_id, request.goal, request.variant, request.n,
                request.deadline_ms, context)

    def _remember_lkg(self, key: tuple, response: dict) -> dict:
        if response.get("ok") and not response.get("partial"):
            self.lkg.remember(key, response)
        return response

    # -- end-to-end deadline arithmetic --------------------------------------

    @staticmethod
    def _deadline_at(request: CompleteRequest) -> Optional[float]:
        """The absolute (monotonic) instant this request's budget dies.

        Computed once at ingress from the client-stamped ``budget_ms``;
        every downstream clamp and hop re-derives *remaining* budget
        from this single anchor, so retries and hedges can never renew
        the budget.
        """
        if request.budget_ms is None:
            return None
        return time.monotonic() + request.budget_ms / 1000.0

    @staticmethod
    def _remaining_budget_ms(deadline_at: Optional[float]) -> Optional[int]:
        """Whole milliseconds of budget left; clamped at 0, never None
        for a budgeted request."""
        if deadline_at is None:
            return None
        return max(0, int((deadline_at - time.monotonic()) * 1000))

    def _fail_fast_if_spent(self, deadline_at: Optional[float]) -> None:
        """A spent budget is refused *before* dispatch — the client
        already stopped caring, so burning a backend slot (or a retry
        token) on the answer is pure waste."""
        if deadline_at is None:
            return
        if deadline_at - time.monotonic() <= 0:
            self.deadline_exceeded += 1
            raise ProtocolError(
                "end-to-end budget spent before dispatch",
                code="deadline_exceeded")

    def _attempt_timeout_s(self, deadline_at: Optional[float]) -> float:
        """Per-attempt timeout: ``min(request_timeout, remaining)``."""
        if deadline_at is None:
            return self.config.request_timeout
        return min(self.config.request_timeout,
                   max(deadline_at - time.monotonic(), 0.0))

    async def _complete_one(self, request: CompleteRequest) -> dict:
        scene_id = await self._resolve_scene_id(request)
        deadline_at = self._deadline_at(request)

        def call(client: AsyncCompletionClient) -> Awaitable[dict]:
            # Re-derived per attempt: each hop sees only what is left.
            # Context hints ride every attempt, so failover and hedge
            # retries rank exactly like the first try.
            return client.complete(scene_id, goal=request.goal,
                                   variant=request.variant, n=request.n,
                                   deadline_ms=request.deadline_ms,
                                   budget_ms=self._remaining_budget_ms(
                                       deadline_at),
                                   priority=request.priority,
                                   context=request.context)

        return await self._serve_with_failover(scene_id, request, call,
                                               deadline_at=deadline_at)

    async def _attempt_backend(self, backend: Backend, scene_id: str,
                               call: Callable[[AsyncCompletionClient],
                                              Awaitable[dict]]) -> dict:
        """One replica attempt, with the journal re-teach for a backend
        that is alive but lost the scene (eviction, unsupervised
        restart) — invisible upstream."""
        try:
            return await self._call_fast(backend, call)
        except SceneNotFoundError:
            entry = self.journal.lookup_scene(scene_id)
            if entry is None:
                raise                       # never registered through us
            self.reregistrations += 1
            await self._call_fast(backend, lambda c: c.register_scene(
                entry.text, name=entry.name))
            return await self._call_fast(backend, call)

    async def _attempt_timed(self, backend: Backend, scene_id: str,
                             call: Callable[[AsyncCompletionClient],
                                            Awaitable[dict]],
                             deadline_at: Optional[float]) -> dict:
        """One replica attempt under the budget-clamped timeout.

        The clamp is ``min(request_timeout, remaining_budget)`` — a
        SIGSTOP'd backend can hold an attempt for at most the smaller
        of the two, never the flat 120 s.  A cut attempt still records
        its elapsed time into the backend's latency window (slowness
        must show up even when nothing returns) and surfaces as
        ``deadline_exceeded`` when the budget is what expired, or as an
        ordinary failover-able ``internal`` otherwise.
        """
        timeout = self._attempt_timeout_s(deadline_at)
        started = time.monotonic()
        try:
            return await asyncio.wait_for(
                self._attempt_backend(backend, scene_id, call), timeout)
        except asyncio.TimeoutError:
            backend.latency.record(time.monotonic() - started)
            self.slow_timeouts += 1
            if deadline_at is not None and time.monotonic() >= deadline_at:
                self.deadline_exceeded += 1
                raise ProtocolError(
                    f"backend {backend.backend_id} outlived the "
                    f"remaining end-to-end budget",
                    code="deadline_exceeded") from None
            raise ProtocolError(
                f"backend {backend.backend_id} exceeded the "
                f"{timeout:.3f}s per-attempt timeout",
                code="internal") from None

    def _hedge_delay_s(self, backend: Backend,
                       deadline_at: Optional[float]) -> Optional[float]:
        """How long the first attempt may run before a hedge fires.

        Percentile-derived — ``hedge_factor`` × the backend's windowed
        p95, floored at ``hedge_floor_ms`` so an empty window cannot
        hedge every request — and budget-bounded: with a live deadline
        the hedge fires no later than half the remaining budget, so the
        hedge itself still has budget to run in.  ``None`` = disabled.
        """
        if self.config.hedge_factor <= 0:
            return None
        p95_ms = backend.latency.percentile(0.95)
        delay = max(self.config.hedge_floor_ms / 1000.0,
                    (p95_ms or 0.0) / 1000.0 * self.config.hedge_factor)
        if deadline_at is not None:
            remaining = max(deadline_at - time.monotonic(), 0.0)
            delay = min(delay, remaining / 2)
        return delay

    @staticmethod
    def _settle_task(task: "asyncio.Task") -> None:
        """Cancel a losing hedge arm and keep its eventual exception
        from tripping the event loop's never-retrieved warning."""
        task.cancel()
        task.add_done_callback(
            lambda t: t.cancelled() or t.exception())

    async def _attempt_hedged(self, backend: Backend,
                              siblings: Sequence[Backend], scene_id: str,
                              call: Callable[[AsyncCompletionClient],
                                             Awaitable[dict]],
                              deadline_at: Optional[float]) -> dict:
        """The first ladder rung, with a budget-bounded hedge.

        If the primary attempt outlives the percentile-derived hedge
        delay, one hedge fires to the next live sibling replica —
        *spending a retry-budget token*, so hedge volume is bounded by
        the same bucket as failovers.  First success wins; the loser is
        cancelled.  When both arms fail, the primary's error surfaces
        (the ladder's failover handling takes it from there).
        """
        delay = self._hedge_delay_s(backend, deadline_at)
        sibling = next(
            (candidate for candidate in siblings
             if candidate.healthy and not candidate.ejected
             and candidate.breaker.state == "closed"), None)
        primary = asyncio.ensure_future(
            self._attempt_timed(backend, scene_id, call, deadline_at))
        if delay is None or sibling is None:
            return await primary
        done, _ = await asyncio.wait({primary}, timeout=delay)
        if primary in done:
            return primary.result()
        if not self.retry_budget.try_spend():
            return await primary            # bucket dry: no hedge today
        self.hedges += 1
        secondary = asyncio.ensure_future(
            self._attempt_timed(sibling, scene_id, call, deadline_at))
        pending = {primary, secondary}
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                if task.exception() is None:
                    for loser in pending:
                        self._settle_task(loser)
                    if task is secondary:
                        self.hedges_won += 1
                    return task.result()
        return primary.result()             # both failed: primary's error

    async def _serve_with_failover(self, scene_id: str,
                                   request: CompleteRequest,
                                   call: Callable[[AsyncCompletionClient],
                                                  Awaitable[dict]],
                                   deadline_at: Optional[float] = None
                                   ) -> dict:
        """The read path: healthiest replica first, instant failover.

        The ladder tries each replica-set backend in best-first order; a
        connection failure kicks a background respawn and moves on to
        the sibling.  Attempts beyond the first spend the router's retry
        budget — a storm against a dead shard is bounded by construction.
        A budgeted request is refused outright once its budget is spent
        (``deadline_exceeded``; never retried), each attempt runs under
        the budget-clamped timeout, and the first rung may hedge to a
        sibling when the primary turns out slow.  When every replica is
        down the last-known-good cache answers with ``degraded: true``;
        with nothing cached the preferred owner pays a blocking
        respawn-and-retry (the pre-replication behaviour), so R=1
        topologies and cold scenes still recover without a
        client-visible error.
        """
        self.retry_budget.on_request()
        self._note_scene_traffic(scene_id)
        self._fail_fast_if_spent(deadline_at)
        key = self._lkg_key(scene_id, request)
        candidates = self._candidates(scene_id)
        attempts = 0
        last_error: Optional[ProtocolError] = None
        for index, backend in enumerate(candidates):
            if len(candidates) > 1 and not backend.breaker.allow():
                continue                    # open circuit: skip the corpse
            if attempts:
                self._fail_fast_if_spent(deadline_at)
                if not self.retry_budget.try_spend():
                    break                   # budget spent: stop hammering
            attempts += 1
            try:
                if attempts == 1:
                    result = await self._attempt_hedged(
                        backend, candidates[index + 1:], scene_id, call,
                        deadline_at)
                else:
                    result = await self._attempt_timed(
                        backend, scene_id, call, deadline_at)
                return self._remember_lkg(key, result)
            except ProtocolError as error:
                if error.code != "internal":
                    raise                   # backend answered: not a failover
                last_error = error
                self.failovers += 1
        cached = self.lkg.get(key)
        if cached is not None:
            self.degraded_served += 1
            return {**cached, "degraded": True}
        if not candidates:
            raise last_error or ProtocolError("no backends on the ring",
                                              code="internal")
        self._fail_fast_if_spent(deadline_at)   # a blocking respawn is
        backend = candidates[0]                 # never worth a dead budget
        try:
            return self._remember_lkg(key,
                                      await self._call(backend, call))
        except SceneNotFoundError:
            entry = self.journal.lookup_scene(scene_id)
            if entry is None:
                raise
            self.reregistrations += 1
            await self._call(backend, lambda c: c.register_scene(
                entry.text, name=entry.name))
            return self._remember_lkg(key, await self._call(backend, call))

    async def _handle_batch(self, payload) -> dict:
        requests = protocol.parse_batch_payload(payload)

        async def _serve(request: CompleteRequest) -> dict:
            try:
                return await self._complete_one(request)
            except ServerError as error:
                self.errors[error.code] += 1
                return protocol.error_payload(error.code, error.message)
            except ProtocolError as error:
                self.errors[error.code] += 1
                return protocol.error_payload(error.code, str(error))
            except ReproError as error:
                self.errors["bad_request"] += 1
                return protocol.error_payload("bad_request", str(error))

        results = await asyncio.gather(*(_serve(r) for r in requests))
        return protocol.ok_payload(results=list(results))

    # -- endpoint: complete (streaming) --------------------------------------

    async def _proxy_stream(self, payload: dict,
                            writer: asyncio.StreamWriter) -> None:
        """Proxy one streamed completion from the owning backend.

        Chunks are re-framed line by line, so the editor sees snippets as
        the backend emits them — the router adds routing, not buffering.
        Failures before the first chunk (validation, unknown scene, dead
        shard) stay ordinary HTTP error responses; after the head is on
        the wire they become a terminal ``error`` chunk, exactly like the
        backend's own late failures.
        """
        self.requests["POST /v1/complete"] += 1
        head_written = False
        try:
            request = CompleteRequest.from_payload(payload)
            scene_id = await self._resolve_scene_id(request)
            stream, chunk = await self._open_stream(scene_id, request)
            writer.write(_stream_head())
            head_written = True
            self.streams_proxied += 1
            while True:
                writer.write(protocol.encode_stream_chunk(chunk))
                await writer.drain()
                try:
                    chunk = await stream.__anext__()
                except StopAsyncIteration:
                    break
        except ServerError as error:
            self.errors[error.code] += 1
            await self._stream_failure(writer, head_written, error.code,
                                       error.message)
        except ProtocolError as error:
            self.errors[error.code] += 1
            await self._stream_failure(writer, head_written, error.code,
                                       str(error))
        except ReproError as error:
            self.errors["bad_request"] += 1
            await self._stream_failure(writer, head_written, "bad_request",
                                       str(error))
        except Exception as error:          # noqa: BLE001 — serving boundary
            self.errors["internal"] += 1
            await self._stream_failure(writer, head_written, "internal",
                                       f"{type(error).__name__}: {error}")

    async def _stream_failure(self, writer: asyncio.StreamWriter,
                              head_written: bool, code: str,
                              message: str) -> None:
        try:
            if head_written:
                writer.write(protocol.encode_stream_chunk(
                    protocol.stream_error_chunk(code, message)))
            else:
                writer.write(_http_response(
                    protocol.STATUS_FOR_CODE.get(code, 500),
                    protocol.error_payload(code, message),
                    keep_alive=False))
            await writer.drain()
        except (ConnectionError, OSError):
            pass                            # downstream client vanished

    async def _open_stream(self, scene_id: str, request: CompleteRequest):
        """The owner's chunk stream plus its first chunk.

        Opening eagerly pulls one chunk so every backend-side failure
        mode surfaces *here*, before the proxy commits a response head —
        with the same replica ladder as the unary path: instant failover
        to a sibling (budgeted), a journal re-teach for unknown scenes,
        a degraded last-known-good stream when every replica is down,
        and a blocking respawn-and-retry only as the final resort.
        """
        def first_of(client: AsyncCompletionClient):
            async def opened():
                stream = client.complete_stream(
                    scene_id, goal=request.goal, variant=request.variant,
                    n=request.n, deadline_ms=request.deadline_ms,
                    context=request.context)
                try:
                    return stream, await stream.__anext__()
                except StopAsyncIteration:
                    raise ClientConnectionError(
                        "backend closed the stream before any chunk")
            return opened()

        self.retry_budget.on_request()
        candidates = self._candidates(scene_id)
        attempts = 0
        last_error: Optional[ProtocolError] = None
        for backend in candidates:
            if len(candidates) > 1 and not backend.breaker.allow():
                continue
            if attempts and not self.retry_budget.try_spend():
                break
            attempts += 1
            try:
                try:
                    return await self._call_fast(backend, first_of)
                except SceneNotFoundError:
                    entry = self.journal.lookup_scene(scene_id)
                    if entry is None:
                        raise
                    self.reregistrations += 1
                    await self._call_fast(backend, lambda c:
                                          c.register_scene(entry.text,
                                                           name=entry.name))
                    return await self._call_fast(backend, first_of)
            except ProtocolError as error:
                if error.code != "internal":
                    raise
                last_error = error
                self.failovers += 1
        cached = self.lkg.get(self._lkg_key(scene_id, request))
        if cached is not None:
            self.degraded_served += 1
            return self._degraded_stream(cached)
        if not candidates:
            raise last_error or ProtocolError("no backends on the ring",
                                              code="internal")
        return await self._call(candidates[0], first_of)

    @staticmethod
    def _degraded_stream(payload: dict):
        """A synthesized chunk stream replaying a last-known-good answer.

        Mirrors the backend's wire shape — one ``snippet`` chunk per
        snippet, then a ``done`` summary — with ``degraded: true`` on
        the summary, so streaming clients degrade exactly like unary
        ones when every replica is down.
        """
        done = protocol.stream_done_chunk({**payload, "degraded": True})
        snippets = payload.get("snippets") or []

        def snippet_chunk(snippet: dict) -> dict:
            return {"v": protocol.PROTOCOL_VERSION, "chunk": "snippet",
                    **snippet}

        async def remaining():
            for snippet in snippets[1:]:
                yield snippet_chunk(snippet)
            yield done

        async def only_done():
            return
            yield                           # pragma: no cover — generator

        if not snippets:
            return only_done(), done
        return remaining(), snippet_chunk(snippets[0])

    # -- endpoint: edit-scene ------------------------------------------------

    async def _handle_edit(self, payload) -> dict:
        """Forward declaration deltas to the scene's owner and journal
        the result.

        The edit must run where the prepared state lives (the old scene's
        owner — or its sticky home, if it was itself produced by edits).
        The response's canonical ``text`` is journaled as a plain
        registration under the *new* scene id, so a respawned replica
        replays straight to the delta-edited state; the new id is then
        sticky-homed to the backend holding the warm incremental state,
        since the ring — hashing the new content id — would route
        follow-up queries elsewhere.
        """
        request = EditSceneRequest.from_payload(payload)
        backend = self._owner(request.scene_id)

        def call(client: AsyncCompletionClient) -> Awaitable[dict]:
            return client.edit_scene(request.scene_id, list(request.ops),
                                     name=request.name)

        try:
            response = await self._call(backend, call)
        except SceneNotFoundError:
            entry = self.journal.lookup_scene(request.scene_id)
            if entry is None:
                raise
            self.reregistrations += 1
            backend = self._owner(request.scene_id)
            await self._call(backend, lambda c: c.register_scene(
                entry.text, name=entry.name))
            response = await self._call(backend, call)
        self.edits += 1
        text = response.get("text")
        scene_id = response.get("scene_id")
        if isinstance(text, str) and isinstance(scene_id, str):
            digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
            self.journal.record(digest=digest, scene_id=scene_id,
                                name=response.get("name"), text=text)
            self._remember_home(scene_id, backend.backend_id)
        return response

    # -- endpoint: release-scene ---------------------------------------------

    async def _handle_release(self, payload) -> dict:
        request = ReleaseSceneRequest.from_payload(payload)
        candidates = self._candidates(request.scene_id)
        self._session_homes.pop(request.scene_id, None)
        journaled = self.journal.remove(request.scene_id)
        self.lkg.purge_scene(request.scene_id)  # released means *gone*
        released = False
        last_error: Optional[ProtocolError] = None
        for backend in candidates:          # every replica holds a copy
            try:
                response = await self._call_fast(
                    backend, lambda c: c.release_scene(request.scene_id))
                released = released or bool(response.get("released"))
            except ProtocolError as error:
                if error.code != "internal":
                    raise
                last_error = error
        if last_error is not None and not released and not journaled:
            raise last_error
        # An unreachable shard with a durable tombstone still counts as
        # released: the scene will not be replayed into any future
        # replica, which is the client-visible meaning of "released".
        return protocol.ok_payload(scene_id=request.scene_id,
                                   released=released or journaled)

    # -- endpoint: admin backends --------------------------------------------

    def _admin_list_payload(self) -> dict:
        return protocol.ok_payload(
            backends=[backend.describe()
                      for backend in self.backends.values()],
            replication=self.config.replication,
            ring={"replicas": self.ring.replicas, "size": len(self.ring)},
            retry_budget=self.retry_budget.describe(),
            journal_scenes=len(self.journal))

    async def _handle_admin(self, payload) -> dict:
        """Live elasticity over the already-safe ring + journal-replay
        path: ``add`` spawns (or attaches) a backend and replays its
        shard into it; ``drain`` takes a backend off the ring and moves
        its scenes — sticky edit-sessions included — onto the remaining
        owners; ``remove`` drains (if needed) and tears the process
        down.  Requests in flight during a drain finish against the
        drained backend (it keeps serving until removal)."""
        request = protocol.AdminBackendsRequest.from_payload(payload)
        if request.action == "add":
            return await self._admin_add(request)
        if request.action == "rebalance":
            return await self._admin_rebalance()
        backend = self.backends.get(request.backend_id)
        if backend is None:
            raise ProtocolError(
                f"unknown backend {request.backend_id!r}", code="not_found")
        if request.action == "drain":
            moved = await self._admin_drain(backend)
            return protocol.ok_payload(backend=backend.describe(),
                                       **moved)
        if backend.draining:                # already off the ring
            moved = {"replayed": 0, "moved_sessions": 0}
        else:
            moved = await self._admin_drain(backend)
        await self._admin_remove(backend)
        return protocol.ok_payload(backend_id=request.backend_id,
                                   removed=True, **moved)

    async def _admin_add(self, request) -> dict:
        taken = set(self.backends)
        index = 0
        while f"b{index}" in taken:
            index += 1
        backend_id = request.backend_id or f"b{index}"
        if backend_id in self.backends:
            raise ProtocolError(f"backend {backend_id!r} already exists",
                                code="bad_request")
        if request.address is not None:
            host, _, port = request.address.rpartition(":")
            backend = Backend(backend_id=backend_id, host=host,
                              port=int(port),
                              client=self._client(host, int(port)))
            self._adopt_backend(backend)
        elif self.config.attach:
            raise ProtocolError(
                "an attach-mode router cannot spawn backends; pass an "
                "address to add one", code="bad_request")
        else:
            backend = await self._spawn_backend(backend_id)
        try:
            await wait_until_healthy(backend.client)
        except ClientConnectionError as exc:
            await self._admin_remove(backend)   # roll the adoption back
            raise ProtocolError(
                f"new backend {backend_id!r} never became healthy: {exc}",
                code="internal") from exc
        replayed = await self._replay_into(backend)
        return protocol.ok_payload(backend=backend.describe(),
                                   replayed=replayed)

    async def _admin_rebalance(self) -> dict:
        """Force one rebalance pass now (no dwell wait).

        Hot/cold selection for the manual trigger is by observed scene
        traffic share — deterministic under test and meaningful even
        between supervisor sweeps, when the inflight EWMA may not have
        caught up yet.
        """
        live = [backend for backend in self.backends.values()
                if backend.healthy and not backend.draining]
        if len(live) < 2:
            raise ProtocolError("rebalance needs at least two live "
                                "backends", code="bad_request")
        shares: Counter = Counter(
            {backend.backend_id: 0 for backend in live})
        for scene_id, hits in self._scene_traffic.items():
            candidates = self._candidates(scene_id)
            if candidates and candidates[0].backend_id in shares:
                shares[candidates[0].backend_id] += hits
        hot = max(live, key=lambda b: shares[b.backend_id])
        cold = min(live, key=lambda b: shares[b.backend_id])
        if hot.backend_id == cold.backend_id:
            raise ProtocolError("no traffic skew to rebalance",
                                code="bad_request")
        event = await self._rebalance_once(hot, cold)
        return protocol.ok_payload(moved=len(event["scenes"]), **event)

    async def _admin_drain(self, backend: Backend) -> dict:
        """Take *backend* off the ring and re-home its state.

        After ``ring.remove`` the journal replay re-registers every
        scene on its new owners (registration is idempotent, so scenes
        already resident elsewhere are cheap no-ops); sticky
        edit-session homes pointing at the drained backend are moved to
        the scene's new preferred owner, re-taught from the journal so
        the session keeps answering — on a cold replica, but correctly.
        """
        if len(self.ring) <= 1 and backend.backend_id in self.ring.backends:
            raise ProtocolError("cannot drain the last backend",
                                code="bad_request")
        self.ring.remove(backend.backend_id)
        backend.draining = True
        replayed = 0
        for sibling in self.backends.values():
            if sibling.backend_id == backend.backend_id:
                continue
            try:
                replayed += await self._replay_into(sibling)
            except ProtocolError:
                self.errors["replay"] += 1  # sibling down; respawn replays
        moved_sessions = 0
        for scene_id, home in list(self._session_homes.items()):
            if home != backend.backend_id:
                continue
            entry = self.journal.lookup_scene(scene_id)
            new_home = self.backends[self.ring.route(scene_id)]
            if entry is not None:
                try:
                    await self._call_fast(new_home, lambda c:
                                          c.register_scene(entry.text,
                                                           name=entry.name))
                except ProtocolError:
                    pass                    # re-teach on first query instead
            self._session_homes[scene_id] = new_home.backend_id
            moved_sessions += 1
        self.drains += 1
        return {"replayed": replayed, "moved_sessions": moved_sessions}

    async def _admin_remove(self, backend: Backend) -> None:
        self.ring.remove(backend.backend_id)
        self.backends.pop(backend.backend_id, None)
        self._respawn_locks.pop(backend.backend_id, None)
        task = self._respawn_tasks.pop(backend.backend_id, None)
        if task is not None and not task.done():
            task.cancel()
        await backend.client.close()
        if backend.process is not None:
            backend.process.terminate()
            loop = asyncio.get_running_loop()
            try:
                await loop.run_in_executor(None, backend.process.wait, 10)
            except subprocess.TimeoutExpired:
                backend.process.kill()
                await loop.run_in_executor(None, backend.process.wait)

    # -- endpoints: stats / health -------------------------------------------

    def _healthz_payload(self) -> dict:
        return protocol.ok_payload(
            status="ok",
            uptime_s=round(time.monotonic() - self.started, 3),
            backends=[backend.describe()
                      for backend in self.backends.values()])

    def _router_section(self) -> dict:
        return {
            "backends": len(self.backends),
            "healthy": sum(1 for backend in self.backends.values()
                           if backend.healthy),
            "ring": {"replicas": self.ring.replicas,
                     "points": len(self.ring) * self.ring.replicas},
            "journal": {"scenes": len(self.journal),
                        "durable": self.journal.path is not None,
                        "corrupt_lines": self.journal.corrupt_lines},
            "requests": dict(self.requests),
            "errors": dict(self.errors),
            "reregistrations": self.reregistrations,
            "replayed": self.replayed,
            "restarts": self.restarts,
            "edits": self.edits,
            "streams_proxied": self.streams_proxied,
            "session_homes": len(self._session_homes),
            "replication": self.config.replication,
            "failovers": self.failovers,
            "degraded_served": self.degraded_served,
            "drains": self.drains,
            "retry_budget": self.retry_budget.describe(),
            "lkg_entries": len(self.lkg),
            "breakers": {backend_id: backend.breaker.describe()
                         for backend_id, backend in self.backends.items()},
            # Gray-failure instrumentation: budget sheds, clamp cuts,
            # hedge volume/wins, latency-outlier ejections and the
            # skew-rebalance history — the signals the slow-backend
            # chaos report reads back.
            "deadline_exceeded": self.deadline_exceeded,
            "slow_timeouts": self.slow_timeouts,
            "hedges": {"fired": self.hedges, "won": self.hedges_won},
            "ejections": self.ejections,
            "ejected": sorted(backend_id
                              for backend_id, backend
                              in self.backends.items() if backend.ejected),
            "backend_latency": {
                backend_id: backend.latency.describe()
                for backend_id, backend in self.backends.items()},
            "rebalances": self.rebalances,
            "rebalance_events": list(self.rebalance_events),
        }

    async def _stats_payload(self) -> dict:
        """One merged view over every backend's ``/v1/stats``.

        Counters are summed (the merged ``server`` section therefore
        equals the arithmetic sum of the per-backend counters), latency
        windows are merged — counts summed, means request-weighted,
        percentiles and max conservatively maxed (a true merged quantile
        would need the raw samples) — and the untouched per-backend
        payloads ride along under ``shards``.
        """
        async def _fetch(backend: Backend):
            try:
                stats = await backend.client.stats()
                backend.healthy = True
                return backend, stats, None
            except (ReproError, ClientConnectionError) as exc:
                backend.healthy = False
                return backend, None, str(exc)

        fetched = await asyncio.gather(*(
            _fetch(backend) for backend in self.backends.values()))
        shards = []
        payloads = []
        for backend, stats, error in fetched:
            shard = backend.describe()
            if stats is None:
                shard["error"] = error
            else:
                shard["stats"] = {key: value for key, value in stats.items()
                                  if key not in ("v", "ok")}
                payloads.append(stats)
            shards.append(shard)
        merged_server = _merge_server_sections(
            [payload.get("server", {}) for payload in payloads])
        merged_engine = _sum_numeric_sections(
            [payload.get("engine", {}) for payload in payloads])
        result_stats = merged_engine.get("result_stats")
        if isinstance(result_stats, dict):
            # Rates do not sum; recompute from the summed counters.
            lookups = (result_stats.get("hits", 0)
                       + result_stats.get("misses", 0))
            result_stats["hit_rate"] = (
                round(result_stats.get("hits", 0) / lookups, 4)
                if lookups else 0.0)
        merged_executor = _sum_numeric_sections(
            [payload.get("executor", {}) for payload in payloads])
        merged_core = _sum_numeric_sections(
            [payload.get("core", {}) for payload in payloads])
        merged_scenes = _sum_numeric_sections(
            [{key: value
              for key, value in payload.get("scenes", {}).items()
              if key != "scenes"}         # counts only, not per-scene rows
             for payload in payloads])
        return protocol.ok_payload(
            server=merged_server,
            engine=merged_engine,
            executor=merged_executor,
            core=merged_core,
            scenes=merged_scenes,
            router=self._router_section(),
            shards=shards,
        )


# -- stats merging -----------------------------------------------------------


def _sum_numeric_sections(sections: list) -> dict:
    """Recursively sum numeric leaves across parallel dicts.

    Non-numeric leaves keep the first non-None value seen; missing keys
    are treated as absent, not zero.  Used for the ``engine``/``core``
    sections, whose leaves are counters or capacities — both meaningfully
    summable across shard processes (total entries, total capacity).
    """
    merged: dict = {}
    for section in sections:
        if not isinstance(section, dict):
            continue
        for key, value in section.items():
            if isinstance(value, dict):
                merged[key] = _sum_numeric_sections(
                    [merged.get(key, {}), value])
            elif isinstance(value, bool):
                merged[key] = merged.get(key) or value
            elif isinstance(value, (int, float)):
                base = merged.get(key)
                merged[key] = (base + value
                               if isinstance(base, (int, float)) else value)
            elif key not in merged or merged[key] is None:
                merged[key] = value
    return merged


def _merge_latency_windows(windows: list) -> dict:
    """Merge latency snapshots: sum counts, weight means, max quantiles."""
    counts = [window.get("count", 0) for window in windows]
    total = sum(counts)

    def _max(field: str) -> Optional[float]:
        values = [window.get(field) for window in windows
                  if window.get(field) is not None]
        return max(values) if values else None

    mean = None
    if total:
        weighted = sum(window.get("mean_ms") * count
                       for window, count in zip(windows, counts)
                       if window.get("mean_ms") is not None and count)
        mean = round(weighted / total, 3)
    return {"count": total, "p50_ms": _max("p50_ms"),
            "p95_ms": _max("p95_ms"), "max_ms": _max("max_ms"),
            "mean_ms": mean}


def _merge_server_sections(sections: list) -> dict:
    """Merge backend ``server`` metric sections into one summed view."""
    merged = _sum_numeric_sections(
        [{key: value for key, value in section.items()
          if key not in ("latency", "uptime_s", "queue")}
         for section in sections])
    merged["uptime_s"] = max(
        (section.get("uptime_s", 0.0) for section in sections),
        default=0.0)
    merged["queue"] = _sum_numeric_sections(
        [section.get("queue", {}) for section in sections])
    names = {name for section in sections
             for name in section.get("latency", {})}
    merged["latency"] = {
        name: _merge_latency_windows(
            [section.get("latency", {}).get(name, {})
             for section in sections])
        for name in sorted(names)}
    return merged
