"""The async serving layer: a long-running completion service.

``repro.engine`` amortises the paper's pipeline across queries inside one
process; this package turns that engine into a *service* — the always-on
assistant the paper's interactive setting assumes.  Stdlib-only asyncio,
HTTP/1.1 with JSON bodies:

* :mod:`repro.server.protocol` — the versioned wire schema (requests,
  responses, error codes, deadline-to-budget mapping);
* :mod:`repro.server.registry` — registered scenes with LRU eviction that
  releases engine state (and interned succinct types) on the way out;
* :mod:`repro.server.metrics` — live counters and latency percentiles,
  served at ``/v1/stats``;
* :mod:`repro.server.server` — :class:`AsyncCompletionServer`: request
  coalescing (single-flight per :class:`~repro.engine.keys.QueryKey`),
  admission control (bounded pending queue, 429 on overflow), per-request
  deadlines mapped onto the paper's anytime budgets, synthesis on an
  executor so the event loop never blocks;
* :mod:`repro.server.client` — :class:`AsyncCompletionClient`, the async
  counterpart used by the CLI, the smoke test and the load benchmark;
* :mod:`repro.server.router` — :class:`CompletionRouter`: the sharded
  front door (consistent-hash scene routing over N supervised backend
  processes, durable scene journal with replica warm-up replay,
  aggregated stats) speaking the same protocol on both sides.

``python -m repro.cli serve`` runs one server from the terminal;
``python -m repro.cli route`` runs the sharded router.
"""

from repro.server.client import (AsyncCompletionClient, ClientConnectionError,
                                 OverloadedError, SceneNotFoundError,
                                 ServerError)
from repro.server.metrics import LatencyWindow, ServerMetrics
from repro.server.protocol import (PROTOCOL_VERSION, CompleteRequest,
                                   ProtocolError, RegisterSceneRequest,
                                   ReleaseSceneRequest, deadline_config)
from repro.server.registry import RegisteredScene, SceneRegistry
from repro.server.router import (CompletionRouter, HashRing, RouterConfig,
                                 SceneJournal)
from repro.server.server import AsyncCompletionServer, ServerConfig

__all__ = [
    "AsyncCompletionClient",
    "AsyncCompletionServer",
    "ClientConnectionError",
    "CompleteRequest",
    "CompletionRouter",
    "HashRing",
    "LatencyWindow",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RegisteredScene",
    "RegisterSceneRequest",
    "ReleaseSceneRequest",
    "RouterConfig",
    "SceneJournal",
    "SceneNotFoundError",
    "SceneRegistry",
    "ServerConfig",
    "ServerError",
    "ServerMetrics",
    "deadline_config",
]
