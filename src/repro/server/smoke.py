"""End-to-end server smoke test: ``python -m repro.server.smoke``.

Boots a real ``repro serve`` subprocess on an ephemeral port, then drives
it with the async client: register every shipped example scene, complete
each one cold and again warm (asserting a cache hit), fire a burst of
concurrent identical requests and assert — via ``/v1/stats`` — that they
coalesced into exactly one synthesis.  Exit code 0 means the serving path
works end-to-end; CI runs this after the unit suite.

With ``--router`` the same drive runs against ``repro route`` over two
supervised backend processes instead — the protocol is identical, so the
very same assertions must hold, plus the aggregated ``/v1/stats`` view
must carry one entry per shard.  CI runs both forms.

``--stream`` adds the protocol v2 drive on top (composable with
``--router``): every scene is streamed as NDJSON cold and warm —
asserting chunk framing, rank order, weight monotonicity, and that the
terminal ``done`` chunk's batch payload matches the streamed snippets —
then an edit-session round trip adds and removes a declaration over
``/v1/edit-scene`` and asserts the session lands back on the original
content-derived scene id with its cached ranking intact.

``--router --chaos`` adds the supervision check: a short burst of
fresh-``n`` completions is fired across every scene, one supervised
backend is SIGKILLed mid-flight (pid read off ``/healthz``), and the
drive asserts that every retried completion still answers the correct
snippets — full-fidelity, never ``degraded`` (with replication R=2 a
sibling replica owns every scene, so one kill must be invisible) — that
the router respawned the shard in the background (``restarts`` >= 1,
polled), and that the aggregated ``/v1/stats`` still reconciles with
the per-shard sums.  The burst coalescing accounting is skipped in this
mode — a respawned backend restarts its counters, so cross-kill counter
arithmetic is meaningless by design.

``--router --chaos --slow`` swaps the SIGKILL for the gray failure:
one ring owner is SIGSTOPped mid-burst (its sockets stay open, its
in-flight work parks — breakers see nothing), every request carries an
end-to-end deadline, and the drive asserts hedged retries complete the
stalled owner's traffic on the sibling replica with zero client-visible
errors, zero respawns, and zero ``deadline_exceeded`` — then SIGCONTs
the victim and asserts it rejoins full-fidelity serving.

``--router --chaos --kill-majority`` (needs ``--backends 3``) goes one
further: it rebuilds the router's hash ring client-side from the
``/healthz`` backend ids (the ring is deterministic), SIGKILLs *both*
replica-set owners of one scene, and asserts the router answers from
its last-known-good cache with ``degraded: true`` — an honest stale
answer, not a 5xx — then recovers to full-fidelity answers once the
owners respawn.

``--report PATH`` writes a JSON artifact (mode, per-step report lines,
pass/fail) — written on failure too, so CI can always upload it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.server.client import AsyncCompletionClient, wait_until_healthy
from repro.server.router import HashRing, spawn_cli_server

#: Default scene set: every shipped example scene.
DEFAULT_SCENES_DIR = Path(__file__).resolve().parents[3] / "examples/scenes"


def _spawn_server(extra_args: Sequence[str] = (),
                  command: str = "serve") -> tuple:
    """Start ``repro serve|route --port 0``; returns (process, host, port).

    Thin wrapper over the router's :func:`spawn_cli_server` — the smoke
    harness and the router supervise subprocesses with the exact same
    spawn protocol (PYTHONPATH injection, listen-line scan, pipe drain).
    """
    return spawn_cli_server(command, extra_args, label=f"smoke-{command}")


async def _await_recovery(client: AsyncCompletionClient, *,
                          min_restarts: int,
                          timeout_s: float = 30.0) -> int:
    """Poll ``/healthz`` until every backend is healthy again.

    Respawn is a *background* task on the router (the serving path fails
    over to a sibling instead of blocking), so the smoke has to wait for
    it rather than assume the first post-kill answer implies recovery.
    Returns the total restart count.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        health = await client.healthz()
        restarts = sum(backend.get("restarts", 0)
                       for backend in health["backends"])
        if (restarts >= min_restarts
                and all(backend["healthy"]
                        for backend in health["backends"])):
            return restarts
        assert time.monotonic() < deadline, (
            f"backends never recovered: restarts={restarts}, health="
            f"{[(b['backend_id'], b['healthy']) for b in health['backends']]}")
        await asyncio.sleep(0.05)


async def _chaos_burst(client: AsyncCompletionClient,
                       scene_paths: Sequence[Path]) -> list[str]:
    """Kill one supervised backend mid-burst; assert nothing is lost.

    Baseline completions (fresh ``n``) establish the expected snippets,
    then a concurrent burst with another fresh ``n`` forces live
    syntheses on every shard while one backend takes a SIGKILL.  With
    replication R=2 a sibling replica owns every scene, so every
    response — during and after the kill — must carry the same ranked
    snippets as an untouched run, at full fidelity: zero errors and
    zero ``degraded`` answers.  The router respawns the dead shard in
    the background; the drive polls ``/healthz`` until it is back.
    """
    report: list[str] = []
    texts = [path.read_text(encoding="utf-8") for path in scene_paths]
    scene_ids = []
    for path, text in zip(scene_paths, texts):
        scene_ids.append((await client.register_scene(
            text, name=path.name))["scene_id"])
    baseline = {}
    for path, scene_id in zip(scene_paths, scene_ids):
        served = await client.complete(scene_id, n=7)
        baseline[scene_id] = tuple(s["code"] for s in served["snippets"])

    victims = [backend for backend in await client.backends()
               if backend.get("managed") and backend.get("pid")]
    assert victims, "chaos smoke needs router-supervised backends"
    victim = victims[0]

    # Fresh n=8 forces one in-flight synthesis per scene; the kill lands
    # while those are running.
    tasks = [asyncio.ensure_future(
        client.complete(scene_ids[index % len(scene_ids)], n=8))
        for index in range(6 * len(scene_ids))]
    await asyncio.sleep(0.02)
    os.kill(int(victim["pid"]), signal.SIGKILL)
    results = await asyncio.gather(*tasks)
    for index, served in enumerate(results):
        scene_id = scene_ids[index % len(scene_ids)]
        assert served["snippets"], "mid-kill completion lost its snippets"
        assert "degraded" not in served, (
            f"mid-kill completion degraded for {scene_id}: with R=2 a "
            f"sibling replica must serve full-fidelity")
        codes = tuple(s["code"] for s in served["snippets"])
        assert codes[:7] == baseline[scene_id][:len(codes[:7])], (
            f"mid-kill snippets diverged for {scene_id}")

    # A post-kill sweep: every scene must still answer full-fidelity
    # while the dead shard respawns in the background.
    for scene_id in scene_ids:
        served = await client.complete(scene_id, n=8)
        assert served["snippets"], "post-kill completion failed"
        assert "degraded" not in served, "post-kill completion degraded"

    restarts = await _await_recovery(client, min_restarts=1)
    stats = await client.stats()
    router = stats["router"]
    report.append(
        f"chaos: killed {victim['backend_id']} (pid {victim['pid']}) "
        f"mid-burst of {len(tasks)}; {restarts} respawn(s), "
        f"{router['failovers']} failover(s), 0 degraded, all "
        f"completions correct")
    return report


def _sigcont(pid: int) -> None:
    """Resume a stalled pid; idempotent (a resumed or dead pid is fine)."""
    try:
        os.kill(pid, signal.SIGCONT)
    except (ProcessLookupError, OSError):
        pass


async def _slow_burst(client: AsyncCompletionClient,
                      scene_paths: Sequence[Path]) -> list[str]:
    """SIGSTOP one ring owner mid-burst; hedges must save its traffic.

    The gray failure: a SIGSTOPped backend keeps its sockets open and
    simply stops answering — no connection error, so breakers stay
    closed and the router keeps routing to it.  Every request carries a
    generous end-to-end deadline; the requests aimed at the stalled
    owner's scene must be *hedged* onto the sibling replica and answer
    full-fidelity.  Nothing may error, nothing may degrade, nothing may
    respawn (the process never died), and after SIGCONT the victim must
    still be a healthy, serving member of the ring.

    The SIGCONT is scheduled on a timer (belt-and-braces resumed again
    after the burst) so requests that exhaust the hedge retry budget
    simply park until the stall lifts — well inside their deadlines —
    instead of deadlocking the gather.
    """
    report: list[str] = []
    deadline_ms = 30_000
    texts = [path.read_text(encoding="utf-8") for path in scene_paths]
    scene_ids = []
    for path, text in zip(scene_paths, texts):
        scene_ids.append((await client.register_scene(
            text, name=path.name))["scene_id"])
    baseline = {}
    for scene_id in scene_ids:
        served = await client.complete(scene_id, n=7,
                                       deadline_ms=deadline_ms)
        baseline[scene_id] = tuple(s["code"] for s in served["snippets"])

    # The ring is deterministic over backend ids: pick the victim as the
    # *primary owner* of the first scene, so the stalled owner is
    # guaranteed to sit first in that scene's candidate order.
    backends = {backend["backend_id"]: backend
                for backend in await client.backends()}
    roster = await client.admin_backends()
    ring = HashRing(replicas=roster["ring"]["replicas"])
    for backend_id in backends:
        ring.add(backend_id)
    victim = backends[ring.route_n(scene_ids[0], 1)[0]]
    assert victim.get("managed") and victim.get("pid"), (
        "slow chaos needs a router-supervised owner to stall")
    pid = int(victim["pid"])
    restarts_before = sum(backend.get("restarts", 0)
                          for backend in backends.values())

    tasks = [asyncio.ensure_future(
        client.complete(scene_ids[index % len(scene_ids)], n=8,
                        deadline_ms=deadline_ms))
        for index in range(6 * len(scene_ids))]
    await asyncio.sleep(0.02)
    os.kill(pid, signal.SIGSTOP)
    # Post-stall wave aimed straight at the stalled owner's scene: the
    # router still sees the victim as healthy (SIGSTOP breaks nothing),
    # so these dispatch to it, park, and must be hedged to the sibling.
    wave = [asyncio.ensure_future(
        client.complete(scene_ids[0], n=9, deadline_ms=deadline_ms))
        for _ in range(4)]
    asyncio.get_running_loop().call_later(1.0, _sigcont, pid)

    results = await asyncio.gather(*tasks)
    wave_results = await asyncio.gather(*wave)
    _sigcont(pid)                           # idempotent belt-and-braces
    for index, served in enumerate(results):
        scene_id = scene_ids[index % len(scene_ids)]
        assert served["snippets"], "mid-stall completion lost its snippets"
        assert "degraded" not in served, (
            f"mid-stall completion degraded for {scene_id}: the sibling "
            f"replica must serve full-fidelity")
        codes = tuple(s["code"] for s in served["snippets"])
        assert codes[:7] == baseline[scene_id][:len(codes[:7])], (
            f"mid-stall snippets diverged for {scene_id}")
    for served in wave_results:
        assert served["snippets"] and "degraded" not in served, (
            "stalled-owner completion was lost or degraded")
        codes = tuple(s["code"] for s in served["snippets"])
        assert codes[:7] == baseline[scene_ids[0]][:7], (
            "hedged completion diverged from the baseline")

    # Recovery: the victim never died, so zero respawns — it rejoins by
    # simply answering again once SIGCONT lands.
    deadline = time.monotonic() + 30.0
    while True:
        health = await client.healthz()
        if all(backend["healthy"] for backend in health["backends"]):
            break
        assert time.monotonic() < deadline, (
            f"stalled backend never rejoined: "
            f"{[(b['backend_id'], b['healthy']) for b in health['backends']]}")
        await asyncio.sleep(0.05)
    restarts = sum(backend.get("restarts", 0)
                   for backend in health["backends"])
    assert restarts == restarts_before, (
        f"slow chaos must not respawn anything (the process never "
        f"died), saw {restarts - restarts_before} restart(s)")

    stats = await client.stats()
    router = stats["router"]
    assert router["hedges"]["fired"] >= 1, (
        "no hedge fired against a stalled ring owner — gray failure "
        "went unhandled")
    assert router["deadline_exceeded"] == 0, (
        f"{router['deadline_exceeded']} completion(s) blew a "
        f"{deadline_ms} ms budget during a ~1 s stall")

    for scene_id in scene_ids:
        served = await client.complete(scene_id, n=8,
                                       deadline_ms=deadline_ms)
        assert served["snippets"], "post-stall completion failed"
        assert "degraded" not in served, "post-stall completion degraded"

    report.append(
        f"slow-chaos: stalled {victim['backend_id']} (pid {pid}) "
        f"mid-burst of {len(tasks) + len(wave)}; "
        f"{router['hedges']['fired']} hedge(s) "
        f"({router['hedges']['won']} won), "
        f"{router['slow_timeouts']} slow timeout(s), "
        f"{router['ejections']} ejection(s), 0 errors, 0 degraded, "
        f"0 respawns, 0 deadline_exceeded; victim rejoined after "
        f"SIGCONT")
    return report


async def _majority_kill(client: AsyncCompletionClient,
                         scene_paths: Sequence[Path]) -> list[str]:
    """Kill *both* replica-set owners of one scene; assert the router
    degrades gracefully (stale-but-honest answers) instead of erroring.

    The hash ring is deterministic over backend ids, so the smoke
    rebuilds it client-side from ``/healthz`` to pick exactly the two
    owners.  With every replica down the completion must come from the
    router's last-known-good cache with ``degraded: true`` — same
    snippets, marked stale — and must return to full fidelity once the
    owners respawn and the journal replays.
    """
    report: list[str] = []
    path = scene_paths[0]
    scene_id = (await client.register_scene(
        path.read_text(encoding="utf-8"), name=path.name))["scene_id"]
    baseline = await client.complete(scene_id, n=7)
    codes = tuple(s["code"] for s in baseline["snippets"])

    backends = {backend["backend_id"]: backend
                for backend in await client.backends()}
    assert len(backends) >= 3, (
        f"--kill-majority needs >= 3 backends so a non-owner survives, "
        f"got {len(backends)}")
    already_restarted = sum(backend.get("restarts", 0)
                            for backend in backends.values())
    roster = await client.admin_backends()
    replication = roster["replication"]
    assert replication >= 2, f"--kill-majority needs R>=2, got {replication}"
    ring = HashRing(replicas=roster["ring"]["replicas"])
    for backend_id in backends:
        ring.add(backend_id)
    owners = ring.route_n(scene_id, replication)

    for owner_id in owners:
        owner = backends[owner_id]
        assert owner.get("managed") and owner.get("pid"), (
            f"owner {owner_id} is not supervised; cannot kill it")
        os.kill(int(owner["pid"]), signal.SIGKILL)

    # Every replica is down: the very next answer must be the cached
    # completion, honestly marked — never a 5xx.  Same query shape as
    # the baseline (the last-known-good cache is keyed by it).
    served = await client.complete(scene_id, n=7)
    assert served.get("degraded") is True, (
        f"all-owners-down completion was not degraded: "
        f"{sorted(served)}")
    assert tuple(s["code"] for s in served["snippets"]) == codes, (
        "degraded answer diverged from the last known good")

    restarts = await _await_recovery(
        client, min_restarts=already_restarted + len(owners))
    deadline = time.monotonic() + 30.0
    while True:
        recovered = await client.complete(scene_id, n=7)
        if "degraded" not in recovered:
            break
        assert time.monotonic() < deadline, (
            "completions still degraded after owners respawned")
        await asyncio.sleep(0.05)
    assert tuple(s["code"] for s in recovered["snippets"]) == codes, (
        "post-recovery snippets diverged from the baseline")

    stats = await client.stats()
    router = stats["router"]
    assert router["degraded_served"] >= 1, router["degraded_served"]
    report.append(
        f"majority-kill: killed owners {owners} of {path.name}; served "
        f"{router['degraded_served']} degraded answer(s) from "
        f"last-known-good, then recovered full-fidelity after "
        f"{restarts} respawn(s)")
    return report


def _assert_stream_shape(chunks: list) -> dict:
    """Assert NDJSON chunk framing; returns the terminal ``done`` chunk.

    Snippet chunks must arrive in rank order with non-decreasing weights,
    and the final ``done`` chunk's batch payload must carry exactly the
    snippets that were streamed — the stream is self-checking.
    """
    assert chunks, "stream produced no chunks"
    assert [c["chunk"] for c in chunks[:-1]] == ["snippet"] * (
        len(chunks) - 1), "non-snippet chunk before the stream ended"
    done = chunks[-1]
    assert done["chunk"] == "done", f"stream ended with {done['chunk']!r}"
    snippets = chunks[:-1]
    assert [c["rank"] for c in snippets] == list(
        range(1, len(snippets) + 1)), "stream ranks not 1..n in order"
    weights = [c["weight"] for c in snippets]
    assert weights == sorted(weights), (
        f"stream weights not non-decreasing: {weights}")
    streamed = [{"rank": c["rank"], "code": c["code"],
                 "weight": c["weight"]} for c in snippets]
    assert streamed == done["snippets"], (
        "streamed snippets differ from the done chunk's batch payload")
    return done


async def _stream_drive(client: AsyncCompletionClient,
                        scene_paths: Sequence[Path]) -> list[str]:
    """Streaming + edit-session assertions (the protocol v2 surface).

    Every scene is streamed cold then warm (byte-identical snippets,
    ``cache_hit`` on the replay), then the first scene runs an
    edit-session round trip: add a declaration (new content-derived
    scene id), stream against the edited scene, remove the declaration
    again, and assert the session lands back on the *original* scene id
    with its warm ranking — the incremental path's parity contract over
    the wire.
    """
    report: list[str] = []
    chunk_total = 0
    for path in scene_paths:
        text = path.read_text(encoding="utf-8")
        scene_id = (await client.register_scene(
            text, name=path.name))["scene_id"]
        cold = [c async for c in client.complete_stream(scene_id, n=6)]
        done = _assert_stream_shape(cold)
        assert done["scene_id"] == scene_id
        warm = [c async for c in client.complete_stream(scene_id, n=6)]
        warm_done = _assert_stream_shape(warm)
        assert warm_done["cache_hit"], f"{path.name}: warm stream missed"
        assert warm_done["snippets"] == done["snippets"], (
            f"{path.name}: warm stream snippets differ from cold")
        chunk_total += len(cold) + len(warm)
        report.append(
            f"{path.name}: streamed {len(cold) - 1} snippets cold, "
            f"replayed warm from cache")

    # Edit-session round trip over the wire, on the first scene.
    path = scene_paths[0]
    origin_id = (await client.register_scene(
        path.read_text(encoding="utf-8"), name=path.name))["scene_id"]
    edited = await client.edit_scene(origin_id, [
        {"op": "add", "decl": "local smoke_probe : String"}])
    assert edited["scene_id"] != origin_id, (
        "edit did not change the content-derived scene id")
    assert edited["added"] == ["smoke_probe"], edited["added"]
    streamed = [c async for c in client.complete_stream(
        edited["scene_id"], n=6)]
    edited_done = _assert_stream_shape(streamed)
    assert edited_done["scene_id"] == edited["scene_id"]
    chunk_total += len(streamed)

    reverted = await client.edit_scene(edited["scene_id"], [
        {"op": "remove", "name": "smoke_probe"}])
    assert reverted["scene_id"] == origin_id, (
        f"net-no-op edit script landed on {reverted['scene_id']}, "
        f"not the original {origin_id}")
    assert reverted["reused"], "reverted scene did not reattach warm state"
    back = [c async for c in client.complete_stream(origin_id, n=6)]
    back_done = _assert_stream_shape(back)
    assert back_done["cache_hit"], (
        "original scene lost its cached ranking across the edit round trip")
    chunk_total += len(back)

    stats = await client.stats()
    server = stats["server"]
    assert server["streams"] >= 2 * len(scene_paths) + 2, (
        f"stats counted only {server['streams']} streams")
    assert server["stream_chunks"] == chunk_total, (
        f"stats counted {server['stream_chunks']} chunks, "
        f"client saw {chunk_total}")
    assert server["scenes_edited"] >= 2, server["scenes_edited"]
    assert server["edits_reused"] >= 1, server["edits_reused"]
    report.append(
        f"edit-session: {origin_id} -> {edited['scene_id']} -> back "
        f"(warm reattach); {server['streams']} streams, "
        f"{server['stream_chunks']} chunks accounted")
    return report


async def _drive(host: str, port: int, scene_paths: Sequence[Path],
                 burst: int, shards: int = 0,
                 chaos: bool = False, stream: bool = False,
                 kill_majority: bool = False, slow: bool = False,
                 report: Optional[list] = None) -> list[str]:
    # The caller may share *report* so a failing drive still leaves its
    # partial step log behind for the --report artifact.
    report = report if report is not None else []
    async with AsyncCompletionClient(host, port) as client:
        await wait_until_healthy(client)

        for path in scene_paths:
            text = path.read_text(encoding="utf-8")
            registered = await client.register_scene(text, name=path.name)
            scene_id = registered["scene_id"]

            cold = await client.complete(scene_id)
            assert not cold["cache_hit"], f"{path.name}: cold hit?"
            assert cold["snippets"], f"{path.name}: no snippets"
            warm = await client.complete(scene_id)
            assert warm["cache_hit"], f"{path.name}: warm request missed"
            assert warm["snippets"] == cold["snippets"], (
                f"{path.name}: warm snippets differ from cold")

            # Context hints end-to-end: the hinted repeat must still be a
            # cache hit (hints never fragment the result cache) and come
            # back re-ranked by the standard chain — through the router,
            # this exercises hint propagation across the dispatch hop.
            hinted = await client.complete(
                scene_id, context={"position_kind": "expression"})
            assert hinted["cache_hit"], (
                f"{path.name}: hinted repeat missed the cache — context "
                f"is fragmenting the result cache")
            assert hinted["reranked"], (
                f"{path.name}: hinted completion was not re-ranked")
            hinted_ranks = [s["rank"] for s in hinted["snippets"]]
            assert hinted_ranks == list(range(1, len(hinted_ranks) + 1)), (
                f"{path.name}: hinted ranks not renumbered 1..n")
            report.append(
                f"{path.name}: {len(cold['snippets'])} snippets, "
                f"best {cold['snippets'][0]['code']!r}, "
                f"cold {cold['synthesis_ms']:.0f} ms, "
                f"warm hit {warm['server_ms']:.2f} ms, hinted rerank ok")

        if stream:
            report.extend(await _stream_drive(client, scene_paths))

        if chaos:
            if kill_majority:
                report.extend(await _majority_kill(client, scene_paths))
            elif slow:
                report.extend(await _slow_burst(client, scene_paths))
            else:
                report.extend(await _chaos_burst(client, scene_paths))
        else:
            # Coalescing: a burst of identical *uncached* queries
            # (fresh n) must cost exactly one synthesis.  (Skipped under
            # --chaos: a respawned backend restarts its counters, so
            # cross-kill counter arithmetic would be meaningless.)
            scene_id = (await client.register_scene(
                scene_paths[0].read_text(encoding="utf-8"),
                name=scene_paths[0].name))["scene_id"]
            before = (await client.stats())["server"]
            burst_results = await asyncio.gather(
                *(client.complete(scene_id, n=7) for _ in range(burst)))
            after = (await client.stats())["server"]

            synthesized = after["synthesized"] - before["synthesized"]
            coalesced = after["coalesced"] - before["coalesced"]
            hits = after["cache_hits"] - before["cache_hits"]
            assert synthesized == 1, (
                f"burst of {burst} identical requests ran {synthesized} "
                f"syntheses, expected exactly 1")
            assert coalesced + hits == burst - 1, (
                f"burst accounting off: {coalesced} coalesced + {hits} "
                f"hits != {burst - 1}")
            codes = {tuple(s["code"] for s in r["snippets"])
                     for r in burst_results}
            assert len(codes) == 1, "burst responses disagree"
            report.append(
                f"burst: {burst} identical requests -> 1 synthesis, "
                f"{coalesced} coalesced, {hits} cache hits")

        stats = await client.stats()
        warm_latency = stats["server"]["latency"]["warm"]
        report.append(
            f"stats: {stats['server']['completions']} completions, "
            f"warm p95 {warm_latency['p95_ms']} ms, "
            f"{stats['core']['interned_types']['size']} interned types")

        if shards:
            # Router mode: the merged view must equal the per-shard sum.
            shard_list = stats["shards"]
            assert len(shard_list) == shards, (
                f"expected {shards} shards, stats shows {len(shard_list)}")
            for counter in ("completions", "synthesized", "cache_hits",
                            "scenes_registered"):
                total = sum(shard["stats"]["server"][counter]
                            for shard in shard_list if "stats" in shard)
                assert stats["server"][counter] == total, (
                    f"aggregated {counter} {stats['server'][counter]} != "
                    f"per-shard sum {total}")
            registered = [shard["stats"]["scenes"]["count"]
                          for shard in shard_list if "stats" in shard]
            assert all(count > 0 for count in registered), (
                f"sharding degenerated: per-shard scene counts "
                f"{registered}")
            report.append(
                f"router: {len(shard_list)} shards, scenes per shard "
                f"{registered}, {stats['router']['journal']['scenes']} "
                f"journaled")
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.smoke",
        description="end-to-end smoke test of the completion server")
    parser.add_argument("scenes", nargs="*",
                        help="paths to .ins scenes (default: all shipped "
                             "example scenes)")
    parser.add_argument("--burst", type=int, default=50,
                        help="concurrent identical requests (default 50)")
    parser.add_argument("--router", action="store_true",
                        help="drive `repro route` over 2 backend processes "
                             "instead of a single `repro serve`")
    parser.add_argument("--chaos", action="store_true",
                        help="with --router: SIGKILL one backend mid-burst "
                             "and assert respawn, retried completions, and "
                             "stats reconciliation")
    parser.add_argument("--stream", action="store_true",
                        help="also drive the protocol v2 surface: NDJSON "
                             "streaming (cold + warm replay) and an "
                             "edit-session round trip per scene set")
    parser.add_argument("--backends", type=int, default=2,
                        help="router backend processes (default 2)")
    parser.add_argument("--slow", action="store_true",
                        help="with --router --chaos: SIGSTOP one ring "
                             "owner mid-burst (the gray failure) instead "
                             "of SIGKILL; assert hedged completions on "
                             "the sibling, zero errors, zero respawns, "
                             "and rejoin after SIGCONT")
    parser.add_argument("--kill-majority", action="store_true",
                        help="with --router --chaos: SIGKILL *both* "
                             "replica-set owners of one scene and assert "
                             "degraded (not erroring) answers, then "
                             "recovery; needs --backends >= 3")
    parser.add_argument("--report", metavar="PATH",
                        help="write a JSON report artifact to PATH "
                             "(written on failure too)")
    args = parser.parse_args(argv)

    if args.chaos and not args.router:
        print("smoke: --chaos requires --router (only supervised "
              "backends can be killed and respawned)", file=sys.stderr)
        return 2
    if args.kill_majority and not args.chaos:
        print("smoke: --kill-majority requires --chaos", file=sys.stderr)
        return 2
    if args.slow and not args.chaos:
        print("smoke: --slow requires --chaos", file=sys.stderr)
        return 2
    if args.slow and args.kill_majority:
        print("smoke: --slow and --kill-majority are distinct chaos "
              "modes; pick one", file=sys.stderr)
        return 2
    if args.kill_majority and args.backends < 3:
        print("smoke: --kill-majority needs --backends >= 3 so a "
              "non-owner backend survives", file=sys.stderr)
        return 2

    scene_paths = [Path(p) for p in args.scenes]
    if not scene_paths:
        scene_paths = sorted(DEFAULT_SCENES_DIR.glob("*.ins"))
    if not scene_paths:
        print("smoke: no scenes found", file=sys.stderr)
        return 2

    shards = args.backends if args.router else 0
    if args.router:
        process, host, port = _spawn_server(
            ("--backends", str(args.backends)), command="route")
    else:
        process, host, port = _spawn_server()
    front = ("router+chaos" if args.chaos
             else "router" if args.router else "server")
    if args.kill_majority:
        front += "+kill-majority"
    if args.slow:
        front += "+slow"
    if args.stream:
        front += "+stream"
    report: list = []
    failure: Optional[str] = None
    try:
        asyncio.run(_drive(host, port, scene_paths, args.burst,
                           shards=shards, chaos=args.chaos,
                           stream=args.stream,
                           kill_majority=args.kill_majority,
                           slow=args.slow, report=report))
    except BaseException as error:            # noqa: BLE001 — report then re-raise
        failure = f"{type(error).__name__}: {error}"
        raise
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
        if args.report:
            artifact = {
                "mode": front,
                "scenes": [path.name for path in scene_paths],
                "backends": shards,
                "ok": failure is None,
                "failure": failure,
                "report": list(report),
            }
            Path(args.report).write_text(
                json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    for line in report:
        print(f"smoke: {line}")
    print(f"smoke: OK ({len(scene_paths)} scenes via {front})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
