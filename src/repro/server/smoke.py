"""End-to-end server smoke test: ``python -m repro.server.smoke``.

Boots a real ``repro serve`` subprocess on an ephemeral port, then drives
it with the async client: register every shipped example scene, complete
each one cold and again warm (asserting a cache hit), fire a burst of
concurrent identical requests and assert — via ``/v1/stats`` — that they
coalesced into exactly one synthesis.  Exit code 0 means the serving path
works end-to-end; CI runs this after the unit suite.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import re
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.server.client import AsyncCompletionClient, wait_until_healthy

#: Default scene set: every shipped example scene.
DEFAULT_SCENES_DIR = Path(__file__).resolve().parents[3] / "examples/scenes"

_LISTEN_RE = re.compile(r"serving on http://([\d.]+):(\d+)")


def _spawn_server(extra_args: Sequence[str] = ()) -> tuple:
    """Start ``repro serve --port 0``; returns (process, host, port)."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"repro serve exited before listening "
                f"(rc={process.poll()})")
        match = _LISTEN_RE.search(line)
        if match:
            return process, match.group(1), int(match.group(2))


async def _drive(host: str, port: int, scene_paths: Sequence[Path],
                 burst: int) -> list[str]:
    report: list[str] = []
    async with AsyncCompletionClient(host, port) as client:
        await wait_until_healthy(client)

        for path in scene_paths:
            text = path.read_text(encoding="utf-8")
            registered = await client.register_scene(text, name=path.name)
            scene_id = registered["scene_id"]

            cold = await client.complete(scene_id)
            assert not cold["cache_hit"], f"{path.name}: cold hit?"
            assert cold["snippets"], f"{path.name}: no snippets"
            warm = await client.complete(scene_id)
            assert warm["cache_hit"], f"{path.name}: warm request missed"
            assert warm["snippets"] == cold["snippets"], (
                f"{path.name}: warm snippets differ from cold")
            report.append(
                f"{path.name}: {len(cold['snippets'])} snippets, "
                f"best {cold['snippets'][0]['code']!r}, "
                f"cold {cold['synthesis_ms']:.0f} ms, "
                f"warm hit {warm['server_ms']:.2f} ms")

        # Coalescing: a burst of identical *uncached* queries (fresh n)
        # must cost exactly one synthesis.
        scene_id = (await client.register_scene(
            scene_paths[0].read_text(encoding="utf-8"),
            name=scene_paths[0].name))["scene_id"]
        before = (await client.stats())["server"]
        burst_results = await asyncio.gather(
            *(client.complete(scene_id, n=7) for _ in range(burst)))
        after = (await client.stats())["server"]

        synthesized = after["synthesized"] - before["synthesized"]
        coalesced = after["coalesced"] - before["coalesced"]
        hits = after["cache_hits"] - before["cache_hits"]
        assert synthesized == 1, (
            f"burst of {burst} identical requests ran {synthesized} "
            f"syntheses, expected exactly 1")
        assert coalesced + hits == burst - 1, (
            f"burst accounting off: {coalesced} coalesced + {hits} hits "
            f"!= {burst - 1}")
        codes = {tuple(s["code"] for s in r["snippets"])
                 for r in burst_results}
        assert len(codes) == 1, "burst responses disagree"
        report.append(
            f"burst: {burst} identical requests -> 1 synthesis, "
            f"{coalesced} coalesced, {hits} cache hits")

        stats = await client.stats()
        warm_latency = stats["server"]["latency"]["warm"]
        report.append(
            f"stats: {stats['server']['completions']} completions, "
            f"warm p95 {warm_latency['p95_ms']} ms, "
            f"{stats['core']['interned_types']['size']} interned types")
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.smoke",
        description="end-to-end smoke test of the completion server")
    parser.add_argument("scenes", nargs="*",
                        help="paths to .ins scenes (default: all shipped "
                             "example scenes)")
    parser.add_argument("--burst", type=int, default=50,
                        help="concurrent identical requests (default 50)")
    args = parser.parse_args(argv)

    scene_paths = [Path(p) for p in args.scenes]
    if not scene_paths:
        scene_paths = sorted(DEFAULT_SCENES_DIR.glob("*.ins"))
    if not scene_paths:
        print("smoke: no scenes found", file=sys.stderr)
        return 2

    process, host, port = _spawn_server()
    try:
        report = asyncio.run(_drive(host, port, scene_paths, args.burst))
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    for line in report:
        print(f"smoke: {line}")
    print(f"smoke: OK ({len(scene_paths)} scenes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
