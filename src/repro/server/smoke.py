"""End-to-end server smoke test: ``python -m repro.server.smoke``.

Boots a real ``repro serve`` subprocess on an ephemeral port, then drives
it with the async client: register every shipped example scene, complete
each one cold and again warm (asserting a cache hit), fire a burst of
concurrent identical requests and assert — via ``/v1/stats`` — that they
coalesced into exactly one synthesis.  Exit code 0 means the serving path
works end-to-end; CI runs this after the unit suite.

With ``--router`` the same drive runs against ``repro route`` over two
supervised backend processes instead — the protocol is identical, so the
very same assertions must hold, plus the aggregated ``/v1/stats`` view
must carry one entry per shard.  CI runs both forms.
"""

from __future__ import annotations

import argparse
import asyncio
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.server.client import AsyncCompletionClient, wait_until_healthy
from repro.server.router import spawn_cli_server

#: Default scene set: every shipped example scene.
DEFAULT_SCENES_DIR = Path(__file__).resolve().parents[3] / "examples/scenes"


def _spawn_server(extra_args: Sequence[str] = (),
                  command: str = "serve") -> tuple:
    """Start ``repro serve|route --port 0``; returns (process, host, port).

    Thin wrapper over the router's :func:`spawn_cli_server` — the smoke
    harness and the router supervise subprocesses with the exact same
    spawn protocol (PYTHONPATH injection, listen-line scan, pipe drain).
    """
    return spawn_cli_server(command, extra_args, label=f"smoke-{command}")


async def _drive(host: str, port: int, scene_paths: Sequence[Path],
                 burst: int, shards: int = 0) -> list[str]:
    report: list[str] = []
    async with AsyncCompletionClient(host, port) as client:
        await wait_until_healthy(client)

        for path in scene_paths:
            text = path.read_text(encoding="utf-8")
            registered = await client.register_scene(text, name=path.name)
            scene_id = registered["scene_id"]

            cold = await client.complete(scene_id)
            assert not cold["cache_hit"], f"{path.name}: cold hit?"
            assert cold["snippets"], f"{path.name}: no snippets"
            warm = await client.complete(scene_id)
            assert warm["cache_hit"], f"{path.name}: warm request missed"
            assert warm["snippets"] == cold["snippets"], (
                f"{path.name}: warm snippets differ from cold")
            report.append(
                f"{path.name}: {len(cold['snippets'])} snippets, "
                f"best {cold['snippets'][0]['code']!r}, "
                f"cold {cold['synthesis_ms']:.0f} ms, "
                f"warm hit {warm['server_ms']:.2f} ms")

        # Coalescing: a burst of identical *uncached* queries (fresh n)
        # must cost exactly one synthesis.
        scene_id = (await client.register_scene(
            scene_paths[0].read_text(encoding="utf-8"),
            name=scene_paths[0].name))["scene_id"]
        before = (await client.stats())["server"]
        burst_results = await asyncio.gather(
            *(client.complete(scene_id, n=7) for _ in range(burst)))
        after = (await client.stats())["server"]

        synthesized = after["synthesized"] - before["synthesized"]
        coalesced = after["coalesced"] - before["coalesced"]
        hits = after["cache_hits"] - before["cache_hits"]
        assert synthesized == 1, (
            f"burst of {burst} identical requests ran {synthesized} "
            f"syntheses, expected exactly 1")
        assert coalesced + hits == burst - 1, (
            f"burst accounting off: {coalesced} coalesced + {hits} hits "
            f"!= {burst - 1}")
        codes = {tuple(s["code"] for s in r["snippets"])
                 for r in burst_results}
        assert len(codes) == 1, "burst responses disagree"
        report.append(
            f"burst: {burst} identical requests -> 1 synthesis, "
            f"{coalesced} coalesced, {hits} cache hits")

        stats = await client.stats()
        warm_latency = stats["server"]["latency"]["warm"]
        report.append(
            f"stats: {stats['server']['completions']} completions, "
            f"warm p95 {warm_latency['p95_ms']} ms, "
            f"{stats['core']['interned_types']['size']} interned types")

        if shards:
            # Router mode: the merged view must equal the per-shard sum.
            shard_list = stats["shards"]
            assert len(shard_list) == shards, (
                f"expected {shards} shards, stats shows {len(shard_list)}")
            for counter in ("completions", "synthesized", "cache_hits",
                            "scenes_registered"):
                total = sum(shard["stats"]["server"][counter]
                            for shard in shard_list if "stats" in shard)
                assert stats["server"][counter] == total, (
                    f"aggregated {counter} {stats['server'][counter]} != "
                    f"per-shard sum {total}")
            registered = [shard["stats"]["scenes"]["count"]
                          for shard in shard_list if "stats" in shard]
            assert all(count > 0 for count in registered), (
                f"sharding degenerated: per-shard scene counts "
                f"{registered}")
            report.append(
                f"router: {len(shard_list)} shards, scenes per shard "
                f"{registered}, {stats['router']['journal']['scenes']} "
                f"journaled")
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.smoke",
        description="end-to-end smoke test of the completion server")
    parser.add_argument("scenes", nargs="*",
                        help="paths to .ins scenes (default: all shipped "
                             "example scenes)")
    parser.add_argument("--burst", type=int, default=50,
                        help="concurrent identical requests (default 50)")
    parser.add_argument("--router", action="store_true",
                        help="drive `repro route` over 2 backend processes "
                             "instead of a single `repro serve`")
    args = parser.parse_args(argv)

    scene_paths = [Path(p) for p in args.scenes]
    if not scene_paths:
        scene_paths = sorted(DEFAULT_SCENES_DIR.glob("*.ins"))
    if not scene_paths:
        print("smoke: no scenes found", file=sys.stderr)
        return 2

    shards = 2 if args.router else 0
    if args.router:
        process, host, port = _spawn_server(("--backends", "2"),
                                            command="route")
    else:
        process, host, port = _spawn_server()
    try:
        report = asyncio.run(_drive(host, port, scene_paths, args.burst,
                                    shards=shards))
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    for line in report:
        print(f"smoke: {line}")
    front = "router" if args.router else "server"
    print(f"smoke: OK ({len(scene_paths)} scenes via {front})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
