"""The server's versioned JSON wire protocol.

Every response body is an envelope ``{"v": 1, "ok": true/false, ...}``;
errors carry a machine-readable ``error.code`` from :data:`ERROR_CODES`
plus a human message.  Requests are validated here — the server and the
client both go through this module, so the two ends can never drift.

Endpoints (all bodies JSON):

======================  ======  ==============================================
``/v1/register-scene``  POST    upload ``.ins`` text, get a stable scene id
``/v1/complete``        POST    one completion query (by scene id or inline)
``/v1/complete-batch``  POST    many queries, answered concurrently
``/v1/release-scene``   POST    explicitly drop a registered scene
``/v1/edit-scene``      POST    declaration deltas against a registered scene
``/v1/admin/backends``  both    router only: list / add / drain / remove
``/v1/stats``           GET     live metrics snapshot
``/healthz``            GET     liveness probe
======================  ======  ==============================================

Deadlines: a request's ``deadline_ms`` is mapped onto the paper's anytime
budgets by :func:`deadline_config` — the prover and reconstruction limits
are scaled so their sum fits the deadline while keeping the evaluation's
0.5 s : 7 s proportion.  An expired deadline is not an error: synthesis
returns whatever it proved/reconstructed in time and the response marks
``"partial": true`` (the paper's §5.6 anytime behaviour on the wire).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.config import SynthesisConfig
from repro.core.errors import ReproError
from repro.core.ranking import CompletionContext, ContextError
from repro.engine.engine import VARIANTS

#: Bump when the wire schema changes incompatibly.  v2 added scene deltas
#: (``/v1/edit-scene``), streaming completions (``"stream": true`` on
#: ``/v1/complete``, NDJSON chunks) and server-side request-version
#: validation (``unsupported_version``).
PROTOCOL_VERSION = 2

#: Machine-readable error codes carried in ``error.code``.
ERROR_CODES = (
    "bad_request",      # malformed JSON / missing or invalid fields -> 400
    "unsupported_version",  # request 'v' != server protocol version -> 400
    "invalid_context",  # malformed/typo'd context hint object -> 400
    "not_found",        # unknown path or scene id -> 404
    "overloaded",       # admission control rejected the request -> 429
    "scene_error",      # the scene text failed to parse/load -> 422
    "deadline_exceeded",  # end-to-end budget spent before serving -> 504
    "internal",         # unexpected server-side failure -> 500
)

#: HTTP status for each error code.
STATUS_FOR_CODE = {
    "bad_request": 400,
    "unsupported_version": 400,
    "invalid_context": 400,
    "not_found": 404,
    "overloaded": 429,
    "scene_error": 422,
    "deadline_exceeded": 504,
    "internal": 500,
}

#: Hard ceiling on request deadlines (guards against absurd budgets).
MAX_DEADLINE_MS = 600_000

#: Most queries accepted in one ``complete-batch`` body: each entry
#: becomes a concurrent task on the event loop before admission control
#: can see it, so the count must be bounded at the protocol edge.
MAX_BATCH_QUERIES = 256

#: Floor for a mapped per-phase budget: never hand the pipeline a zero or
#: negative limit, even for a 1 ms deadline.
MIN_PHASE_SECONDS = 0.001

#: Request priority scale for admission-pressure shedding.  Priorities
#: below :data:`NORMAL_PRIORITY` are shed first when the queue crosses
#: the server's soft watermark; an absent ``priority`` means normal.
MAX_PRIORITY = 9
NORMAL_PRIORITY = 5


class ProtocolError(ReproError):
    """A request failed protocol validation."""

    def __init__(self, message: str, code: str = "bad_request"):
        assert code in ERROR_CODES
        self.code = code
        self.status = STATUS_FOR_CODE[code]
        super().__init__(message)


def _require(payload: Any) -> dict:
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    # Version validation mirrors the client's response-side envelope check:
    # a request *may* carry "v" (the bundled client always sends it), and a
    # carried version must match exactly — a silent mismatch would let an
    # old client's payload be reinterpreted under new field semantics.
    # Version-less requests are accepted for plain-HTTP callers.
    version = payload.get("v")
    if version is not None and version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r}; this server speaks "
            f"v{PROTOCOL_VERSION}", code="unsupported_version")
    return payload


def _optional_str(payload: dict, field: str) -> Optional[str]:
    value = payload.get(field)
    if value is None:
        return None
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(f"{field!r} must be a non-empty string")
    return value


def _optional_int(payload: dict, field: str, minimum: int,
                  maximum: Optional[int] = None) -> Optional[int]:
    value = payload.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{field!r} must be an integer")
    if value < minimum:
        raise ProtocolError(f"{field!r} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ProtocolError(f"{field!r} must be <= {maximum}, got {value}")
    return value


@dataclass(frozen=True)
class RegisterSceneRequest:
    """``POST /v1/register-scene``: upload one ``.ins`` scene."""

    text: str
    name: Optional[str] = None

    @staticmethod
    def from_payload(payload: Any) -> "RegisterSceneRequest":
        payload = _require(payload)
        text = payload.get("text")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError("'text' (the .ins scene source) is required")
        return RegisterSceneRequest(text=text,
                                    name=_optional_str(payload, "name"))

    def to_payload(self) -> dict:
        payload: dict = {"text": self.text}
        if self.name is not None:
            payload["name"] = self.name
        return payload


@dataclass(frozen=True)
class CompleteRequest:
    """``POST /v1/complete`` (and each entry of ``complete-batch``).

    Exactly one of ``scene_id`` (a previously registered scene) or
    ``scene`` (inline ``.ins`` text, registered on the fly) names the
    environment; ``goal`` defaults to the scene's own goal line.  With
    ``stream`` the response is NDJSON: one ``snippet`` chunk per ranked
    suggestion as reconstruction emits it, then one ``done`` chunk
    carrying the full batch payload (``stream`` is ignored inside
    ``complete-batch`` entries — a multiplexed body has one envelope).
    """

    scene_id: Optional[str] = None
    scene: Optional[str] = None
    goal: Optional[str] = None
    variant: Optional[str] = None
    n: Optional[int] = None
    deadline_ms: Optional[int] = None
    #: Remaining *end-to-end* budget at this hop, in milliseconds.  Unlike
    #: ``deadline_ms`` (the synthesis anytime budget, constant across
    #: retries), ``budget_ms`` shrinks at every hop: the client stamps the
    #: absolute budget, the router re-stamps whatever is left before each
    #: dispatch, and a hop receiving ``0`` must fast-fail with
    #: ``deadline_exceeded`` rather than start work it cannot finish in
    #: time.  ``0`` is deliberately *valid* on the wire — a spent budget
    #: is a deadline error, not a malformed request.
    budget_ms: Optional[int] = None
    stream: bool = False
    #: Optional admission-pressure priority, ``0`` (shed first) to ``9``
    #: (shed last); absent means :data:`NORMAL_PRIORITY`.  Under load the
    #: server sheds below-normal work at a soft watermark before the
    #: hard ``overloaded`` ceiling applies to everyone — interactive
    #: completions keep landing while batch backfill waits.
    priority: Optional[int] = None
    #: Optional per-query position hints for the ranking pipeline
    #: (``receiver_type`` / ``enclosing_class`` / ``position_kind``).
    #: Hints never enter cache keys — the same query under different
    #: hints is a cache hit, re-ranked per context — and a typo'd hint
    #: key is rejected with ``invalid_context`` rather than silently
    #: ignored.
    context: Optional[CompletionContext] = None

    @staticmethod
    def from_payload(payload: Any) -> "CompleteRequest":
        payload = _require(payload)
        scene_id = _optional_str(payload, "scene_id")
        scene = _optional_str(payload, "scene")
        if (scene_id is None) == (scene is None):
            raise ProtocolError(
                "pass exactly one of 'scene_id' or 'scene' (inline text)")
        variant = _optional_str(payload, "variant")
        if variant is not None and variant not in VARIANTS:
            raise ProtocolError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}")
        stream = payload.get("stream", False)
        if not isinstance(stream, bool):
            raise ProtocolError("'stream' must be a boolean")
        raw_context = payload.get("context")
        context = None
        if raw_context is not None:
            try:
                context = CompletionContext.from_payload(raw_context)
            except ContextError as exc:
                raise ProtocolError(str(exc), code="invalid_context") from exc
            if context.is_empty:
                context = None
        return CompleteRequest(
            scene_id=scene_id,
            scene=scene,
            goal=_optional_str(payload, "goal"),
            variant=variant,
            n=_optional_int(payload, "n", minimum=1, maximum=10_000),
            deadline_ms=_optional_int(payload, "deadline_ms", minimum=1,
                                      maximum=MAX_DEADLINE_MS),
            budget_ms=_optional_int(payload, "budget_ms", minimum=0,
                                    maximum=MAX_DEADLINE_MS),
            stream=stream,
            priority=_optional_int(payload, "priority", minimum=0,
                                   maximum=MAX_PRIORITY),
            context=context,
        )

    def to_payload(self) -> dict:
        payload = {}
        for field in ("scene_id", "scene", "goal", "variant", "n",
                      "deadline_ms", "budget_ms", "priority"):
            value = getattr(self, field)
            if value is not None:
                payload[field] = value
        if self.stream:
            payload["stream"] = True
        if self.context is not None and not self.context.is_empty:
            payload["context"] = self.context.to_payload()
        return payload


@dataclass(frozen=True)
class ReleaseSceneRequest:
    """``POST /v1/release-scene``: explicitly drop one registered scene.

    Releasing an unknown (or already released) id is not an error — the
    response carries ``"released": false`` — so releases are idempotent
    and safe to retry, which a sharded router relies on when re-homing
    scenes across backends.
    """

    scene_id: str

    @staticmethod
    def from_payload(payload: Any) -> "ReleaseSceneRequest":
        payload = _require(payload)
        scene_id = _optional_str(payload, "scene_id")
        if scene_id is None:
            raise ProtocolError("'scene_id' is required")
        return ReleaseSceneRequest(scene_id=scene_id)

    def to_payload(self) -> dict:
        return {"scene_id": self.scene_id}


#: Most delta ops accepted per ``edit-scene`` request: each op is one
#: editor keystroke's worth of change; hundreds in one body means a bulk
#: rewrite, which is what ``register-scene`` is for.
MAX_EDIT_OPS = 256


@dataclass(frozen=True)
class EditSceneRequest:
    """``POST /v1/edit-scene``: declaration deltas against a registered scene.

    ``ops`` is an ordered list of ``{"op": "add", "decl": <line>}`` /
    ``{"op": "remove", "name": <name>}`` objects (the
    :class:`repro.incremental.DeltaOp` wire form).  Only the op *shape* is
    validated here; declaration-line parsing happens scene-side and
    answers ``scene_error``.  The response names the edited scene's new
    content-derived id and carries the canonical serialized final text, so
    callers (the sharded router's journal above all) can reproduce the
    edited state by plain re-registration.
    """

    scene_id: str
    ops: tuple
    name: Optional[str] = None

    @staticmethod
    def from_payload(payload: Any) -> "EditSceneRequest":
        payload = _require(payload)
        scene_id = _optional_str(payload, "scene_id")
        if scene_id is None:
            raise ProtocolError("'scene_id' is required")
        ops = payload.get("ops")
        if not isinstance(ops, list) or not ops:
            raise ProtocolError("'ops' must be a non-empty list of delta ops")
        if len(ops) > MAX_EDIT_OPS:
            raise ProtocolError(
                f"edit of {len(ops)} ops exceeds the {MAX_EDIT_OPS}-op "
                f"limit; re-register the scene instead")
        for index, op in enumerate(ops):
            if not isinstance(op, dict):
                raise ProtocolError(f"ops[{index}] must be an object")
            kind = op.get("op")
            if kind == "add":
                if not isinstance(op.get("decl"), str) or \
                        not op["decl"].strip():
                    raise ProtocolError(
                        f"ops[{index}]: add requires 'decl' "
                        f"(one declaration line)")
            elif kind == "remove":
                if not isinstance(op.get("name"), str) or \
                        not op["name"].strip():
                    raise ProtocolError(f"ops[{index}]: remove requires "
                                        f"'name'")
            else:
                raise ProtocolError(
                    f"ops[{index}]: 'op' must be 'add' or 'remove', "
                    f"got {kind!r}")
        return EditSceneRequest(scene_id=scene_id,
                                ops=tuple(ops),
                                name=_optional_str(payload, "name"))

    def to_payload(self) -> dict:
        payload: dict = {"scene_id": self.scene_id, "ops": list(self.ops)}
        if self.name is not None:
            payload["name"] = self.name
        return payload


#: Actions accepted by the router's ``POST /v1/admin/backends``.
#: ``rebalance`` forces one load-skew rebalancing pass immediately — the
#: same scene moves the supervisor's dwell-timed policy performs, minus
#: the dwell wait (the operator's "do it now" lever, and the testable
#: entry point).
ADMIN_ACTIONS = ("add", "drain", "remove", "rebalance")


@dataclass(frozen=True)
class AdminBackendsRequest:
    """``POST /v1/admin/backends`` (router only): live elasticity.

    ``add`` spawns a new managed backend (or attaches ``address``),
    waits for health, and replays its journal shard into it; ``drain``
    takes a backend off the hash ring, re-registers its scenes on their
    new owners, and moves sticky edit-sessions — the backend keeps
    serving in-flight traffic until ``remove`` tears it down (``remove``
    drains first when needed).  Replica answers with ``degraded: true``
    mark last-known-good responses served while every owner of a scene
    is down — same envelope, one extra marker, no new status code.
    """

    action: str
    backend_id: Optional[str] = None
    address: Optional[str] = None

    @staticmethod
    def from_payload(payload: Any) -> "AdminBackendsRequest":
        payload = _require(payload)
        action = _optional_str(payload, "action")
        if action not in ADMIN_ACTIONS:
            raise ProtocolError(
                f"'action' must be one of {ADMIN_ACTIONS}, got {action!r}")
        backend_id = _optional_str(payload, "backend_id")
        if action in ("drain", "remove") and backend_id is None:
            raise ProtocolError(f"'backend_id' is required for {action!r}")
        address = _optional_str(payload, "address")
        if address is not None:
            if action != "add":
                raise ProtocolError("'address' only applies to 'add'")
            host, _, port = address.rpartition(":")
            if not host or not port.isdigit() or not 0 < int(port) < 65536:
                raise ProtocolError(
                    f"'address' {address!r} is not host:port")
        return AdminBackendsRequest(action=action, backend_id=backend_id,
                                    address=address)

    def to_payload(self) -> dict:
        payload: dict = {"action": self.action}
        if self.backend_id is not None:
            payload["backend_id"] = self.backend_id
        if self.address is not None:
            payload["address"] = self.address
        return payload


def parse_batch_payload(payload: Any) -> list[CompleteRequest]:
    """Validate a ``complete-batch`` body into its per-query requests."""
    payload = _require(payload)
    queries = payload.get("queries")
    if not isinstance(queries, list) or not queries:
        raise ProtocolError("'queries' must be a non-empty list")
    if len(queries) > MAX_BATCH_QUERIES:
        raise ProtocolError(
            f"batch of {len(queries)} queries exceeds the "
            f"{MAX_BATCH_QUERIES}-query limit; split the request")
    return [CompleteRequest.from_payload(entry) for entry in queries]


# -- responses ---------------------------------------------------------------


def ok_payload(**fields: Any) -> dict:
    """An ``ok`` response envelope."""
    return {"v": PROTOCOL_VERSION, "ok": True, **fields}


def error_payload(code: str, message: str) -> dict:
    """An error response envelope."""
    assert code in ERROR_CODES
    return {"v": PROTOCOL_VERSION, "ok": False,
            "error": {"code": code, "message": message}}


def snippet_payload(snippet) -> dict:
    """One ranked suggestion on the wire."""
    return {"rank": snippet.rank, "code": snippet.code,
            "weight": round(snippet.weight, 4)}


def completion_payload(*, scene_id: str, goal, variant: str, result,
                       cache_hit: bool, coalesced: bool,
                       deadline_ms: Optional[int],
                       server_seconds: float,
                       reranked: bool = False) -> dict:
    """The response body for one served completion.

    ``reranked`` marks results the weigher chain adjusted after cache
    lookup — the observable half of the "hints never fragment the cache"
    contract: a hinted repeat of a cached query answers ``cache_hit:
    true`` *and* ``reranked: true``.
    """
    return ok_payload(
        scene_id=scene_id,
        goal=str(goal),
        variant=variant,
        inhabited=result.inhabited,
        snippets=[snippet_payload(s) for s in result.snippets],
        partial=bool(result.explore_truncated
                     or result.reconstruction_truncated),
        cache_hit=cache_hit,
        coalesced=coalesced,
        deadline_ms=deadline_ms,
        synthesis_ms=round(result.total_seconds * 1000, 3),
        server_ms=round(server_seconds * 1000, 3),
        reranked=reranked,
    )


# -- streaming (NDJSON) ------------------------------------------------------

#: ``Content-Type`` of a streamed completion response.
STREAM_CONTENT_TYPE = "application/x-ndjson"


def stream_snippet_chunk(snippet) -> dict:
    """One NDJSON line per ranked suggestion, as reconstruction emits it."""
    return {"v": PROTOCOL_VERSION, "chunk": "snippet",
            **snippet_payload(snippet)}


def stream_done_chunk(completion: dict) -> dict:
    """The terminal NDJSON line: the full batch-mode completion payload.

    Carrying the whole payload (snippets included) makes the stream
    self-checking — a client can assert the chunks it collected equal the
    batch answer — and lets pure proxies forward streams without
    reassembling state.
    """
    return {"v": PROTOCOL_VERSION, "chunk": "done", **completion}


def stream_error_chunk(code: str, message: str) -> dict:
    """A mid-stream failure (the HTTP status is long gone at this point)."""
    return {"v": PROTOCOL_VERSION, "chunk": "error",
            **error_payload(code, message)}


def encode_stream_chunk(chunk: dict) -> bytes:
    """One NDJSON line: compact JSON + newline (the chunk framing)."""
    return json.dumps(chunk, separators=(",", ":"),
                      sort_keys=True).encode("utf-8") + b"\n"


def encode_body(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")


def decode_body(body: bytes) -> Any:
    if not body:
        raise ProtocolError("empty request body; expected JSON")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON body: {exc}") from exc


# -- deadlines ---------------------------------------------------------------


def deadline_config(base: SynthesisConfig,
                    deadline_ms: Optional[int]) -> SynthesisConfig:
    """Map a request deadline onto the paper's anytime budgets.

    The deadline is split between the prover and reconstruction phases in
    the proportion of the base config's limits (the evaluation's 0.5 s
    prover : 7 s reconstruction by default), and each phase limit is also
    clamped by its base value — a generous deadline never *extends* the
    configured budgets.  Deterministic: equal deadlines yield equal
    configs, so they share cache keys and coalesce.
    """
    if deadline_ms is None:
        return base
    budget = deadline_ms / 1000.0
    prover_base = base.prover_time_limit if base.prover_time_limit else 0.5
    recon_base = (base.reconstruction_time_limit
                  if base.reconstruction_time_limit else 7.0)
    share = prover_base / (prover_base + recon_base)
    prover = max(min(prover_base, budget * share), MIN_PHASE_SECONDS)
    recon = max(min(recon_base, budget - prover), MIN_PHASE_SECONDS)
    return base.with_(prover_time_limit=round(prover, 6),
                      reconstruction_time_limit=round(recon, 6))
