"""The asyncio completion server.

One event loop, one engine, many editors.  The serving rules:

* **Never block the loop.**  Synthesis and scene preparation are
  CPU-bound, so they run on a thread executor; the loop only does cache
  lookups, key construction and byte shuffling.  (Pure-Python synthesis
  holds the GIL, so threads buy loop *responsiveness*, not CPU
  parallelism — process-level fan-out stays the engine batch API's job.)
* **Coalesce identical work.**  Concurrent requests that resolve to the
  same :class:`~repro.engine.keys.QueryKey` share one in-flight synthesis
  (single-flight): the first starts it, the rest ``await`` its future and
  are counted as *coalesced*.  50 identical Ctrl+Space storms cost one
  pipeline run.
* **Admit or reject fast.**  At most ``max_pending`` syntheses may be
  queued or running; a miss beyond that is rejected immediately with a
  429/``overloaded`` error rather than queued into a latency collapse.
  Cache hits and coalesced joins bypass admission — they add no work.
* **Deadlines are anytime budgets.**  ``deadline_ms`` maps onto the
  paper's prover/reconstruction limits (§5.6); an expired budget returns
  the partial ranking found in time, marked ``"partial": true``.

The cache/coalescing discipline: the engine's result cache and in-flight
table are touched *only* from the event loop; executor threads run the
pure pipeline (`_run_synthesis`) and nothing else.  That single-writer
rule is what makes the stdlib dicts safe without locks.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ReproError
from repro.core.ranking import CompletionContext, RankingPipeline
from repro.core.synthesizer import SynthesisResult
from repro.core.types import Type
from repro.corpus.mining import ProjectWeightTables
from repro.engine.engine import (CompletionEngine, PreparedScene,
                                 WorkerSceneUnavailable, _execute_remote,
                                 _RemoteQuery, policy_for_variant)
from repro.engine.keys import query_key
from repro.server import protocol
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (CompleteRequest, EditSceneRequest,
                                   ProtocolError, RegisterSceneRequest,
                                   ReleaseSceneRequest, deadline_config)
from repro.engine.cache import LRUCache
from repro.server.registry import (RegisteredScene, SceneRegistry,
                                   build_scene, scene_id_for)

#: Largest accepted request body (a scene upload is a few KB; 8 MiB is
#: already absurdly generous).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Most header lines accepted per request (clients send a handful).
MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServerConfig:
    """Knobs for one :class:`AsyncCompletionServer`."""

    host: str = "127.0.0.1"
    port: int = 8777                       # 0 = ephemeral
    max_pending: int = 64                  # admission-control bound
    max_scenes: int = 32                   # registry LRU size
    executor_workers: int = 4              # synthesis threads
    #: Process-pool workers for synthesis.  Threads only keep the event
    #: loop responsive (pure-Python synthesis holds the GIL); processes
    #: add real CPU throughput.  1 = in-process threads only; N > 1
    #: dispatches cache-miss syntheses through the engine's pool worker
    #: (`repro.engine.engine._execute_remote`), which keeps a per-process
    #: prepared-scene memo so each worker prepares a scene once.
    workers: int = 1
    default_deadline_ms: Optional[int] = None
    latency_window: int = 2048
    #: GC tuning for the serving process (``repro serve --gc-tune``).
    #: Warm-latency noise is dominated by gen-2 collections scanning the
    #: prepared scenes' millions of long-lived objects; with tuning on,
    #: every scene registration is followed by ``gc.collect()`` +
    #: ``gc.freeze()`` (moving the scene's objects to the permanent
    #: generation, where no collection ever visits them) and the
    #: collection thresholds are raised so the steady-state request path
    #: triggers far fewer collections.
    gc_tune: bool = False
    #: Thresholds applied when ``gc_tune`` is set (gen0 allocations,
    #: gen1/gen2 promotion counts).  The gen0 threshold is ~70x CPython's
    #: default 700: request handling allocates heavily but almost nothing
    #: survives, so rarer, slightly larger young collections beat frequent
    #: tiny ones once the long-lived data is frozen.
    gc_thresholds: tuple = (50_000, 25, 25)
    #: Idle/read timeout per request on a connection: a half-sent request
    #: (or an idle keep-alive socket) releases its handler task and fd
    #: after this many seconds instead of pinning them forever.  The
    #: client's stale-pool retry makes idle closes transparent.
    read_timeout: float = 60.0
    #: Result-cache snapshot file (``repro serve --snapshot``).  When set,
    #: the server restores the snapshot at startup (starting the replica
    #: warm) and re-saves it after syntheses and on shutdown — the
    #: cross-process persistence seam the sharded router's backend
    #: respawns rely on.  ``None`` disables persistence.
    snapshot_path: Optional[str] = None
    #: Minimum seconds between post-synthesis snapshot saves.  0 saves
    #: after every synthesis (concurrent syntheses still coalesce into
    #: one pending save) — the right default for replica durability;
    #: raise it on write-heavy workloads where the snapshot file is big.
    snapshot_interval: float = 0.0
    #: Soft admission watermark, as a fraction of ``max_pending``: once
    #: the queue is this full, below-normal-priority requests (protocol
    #: ``priority`` < 5) are shed with 429 while normal and high
    #: priorities keep landing until the hard ceiling — under pressure
    #: the interactive tier degrades last.
    shed_watermark: float = 0.75
    #: Debug fault injection (``repro serve --inject-latency-ms``): every
    #: completion sleeps this long before serving.  Models a gray-failed
    #: backend — alive, answering, *slow* — for the chaos harness and
    #: the router's hedging/ejection tests.  0 disables.
    inject_latency_ms: int = 0
    #: Post-reconstruction re-ranking: when True (the default) the
    #: server's engine runs the standard weigher chain over every served
    #: result — after cache lookup, so cached entries stay base-ranked
    #: and one fingerprint key serves every context.  False serves raw
    #: corpus-weight order (the engine-library default).
    rerank: bool = True
    #: Per-project weight table file (``repro serve --project-weights``),
    #: a :meth:`ProjectWeightTables.save` JSON document.  When set, the
    #: ranking stage re-scores each scene with its own project's mined
    #: frequencies (merged-global fallback).  Explicit configuration here
    #: wins over tables riding in a restored snapshot.
    project_weights_path: Optional[str] = None


@dataclass(frozen=True)
class _HttpRequest:
    method: str
    path: str
    headers: dict
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return (self.headers.get("connection", "keep-alive").lower()
                != "close")


class _HttpError(Exception):
    """A request we can't parse but can still answer over HTTP."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


async def read_http_request(reader: asyncio.StreamReader
                            ) -> Optional[_HttpRequest]:
    """Parse one HTTP/1.1 request off *reader*, or ``None`` at EOF.

    Module-level (rather than a server method) because the sharded router
    speaks the same protocol on its front side — one parser, zero drift.
    Raises :class:`_HttpError` for requests that are malformed but still
    answerable over HTTP.
    """
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _HttpError(400, f"malformed request line: "
                              f"{line[:80]!r}")
    method, target, _version = parts
    headers: dict = {}
    header_lines = 0
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        header_lines += 1
        if header_lines > MAX_HEADER_LINES:
            raise _HttpError(400, f"more than {MAX_HEADER_LINES} "
                                  f"header lines")
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _HttpError(400, "non-numeric Content-Length")
    if length < 0:
        raise _HttpError(400, f"negative Content-Length {length}")
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"request body of {length} bytes exceeds "
                              f"the {MAX_BODY_BYTES}-byte limit")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return _HttpRequest(method=method, path=path, headers=headers,
                        body=body)


def _run_synthesis(prepared: PreparedScene, goal: Type, policy, config,
                   n: Optional[int]) -> SynthesisResult:
    """The executor entry point: one pure pipeline run.

    Module-level so tests can monkeypatch it (to count, delay or stub
    synthesis) without touching the serving logic around it.
    """
    return prepared.synthesizer(policy, config).synthesize(goal, n=n)


def _run_synthesis_stream(prepared: PreparedScene, goal: Type, policy,
                          config, n: Optional[int],
                          emit) -> SynthesisResult:
    """`_run_synthesis` with a per-snippet callback (streamed serving).

    *emit* is the loop-side queue bridge; it runs on this executor thread,
    so streamed syntheses never go through the process pool — a callback
    cannot cross a process boundary.
    """
    return prepared.synthesizer(policy, config).synthesize(
        goal, n=n, on_snippet=emit)


def _apply_edit(engine: CompletionEngine, scene: RegisteredScene,
                ops_payloads, name: Optional[str]
                ) -> tuple[RegisteredScene, str, "DeltaOutcome"]:
    """Executor entry point for one scene delta: parse, apply, re-prepare.

    Pure with respect to the registry, like :func:`build_scene` (callers
    hold the registration lock).  Returns the edited scene as an
    un-adopted :class:`RegisteredScene`, its canonical serialized text —
    what a router journals so replicas can reproduce the edited state by
    plain re-registration — and the delta outcome.
    """
    from repro.incremental.delta import (DeltaError, apply_scene_delta,
                                         parse_delta_ops)
    from repro.lang.serializer import serialize_environment

    try:
        ops = parse_delta_ops(ops_payloads)
        outcome = apply_scene_delta(engine, scene.prepared, ops,
                                    name=name or scene.name)
    except DeltaError as error:
        raise ProtocolError(str(error), code="scene_error") from error
    prepared = outcome.prepared
    text = serialize_environment(prepared.base_environment,
                                 prepared.subtypes, prepared.goal)
    edited = RegisteredScene(scene_id=scene_id_for(prepared),
                             name=prepared.name,
                             prepared=prepared,
                             declarations=len(prepared.base_environment))
    return edited, text, outcome


def _stream_request_payload(request: _HttpRequest) -> Optional[dict]:
    """The decoded body of a streamed complete request, or ``None``.

    The byte sniff keeps the hot batch path free of a second JSON decode;
    a body that merely *mentions* "stream" decodes once here and once in
    the handler — rare and harmless.  Undecodable bodies fall through to
    the normal dispatch path, which reports the error with a proper HTTP
    status.  Shared with the router, whose front side must fork to
    chunk-proxy mode on exactly the same requests.
    """
    if (request.method, request.path) != ("POST", "/v1/complete"):
        return None
    if b'"stream"' not in request.body:
        return None
    try:
        payload = protocol.decode_body(request.body)
    except ProtocolError:
        return None
    if not isinstance(payload, dict) or payload.get("stream") is not True:
        return None
    return payload


def _stream_head() -> bytes:
    """The response head of a streamed completion.

    No Content-Length — the body is an NDJSON sequence of unknown length,
    framed by connection close (HTTP/1.1 EOF framing) — which is why a
    streamed response always ends its connection.
    """
    return (f"HTTP/1.1 200 OK\r\n"
            f"Content-Type: {protocol.STREAM_CONTENT_TYPE}\r\n"
            f"Connection: close\r\n"
            f"\r\n").encode("latin-1")


class _StreamWire:
    """Chunk writer that survives client disconnects.

    A vanished reader must not abort synthesis — the result still goes
    into the cache and coalesced waiters still get it — so a write
    failure flips ``broken`` and later chunks are silently dropped.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self.broken = False
        self.chunks = 0

    async def send(self, chunk: dict) -> None:
        if self.broken:
            return
        try:
            self._writer.write(protocol.encode_stream_chunk(chunk))
            await self._writer.drain()
            self.chunks += 1
        except (ConnectionError, OSError):
            self.broken = True


@dataclass
class _ServedCompletion:
    result: SynthesisResult
    cache_hit: bool
    coalesced: bool
    reranked: bool = False


@dataclass
class _ResolvedCompletion:
    """A validated completion request bound to its scene and cache key."""

    scene: RegisteredScene
    prepared: PreparedScene
    goal: Type
    variant: str
    policy: object
    config: object
    deadline_ms: Optional[int]
    key: object


class AsyncCompletionServer:
    """HTTP/JSON front end over one :class:`CompletionEngine`."""

    def __init__(self, engine: Optional[CompletionEngine] = None,
                 config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        # The engine's scene LRU must cover every registered scene plus
        # the one being prepared (engine.prepare inserts *before* the
        # registry evicts), or prepared state the registry still serves
        # gets dropped out from under it.
        scene_capacity = self.config.max_scenes + 1
        self.engine = engine or CompletionEngine(
            result_entries=2048,
            scene_entries=max(scene_capacity, 16),
            ranking=(RankingPipeline.standard() if self.config.rerank
                     else RankingPipeline.empty()))
        if self.engine.scenes.max_entries < scene_capacity:
            self.engine.scenes.max_entries = scene_capacity
        self.metrics = ServerMetrics(self.config.latency_window)
        # Type-shedding on eviction is deferred to the executor (see
        # _scene_evicted) so a large intern-table trim never runs on the
        # event loop.
        self.registry = SceneRegistry(
            self.engine, max_scenes=self.config.max_scenes,
            on_evict=self._scene_evicted, on_release=self._scene_released,
            shed_types_on_release=False)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="synthesis")
        self._pool = self._build_pool()
        self._inflight: dict = {}          # QueryKey -> asyncio.Future
        self._inflight_scenes: dict = {}   # text digest -> asyncio.Future
        self._register_lock = asyncio.Lock()
        #: text digest -> scene id: lets repeated inline-scene completes
        #: skip the parse/prepare path (and its lock) entirely.
        self._inline_ids = LRUCache(max_entries=256)
        self._server: Optional[asyncio.base_events.Server] = None
        #: Live accepted connections, severed on close() — a closed
        #: server must look *gone* (keep-alive sockets included), the
        #: way a killed process does, not just stop listening.
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self.host = self.config.host
        self.port = self.config.port
        #: Snapshot persistence state (event-loop-only, like the caches):
        #: one save runs at a time (`_snapshot_future` is it); saves
        #: requested while one is in flight (or inside the debounce
        #: interval) set the dirty flag and are flushed by the in-flight
        #: save's completion callback or the shutdown save.
        self._snapshot_future: Optional[asyncio.Future] = None
        self._snapshot_dirty = False
        self._last_snapshot = 0.0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self.config.gc_tune:
            import gc
            gc.set_threshold(*self.config.gc_thresholds)
        if self.config.project_weights_path is not None:
            # Strict: a typo'd --project-weights path should fail the
            # serve command, not silently rank on the global table.
            self.engine.set_project_weights(
                ProjectWeightTables.load(self.config.project_weights_path))
        if self.config.snapshot_path is not None:
            # Start warm: restore whatever the previous incarnation (or a
            # router-managed predecessor) persisted.  Forgiving — a
            # missing or corrupt snapshot just starts cold.  Tables
            # loaded above win over any riding in the snapshot.
            self.metrics.snapshot_restored = self.engine.restore_results(
                self.config.snapshot_path)
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conn_writers):
            writer.close()                  # sever idle keep-alive sockets
        if self.config.snapshot_path is not None:
            # Drain any in-flight executor save first: cancel_futures
            # below cannot stop an already-running write, and a stale
            # save finishing *after* the final flush would os.replace the
            # freshest snapshot with an older one.  The serving socket is
            # closed, so no new syntheses can extend this loop.
            while self._snapshot_future is not None:
                future = self._snapshot_future
                try:
                    await future
                except Exception:           # noqa: BLE001 — shutdown path
                    pass
                if future is self._snapshot_future:
                    break                   # callback did not reschedule
            if self._snapshot_dirty:
                # Final flush; failure must not block shutdown.
                try:
                    self._save_snapshot()
                    self.metrics.snapshots_saved += 1
                    self._snapshot_dirty = False
                except Exception:           # noqa: BLE001 — shutdown path
                    pass
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- snapshot persistence ------------------------------------------------

    def _save_snapshot(self) -> int:
        """Write the result cache to the configured snapshot file.

        Synchronous form for single-threaded callers (startup, shutdown);
        the serving path goes through :meth:`_maybe_snapshot`, which
        splits the cache walk (event loop) from the disk write (executor).
        """
        assert self.config.snapshot_path is not None
        return self.engine.snapshot_results(self.config.snapshot_path)

    def _maybe_snapshot(self) -> None:
        """Schedule a debounced snapshot save off the event loop.

        Called after each synthesis.  The cache is walked *here*, on the
        event loop (iterating the live LRU from an executor thread would
        race `get`-promotes), and only the pickling/disk write runs on
        the executor.  At most one save runs at a time; requests arriving
        during a save (or within ``snapshot_interval`` of the last one)
        mark the cache dirty and ride the next save — so a burst of
        syntheses costs one file write, and the shutdown path flushes
        whatever is still dirty.
        """
        if self.config.snapshot_path is None:
            return
        self._snapshot_dirty = True
        if self._snapshot_future is not None:
            return
        if (time.monotonic() - self._last_snapshot
                < self.config.snapshot_interval):
            return                          # close() flushes the residue
        loop = asyncio.get_running_loop()
        entries = self.engine.collect_results()
        try:
            future = loop.run_in_executor(self._executor,
                                          self.engine.write_snapshot,
                                          self.config.snapshot_path,
                                          entries,
                                          self.engine.project_weights_doc())
        except RuntimeError:
            return                          # executor already shut down
        self._snapshot_future = future
        self._snapshot_dirty = False

        def _done(done_future: asyncio.Future) -> None:
            self._snapshot_future = None
            self._last_snapshot = time.monotonic()
            if done_future.cancelled():
                self._snapshot_dirty = True
                return
            if done_future.exception() is None:
                self.metrics.snapshots_saved += 1
                if self._snapshot_dirty:
                    self._maybe_snapshot()
            else:
                self._snapshot_dirty = True
                self.metrics.record_error("snapshot")

        future.add_done_callback(_done)

    def _build_pool(self):
        """The synthesis process pool, or ``None`` (threads only).

        Pool construction can fail outright in restricted sandboxes (no
        semaphores, no fork); parallelism is an optimisation, never a
        requirement, so failure degrades to the thread executor.
        """
        if self.config.workers <= 1:
            return None
        try:
            from concurrent.futures import ProcessPoolExecutor

            return ProcessPoolExecutor(max_workers=self.config.workers)
        except (ImportError, OSError, PermissionError):
            return None

    @staticmethod
    def _gc_settle() -> None:
        """Collect garbage, then freeze survivors (executor-side).

        Everything alive right after a scene prepare — the environment,
        its succinct signature, interned types, candidate memos — is
        long-lived by construction; freezing moves it to the permanent
        generation so no future collection ever traverses it.  Safe to
        run repeatedly: freeze is cumulative, and unfreezing never
        happens in a serving process (eviction replaces references, and
        frozen garbage is reclaimed by ``gc.unfreeze()``-free refcounting
        for the non-cyclic bulk of it).

        The deliberate trade-off behind the opt-in flag: the freeze also
        sweeps in whatever request-handling objects happen to be alive
        at that instant, and *cyclic* frozen garbage (dropped scenes'
        back-references, asyncio error-path cycles) is never reclaimed —
        memory is exchanged for the elimination of gen-2 pause noise,
        which is the right deal for a latency-serving process and the
        wrong one for anything long-lived with heavy scene churn and no
        restarts.
        """
        import gc
        gc.collect()
        gc.freeze()

    def _scene_evicted(self, scene: RegisteredScene) -> None:
        self.metrics.scenes_evicted += 1
        self._shed_types_async()
        # The purge shrank the result cache; without a re-save a restart
        # would resurrect the dropped entries from the stale snapshot.
        self._maybe_snapshot()

    def _scene_released(self, scene: RegisteredScene) -> None:
        # Client-requested release: counted apart from LRU evictions so
        # `/v1/stats` keeps capacity pressure and tenant churn separable.
        self.metrics.scenes_released += 1
        self._shed_types_async()
        self._maybe_snapshot()

    def _shed_types_async(self) -> None:
        try:
            self._executor.submit(self.engine.shed_types)
        except RuntimeError:
            pass                            # executor already shut down

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        self.config.read_timeout)
                except asyncio.TimeoutError:
                    break                   # idle or half-sent: reclaim
                except _HttpError as error:
                    # Still answer over HTTP (then close): a diagnosable
                    # 400/413 beats a bare connection reset.
                    self.metrics.record_error("bad_request")
                    writer.write(_http_response(
                        error.status,
                        protocol.error_payload("bad_request", str(error)),
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                stream_payload = _stream_request_payload(request)
                if stream_payload is not None:
                    await self._handle_stream(stream_payload, writer)
                    break               # EOF-framed body: connection is done
                status, payload = await self._dispatch(request)
                writer.write(_http_response(status, payload,
                                            request.keep_alive))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            pass                            # torn connection
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass                        # teardown race during close()

    async def _read_request(self,
                            reader: asyncio.StreamReader
                            ) -> Optional[_HttpRequest]:
        return await read_http_request(reader)

    # -- routing -------------------------------------------------------------

    #: The served surface; anything else is counted under one bucket so a
    #: path-scanning client cannot grow the metrics counter without bound.
    KNOWN_PATHS = ("/healthz", "/v1/stats", "/v1/register-scene",
                   "/v1/complete", "/v1/complete-batch",
                   "/v1/release-scene", "/v1/edit-scene")

    async def _dispatch(self, request: _HttpRequest) -> tuple[int, dict]:
        route = (request.method, request.path)
        # Count only the served surface (path AND method): both tokens are
        # client-chosen, so anything else buckets under "other" to keep
        # the counter bounded.
        if request.path in self.KNOWN_PATHS and request.method in ("GET",
                                                                   "POST"):
            self.metrics.requests[f"{request.method} {request.path}"] += 1
        else:
            self.metrics.requests["other"] += 1
        try:
            if route == ("GET", "/healthz"):
                return 200, self._healthz_payload()
            if route == ("GET", "/v1/stats"):
                return 200, self._stats_payload()
            if route == ("POST", "/v1/register-scene"):
                return 200, await self._handle_register(
                    protocol.decode_body(request.body))
            if route == ("POST", "/v1/complete"):
                return 200, await self._handle_complete(
                    protocol.decode_body(request.body))
            if route == ("POST", "/v1/complete-batch"):
                return 200, await self._handle_batch(
                    protocol.decode_body(request.body))
            if route == ("POST", "/v1/release-scene"):
                return 200, self._handle_release(
                    protocol.decode_body(request.body))
            if route == ("POST", "/v1/edit-scene"):
                return 200, await self._handle_edit(
                    protocol.decode_body(request.body))
            if request.path in self.KNOWN_PATHS:
                self.metrics.record_error("bad_request")
                return 405, protocol.error_payload(
                    "bad_request",
                    f"method {request.method} not allowed on {request.path}")
            raise ProtocolError(f"unknown path {request.path!r}",
                                code="not_found")
        except ProtocolError as error:
            self.metrics.record_error(error.code)
            return error.status, protocol.error_payload(error.code,
                                                        str(error))
        except ReproError as error:
            self.metrics.record_error("bad_request")
            return 400, protocol.error_payload("bad_request", str(error))
        except Exception as error:          # noqa: BLE001 — serving boundary
            self.metrics.record_error("internal")
            return 500, protocol.error_payload(
                "internal", f"{type(error).__name__}: {error}")

    # -- endpoint: register-scene -------------------------------------------

    async def register_scene_text(self, text: str,
                                  name: Optional[str] = None
                                  ) -> tuple[RegisteredScene, bool]:
        """Register ``.ins`` text; returns ``(scene, already_registered)``.

        Public so the CLI can preload scenes through the exact serving
        path.  Registration is CPU work (parse + prepare), so it is
        admission-controlled like synthesis: beyond ``max_pending`` queued
        jobs it answers 429 instead of queueing without bound.  Known text
        (by digest) short-circuits to the registered scene without touching
        the executor or the lock — repeated inline-scene completes are a
        dict hit.  The lock serialises engine scene-table mutation
        (prepare on the executor vs. release on eviction).
        """
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        known_id = self._inline_ids.get(digest)
        if known_id is not None and known_id in self.registry:
            return self.registry.get(known_id), True

        # Single-flight per digest, like synthesis: a storm of identical
        # registrations costs one parse+prepare and one admission slot.
        inflight = self._inflight_scenes.get(digest)
        if inflight is not None:
            scene = await asyncio.shield(inflight)
            return scene, True

        self._admit_or_reject()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight_scenes[digest] = future
        self.metrics.enter_queue()
        try:
            async with self._register_lock:
                scene = await loop.run_in_executor(
                    self._executor, build_scene, self.engine, text, name)
                scene, already = self.registry.adopt(scene)
        except BaseException as error:
            if isinstance(error, asyncio.CancelledError):
                future.set_exception(ProtocolError(
                    "registration cancelled (server shutting down)",
                    code="internal"))
            else:
                future.set_exception(error)
            future.exception()              # mark retrieved for no-waiter case
            raise
        else:
            future.set_result(scene)
        finally:
            self.metrics.leave_queue()
            self._inflight_scenes.pop(digest, None)
        if not already:
            self.metrics.scenes_registered += 1
            if self.config.gc_tune:
                # Settle the freshly prepared scene into the permanent
                # generation off the event loop: one full collection now
                # buys gen-2-pause-free serving later.
                try:
                    self._executor.submit(self._gc_settle)
                except RuntimeError:
                    pass                    # executor already shut down
        self._inline_ids.put(digest, scene.scene_id)
        return scene, already

    async def _handle_register(self, payload) -> dict:
        request = RegisterSceneRequest.from_payload(payload)
        scene, already = await self.register_scene_text(request.text,
                                                        request.name)
        return protocol.ok_payload(
            scene_id=scene.scene_id,
            name=scene.name,
            declarations=scene.declarations,
            fingerprint=scene.prepared.fingerprint,
            goal=str(scene.prepared.goal) if scene.prepared.goal else None,
            cached=already,
        )

    # -- endpoint: release-scene ---------------------------------------------

    def _handle_release(self, payload) -> dict:
        """Explicitly drop one registered scene (idempotent).

        Release work (result purge, arena retirement) is dict-sized and
        runs inline; the potentially large intern-table shed is deferred
        to the executor by the registry callback, exactly like eviction.
        """
        request = ReleaseSceneRequest.from_payload(payload)
        released = self.registry.release(request.scene_id)
        return protocol.ok_payload(scene_id=request.scene_id,
                                   released=released)

    # -- endpoint: edit-scene ------------------------------------------------

    async def _handle_edit(self, payload) -> dict:
        """Apply declaration deltas to a registered scene.

        The delta work (line parsing, environment rebuild, incremental
        re-prepare) is CPU-bound, so it runs on the executor under the
        registration lock — same admission and serialisation discipline
        as ``register-scene``.  The source scene stays registered (its
        results are warm and the editor may undo back to it); capacity
        pressure retires it through the ordinary LRU.  The response
        carries the edited scene's canonical serialized ``text`` so a
        router can journal the edit as a plain registration.
        """
        request = EditSceneRequest.from_payload(payload)
        scene = self.registry.get(request.scene_id)
        self._admit_or_reject()
        loop = asyncio.get_running_loop()
        self.metrics.enter_queue()
        try:
            async with self._register_lock:
                edited, text, outcome = await loop.run_in_executor(
                    self._executor, _apply_edit, self.engine, scene,
                    request.ops, request.name)
                edited, already = self.registry.adopt(edited)
        finally:
            self.metrics.leave_queue()
        self.metrics.scenes_edited += 1
        if outcome.reused:
            self.metrics.edits_reused += 1
        if not already:
            self.metrics.scenes_registered += 1
        # The canonical text now maps to a registered scene: let inline
        # completes (and journal replays) of that text skip re-preparing.
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        self._inline_ids.put(digest, edited.scene_id)
        return protocol.ok_payload(
            scene_id=edited.scene_id,
            previous_scene_id=scene.scene_id,
            name=edited.name,
            declarations=edited.declarations,
            fingerprint=edited.prepared.fingerprint,
            goal=(str(edited.prepared.goal)
                  if edited.prepared.goal else None),
            added=list(outcome.added),
            removed=list(outcome.removed),
            reused=outcome.reused,
            cached=already,
            text=text,
        )

    # -- endpoint: complete --------------------------------------------------

    async def _handle_complete(self, payload) -> dict:
        return await self._complete_one(CompleteRequest.from_payload(payload))

    async def _handle_batch(self, payload) -> dict:
        requests = protocol.parse_batch_payload(payload)

        async def _serve(request: CompleteRequest) -> dict:
            try:
                return await self._complete_one(request)
            except ProtocolError as error:
                self.metrics.record_error(error.code)
                return protocol.error_payload(error.code, str(error))
            except ReproError as error:
                self.metrics.record_error("bad_request")
                return protocol.error_payload("bad_request", str(error))

        results = await asyncio.gather(*(_serve(r) for r in requests))
        return protocol.ok_payload(results=list(results))

    async def _resolve_completion(self, request: CompleteRequest
                                  ) -> _ResolvedCompletion:
        """Bind a validated request to its scene, goal, policy and key.

        Shared by the batch and streaming paths so the two can never
        drift on scene resolution, deadline mapping or cache identity.
        """
        from repro.lang.parser import parse_type

        if request.scene_id is not None:
            scene = self.registry.get(request.scene_id)
        else:
            scene, _ = await self.register_scene_text(request.scene)
        prepared = scene.prepared

        goal = (parse_type(request.goal) if request.goal is not None
                else prepared.goal)
        if goal is None:
            raise ProtocolError(
                f"scene {scene.scene_id} has no goal; pass 'goal'")
        variant = request.variant or "full"
        policy = policy_for_variant(variant)
        deadline_ms = (request.deadline_ms
                       if request.deadline_ms is not None
                       else self.config.default_deadline_ms)
        # End-to-end budget: the remaining-budget hop count caps the
        # synthesis deadline (the paper's anytime search makes any
        # residue useful), and a budget that arrives already spent is
        # refused before any synthesis work is admitted.
        if request.budget_ms is not None:
            if request.budget_ms <= 0:
                raise ProtocolError(
                    "end-to-end budget spent before serving",
                    code="deadline_exceeded")
            deadline_ms = (request.budget_ms if deadline_ms is None
                           else min(deadline_ms, request.budget_ms))
        config = deadline_config(self.engine.default_config, deadline_ms)
        key = query_key(prepared.fingerprint, goal, policy, config,
                        request.n)
        return _ResolvedCompletion(scene=scene, prepared=prepared,
                                   goal=goal, variant=variant,
                                   policy=policy, config=config,
                                   deadline_ms=deadline_ms, key=key)

    async def _complete_one(self, request: CompleteRequest) -> dict:
        start = time.perf_counter()
        if self.config.inject_latency_ms:
            await asyncio.sleep(self.config.inject_latency_ms / 1000.0)
        resolved = await self._resolve_completion(request)
        served = await self._serve_key(resolved.key, resolved.prepared,
                                       resolved.goal, resolved.policy,
                                       resolved.config, request.n,
                                       priority=request.priority)
        # Re-ranking runs strictly after cache lookup: the cache (and
        # snapshot) hold base results, so one fingerprint-keyed entry
        # serves every context — a repeat query with different hints is
        # still a cache hit, just re-scored for *its* cursor.
        final, reranked = self.engine.rerank_result(
            served.result, resolved.prepared, request.context)
        resolved.scene.completions += 1
        seconds = time.perf_counter() - start
        partial = bool(final.explore_truncated
                       or final.reconstruction_truncated)
        self.metrics.record_completion(seconds, cache_hit=served.cache_hit,
                                       coalesced=served.coalesced,
                                       partial=partial)
        return protocol.completion_payload(
            scene_id=resolved.scene.scene_id, goal=resolved.goal,
            variant=resolved.variant, result=final,
            cache_hit=served.cache_hit, coalesced=served.coalesced,
            deadline_ms=resolved.deadline_ms, server_seconds=seconds,
            reranked=reranked)

    async def _serve_key(self, key, prepared: PreparedScene, goal: Type,
                         policy, config, n: Optional[int], *,
                         priority: Optional[int] = None
                         ) -> _ServedCompletion:
        """Cache -> join in-flight -> admit -> synthesize, in that order."""
        cached = self.engine.results.get(key)
        if cached is not None:
            return _ServedCompletion(cached, cache_hit=True, coalesced=False)

        inflight = self._inflight.get(key)
        if inflight is not None:
            result = await asyncio.shield(inflight)
            return _ServedCompletion(result, cache_hit=False, coalesced=True)

        self._admit_or_reject(priority)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self.metrics.enter_queue()
        synthesis_start = time.perf_counter()
        try:
            result = await self._dispatch_synthesis(loop, prepared, goal,
                                                    policy, config, n)
        except BaseException as error:
            if isinstance(error, asyncio.CancelledError):
                # Only the leader's task was cancelled (shutdown); give
                # coalesced waiters an answerable error, not cancellation.
                future.set_exception(ProtocolError(
                    "synthesis cancelled (server shutting down)",
                    code="internal"))
            else:
                future.set_exception(error)
            future.exception()              # mark retrieved for no-waiter case
            raise
        else:
            self.engine.results.put(key, result)
            self.metrics.record_synthesis(
                time.perf_counter() - synthesis_start)
            future.set_result(result)
            self._maybe_snapshot()
        finally:
            self.metrics.leave_queue()
            self._inflight.pop(key, None)
        return _ServedCompletion(result, cache_hit=False, coalesced=False)

    # -- endpoint: complete (streaming) --------------------------------------

    async def _handle_stream(self, payload: dict,
                             writer: asyncio.StreamWriter) -> None:
        """Serve one streamed completion as NDJSON chunks.

        Failures before the head is written (validation, unknown scene,
        admission) are ordinary HTTP error responses; once the head is on
        the wire the HTTP status is gone, so later failures become a
        terminal ``error`` chunk.  Chunks are emitted in rank order —
        snippet chunks as reconstruction produces them, then one ``done``
        chunk carrying the full batch payload.
        """
        self.metrics.requests["POST /v1/complete"] += 1
        start = time.perf_counter()
        try:
            request = CompleteRequest.from_payload(payload)
            resolved = await self._resolve_completion(request)
            # Only a leader (cache miss, nothing in flight) adds work, so
            # only it faces admission — and rejection must happen before
            # the head is written to surface as a retryable 429.
            if (self.engine.results.get(resolved.key) is None
                    and resolved.key not in self._inflight):
                self._admit_or_reject(request.priority)
        except ProtocolError as error:
            self.metrics.record_error(error.code)
            writer.write(_http_response(
                error.status, protocol.error_payload(error.code, str(error)),
                keep_alive=False))
            await writer.drain()
            return
        except ReproError as error:
            self.metrics.record_error("bad_request")
            writer.write(_http_response(
                400, protocol.error_payload("bad_request", str(error)),
                keep_alive=False))
            await writer.drain()
            return
        writer.write(_stream_head())
        wire = _StreamWire(writer)
        self.metrics.streams += 1
        try:
            try:
                served = await self._serve_stream(resolved, request.n, wire,
                                                  context=request.context)
            except ProtocolError as error:
                self.metrics.record_error(error.code)
                await wire.send(protocol.stream_error_chunk(error.code,
                                                            str(error)))
                return
            except ReproError as error:
                self.metrics.record_error("bad_request")
                await wire.send(protocol.stream_error_chunk("bad_request",
                                                            str(error)))
                return
            except Exception as error:      # noqa: BLE001 — serving boundary
                self.metrics.record_error("internal")
                await wire.send(protocol.stream_error_chunk(
                    "internal", f"{type(error).__name__}: {error}"))
                return
            resolved.scene.completions += 1
            seconds = time.perf_counter() - start
            partial = bool(served.result.explore_truncated
                           or served.result.reconstruction_truncated)
            self.metrics.record_completion(
                seconds, cache_hit=served.cache_hit,
                coalesced=served.coalesced, partial=partial)
            completion = protocol.completion_payload(
                scene_id=resolved.scene.scene_id, goal=resolved.goal,
                variant=resolved.variant, result=served.result,
                cache_hit=served.cache_hit, coalesced=served.coalesced,
                deadline_ms=resolved.deadline_ms, server_seconds=seconds,
                reranked=served.reranked)
            await wire.send(protocol.stream_done_chunk(completion))
        finally:
            self.metrics.stream_chunks += wire.chunks

    async def _serve_stream(self, resolved: _ResolvedCompletion,
                            n: Optional[int], wire: _StreamWire,
                            context: Optional[CompletionContext] = None,
                            ) -> _ServedCompletion:
        """`_serve_key` with live emission.

        Warm paths (cache hit, coalesced join) re-rank the completed base
        result for *this* request's context and replay it as chunks —
        same wire shape.  The leader path bridges the synthesis thread's
        per-snippet callback onto the loop and forwards chunks as they
        arrive — but only when the ranking chain is empty: an active
        chain means the final order isn't known until synthesis
        completes, so the leader buffers and emits the re-ranked list at
        the end (rank order and weight monotonicity hold either way).
        Either way the *base* result lands in the cache and coalesced
        waiters are resolved, exactly like the batch path.
        """
        key = resolved.key
        cached = self.engine.results.get(key)
        if cached is not None:
            final, reranked = self.engine.rerank_result(
                cached, resolved.prepared, context)
            for snippet in final.snippets:
                await wire.send(protocol.stream_snippet_chunk(snippet))
            return _ServedCompletion(final, cache_hit=True, coalesced=False,
                                     reranked=reranked)

        inflight = self._inflight.get(key)
        if inflight is not None:
            result = await asyncio.shield(inflight)
            final, reranked = self.engine.rerank_result(
                result, resolved.prepared, context)
            for snippet in final.snippets:
                await wire.send(protocol.stream_snippet_chunk(snippet))
            return _ServedCompletion(final, cache_hit=False, coalesced=True,
                                     reranked=reranked)

        # Leader: the admission check already passed in _handle_stream
        # (before the head was written); between there and here runs no
        # await, so the key is still free to claim.
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self.metrics.enter_queue()
        live = not self.engine.ranking
        queue: asyncio.Queue = asyncio.Queue()

        def _emit(snippet) -> None:
            # Runs on the synthesis thread; put_nowait must happen on the
            # loop.  call_soon_threadsafe preserves emission order.
            if live:
                loop.call_soon_threadsafe(queue.put_nowait, snippet)

        synthesis_start = time.perf_counter()
        task = loop.run_in_executor(
            self._executor, _run_synthesis_stream, resolved.prepared,
            resolved.goal, resolved.policy, resolved.config, n, _emit)
        try:
            if live:
                result = await self._pump_stream(task, queue, wire)
            else:
                result = await task
        except BaseException as error:
            if isinstance(error, asyncio.CancelledError):
                future.set_exception(ProtocolError(
                    "synthesis cancelled (server shutting down)",
                    code="internal"))
            else:
                future.set_exception(error)
            future.exception()              # mark retrieved for no-waiter case
            raise
        else:
            self.engine.results.put(key, result)
            self.metrics.record_synthesis(
                time.perf_counter() - synthesis_start)
            future.set_result(result)
            self._maybe_snapshot()
        finally:
            self.metrics.leave_queue()
            self._inflight.pop(key, None)
        if live:
            return _ServedCompletion(result, cache_hit=False,
                                     coalesced=False)
        final, reranked = self.engine.rerank_result(
            result, resolved.prepared, context)
        for snippet in final.snippets:
            await wire.send(protocol.stream_snippet_chunk(snippet))
        return _ServedCompletion(final, cache_hit=False, coalesced=False,
                                 reranked=reranked)

    async def _pump_stream(self, task, queue: asyncio.Queue,
                           wire: _StreamWire) -> SynthesisResult:
        """Forward snippets from the synthesis thread as they arrive.

        The emit callback and the executor future's completion both reach
        the loop via ``call_soon_threadsafe`` from the same thread, in
        FIFO order — so once *task* is done, every emitted snippet is
        already in the queue and the final drain loses nothing.
        """
        getter: Optional[asyncio.Future] = None
        try:
            while not task.done():
                getter = asyncio.ensure_future(queue.get())
                await asyncio.wait({getter, task},
                                   return_when=asyncio.FIRST_COMPLETED)
                if getter.done():
                    await wire.send(
                        protocol.stream_snippet_chunk(getter.result()))
                    getter = None
        finally:
            if getter is not None:
                getter.cancel()
        result = await task                 # raises the synthesis error
        while not queue.empty():
            await wire.send(
                protocol.stream_snippet_chunk(queue.get_nowait()))
        return result

    async def _dispatch_synthesis(self, loop, prepared: PreparedScene,
                                  goal: Type, policy, config,
                                  n: Optional[int]) -> SynthesisResult:
        """One pipeline run: on the process pool when configured, else on
        the thread executor.

        A broken pool (workers killed by the sandbox mid-flight) downgrades
        the server to threads permanently rather than failing requests —
        the work is pure, so rerunning it in-process is always valid.
        """
        if self._pool is not None:
            base = prepared.base_environment
            edges = tuple(prepared.subtypes.edges())
            fingerprint = base.fingerprint()
            # First try the cheap reference-only payload; a worker whose
            # scene memo misses answers WorkerSceneUnavailable and we
            # resend once with the environment attached (teaching that
            # worker the scene for every later query).
            slim = _RemoteQuery(environment=None, subtype_edges=edges,
                                goal=goal, policy=policy, config=config,
                                n=n, fingerprint=fingerprint)
            try:
                try:
                    return await loop.run_in_executor(
                        self._pool, _execute_remote, slim)
                except WorkerSceneUnavailable:
                    full = _RemoteQuery(environment=base,
                                        subtype_edges=edges, goal=goal,
                                        policy=policy, config=config,
                                        n=n, fingerprint=fingerprint)
                    return await loop.run_in_executor(
                        self._pool, _execute_remote, full)
            except BrokenProcessPool:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
                self.metrics.record_error("pool_broken")
        return await loop.run_in_executor(
            self._executor, _run_synthesis, prepared, goal, policy, config, n)

    def _admit_or_reject(self, priority: Optional[int] = None) -> None:
        """Admission control: one gauge (queue depth) bounds all CPU work.

        Two thresholds: below-normal-priority work is shed at the soft
        watermark (lowest priority first is the graceful-degradation
        contract — batch backfill yields before interactive completions
        feel anything), everyone is rejected at the hard ceiling.
        """
        if self.metrics.queue_depth >= self.config.max_pending:
            self.metrics.rejected_overload += 1
            raise ProtocolError(
                f"server overloaded: {self.metrics.queue_depth} jobs "
                f"pending (limit {self.config.max_pending}); retry later",
                code="overloaded")
        if priority is not None and priority < protocol.NORMAL_PRIORITY:
            watermark = self.config.shed_watermark * self.config.max_pending
            if self.metrics.queue_depth >= watermark:
                self.metrics.rejected_overload += 1
                self.metrics.shed_low_priority += 1
                raise ProtocolError(
                    f"server under pressure: {self.metrics.queue_depth} "
                    f"jobs pending; priority {priority} work is shed "
                    f"until the queue drains", code="overloaded")

    # -- endpoints: stats / health ------------------------------------------

    def _healthz_payload(self) -> dict:
        return protocol.ok_payload(
            status="ok", uptime_s=round(self.metrics.uptime_seconds, 3))

    def _stats_payload(self) -> dict:
        import gc

        from repro.core.space import arena_stats, simple_type_stats
        from repro.core.succinct import intern_table_stats

        stats = self.engine.cache_stats
        return protocol.ok_payload(
            server=self.metrics.snapshot(),
            executor={
                "threads": self.config.executor_workers,
                "workers": self.config.workers,
                "process_pool": self._pool is not None,
            },
            engine={
                "result_entries": len(self.engine.results),
                "result_capacity": self.engine.results.max_entries,
                "result_stats": {
                    "hits": stats.hits, "misses": stats.misses,
                    "insertions": stats.insertions,
                    "refreshes": stats.refreshes,
                    "evictions": stats.evictions,
                    "hit_rate": round(stats.hit_rate, 4),
                },
                "prepared_scenes": len(self.engine.scenes),
                "snapshot": {
                    "path": self.config.snapshot_path,
                    "restored": self.metrics.snapshot_restored,
                    "saved": self.metrics.snapshots_saved,
                },
            },
            ranking=self.engine.ranking_stats(),
            scenes=self.registry.describe(),
            core={"interned_types": intern_table_stats(),
                  "simple_types": simple_type_stats(),
                  "env_arena": arena_stats()},
            gc={
                "tuned": self.config.gc_tune,
                "thresholds": list(gc.get_threshold()),
                "counts": list(gc.get_count()),
                "frozen": gc.get_freeze_count(),
                "collections": [generation["collections"]
                                for generation in gc.get_stats()],
            },
        )


def _http_response(status: int, payload: dict, keep_alive: bool) -> bytes:
    body = protocol.encode_body(payload)
    connection = "keep-alive" if keep_alive else "close"
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body
