"""Registered scenes: the server's tenancy table.

A client uploads an ``.ins`` scene once and then completes against its
scene id.  The registry is an LRU over :class:`RegisteredScene` handles;
eviction calls :meth:`~repro.engine.CompletionEngine.release_scene`, so
dropping a scene also drops its cached results, its per-policy
synthesizers and (through the engine) sheds the global succinct-type
intern table — the whole point of bounding a long-lived multi-tenant
process.

Scene ids are content-derived (environment fingerprint + goal), so
re-registering identical text is idempotent: same id, no duplicate
prepared state, ``"cached": true`` on the wire.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.errors import ReproError
from repro.engine.cache import LRUCache
from repro.engine.engine import CompletionEngine, PreparedScene
from repro.lang.loader import load_environment_text
from repro.server.protocol import ProtocolError


class UnknownSceneError(ProtocolError):
    """A completion referenced a scene id that is not (or no longer)
    registered — possibly evicted; the client should re-register."""

    def __init__(self, scene_id: str):
        super().__init__(
            f"unknown scene id {scene_id!r} (expired or never registered; "
            "re-register the scene)", code="not_found")


def scene_id_for(prepared: PreparedScene) -> str:
    """A stable, content-derived scene id."""
    digest = hashlib.sha256()
    digest.update(prepared.fingerprint.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(str(prepared.goal).encode("utf-8"))
    return "scn_" + digest.hexdigest()[:16]


@dataclass
class RegisteredScene:
    """One registered scene: the prepared state plus serving bookkeeping."""

    scene_id: str
    name: str
    prepared: PreparedScene
    declarations: int
    registered_at: float = field(default_factory=time.time)
    completions: int = 0

    def describe(self) -> dict:
        return {
            "scene_id": self.scene_id,
            "name": self.name,
            "declarations": self.declarations,
            "fingerprint": self.prepared.fingerprint,
            "goal": str(self.prepared.goal) if self.prepared.goal else None,
            "completions": self.completions,
        }


def build_scene(engine: CompletionEngine, text: str,
                name: Optional[str] = None) -> RegisteredScene:
    """Parse + prepare one scene (the CPU-heavy half of registration).

    Pure with respect to the registry: safe to run on an executor thread
    while the event loop keeps serving (callers serialise engine.prepare
    against scene release; see the server's registration lock).  Raises
    :class:`ProtocolError` (``scene_error``) on unparsable text.
    """
    try:
        loaded = load_environment_text(text)
    except ReproError as exc:
        raise ProtocolError(f"scene failed to load: {exc}",
                            code="scene_error") from exc
    prepared = engine.prepare(loaded.environment, loaded.subtypes,
                              goal=loaded.goal, name=name or "scene")
    scene_id = scene_id_for(prepared)
    return RegisteredScene(scene_id=scene_id,
                           name=name or scene_id,
                           prepared=prepared,
                           declarations=len(loaded.environment))


class SceneRegistry:
    """LRU table of registered scenes with release-on-eviction.

    With ``shed_types_on_release=False`` the engine release skips the
    (possibly large) succinct-type shed so a serving layer can run
    :meth:`CompletionEngine.shed_types` off its event loop instead.
    """

    def __init__(self, engine: CompletionEngine, max_scenes: int = 32,
                 on_evict: Optional[Callable[[RegisteredScene], None]] = None,
                 on_release: Optional[Callable[[RegisteredScene],
                                               None]] = None,
                 shed_types_on_release: bool = True):
        self.engine = engine
        self.max_scenes = max_scenes
        self.on_evict = on_evict
        self.on_release = on_release
        self.shed_types_on_release = shed_types_on_release
        self._scenes = LRUCache(
            max_entries=max_scenes,
            on_evict=lambda _scene_id, scene: self._drop(scene,
                                                         evicted=True))
        #: Scenes with identical declarations but different goals share one
        #: prepared state (scene ids differ, environment fingerprints
        #: don't); refcounting the fingerprint makes sure engine release —
        #: which purges *all* results under that fingerprint — only fires
        #: when the last sibling goes.
        self._fingerprint_refs: dict[str, int] = {}
        #: LRU pressure drops (capacity exceeded) — never client-requested.
        self.evictions = 0
        #: Explicit :meth:`release` calls; counted apart from evictions so
        #: capacity pressure stays observable in ``/v1/stats``.
        self.releases = 0

    def adopt(self, scene: RegisteredScene) -> tuple[RegisteredScene, bool]:
        """Insert a built scene; returns ``(canonical scene, already?)``.

        Identical content maps to the same id, so re-registration promotes
        the existing entry instead of duplicating it.  When a freshly
        built scene *loses* to an existing entry (concurrent duplicate
        registration), the loser's just-prepared engine state is released
        so nothing leaks — the winner's shared state is left untouched.
        """
        existing = self._scenes.get(scene.scene_id)   # get() promotes
        if existing is not None:
            self._release_duplicate(loser=scene, winner=existing)
            return existing, True
        fingerprint = scene.prepared.fingerprint
        self._fingerprint_refs[fingerprint] = (
            self._fingerprint_refs.get(fingerprint, 0) + 1)
        self._scenes.put(scene.scene_id, scene)       # may evict via _drop
        return scene, False

    def _release_duplicate(self, loser: RegisteredScene,
                           winner: RegisteredScene) -> None:
        """Reconcile a duplicate registration that lost the adopt race.

        Identical scene ids imply identical content, so the usual case is
        the loser's :meth:`CompletionEngine.prepare` having *shared* the
        winner's state (scene-table hit) — nothing to do.  But when the
        engine's scene LRU dropped the winner's entry between the two
        builds, the loser re-prepared from scratch: a fresh environment
        with its own arena and memo state, now also occupying the engine's
        scene-table slot.  Without reconciliation that duplicate state
        lives (and is served to pool workers) until eviction — the leak.
        We restore the winner as the canonical scene-table entry and drop
        the loser's private state.  Results are purged only in the
        different-fingerprint case (hand-built scenes), because purging is
        fingerprint-wide and would nuke the winner's warm entries.
        """
        if loser.prepared is winner.prepared:
            return
        if loser.prepared.fingerprint != winner.prepared.fingerprint:
            # Not actually the same content (hand-built RegisteredScene
            # with a colliding id): the winner shares nothing with it,
            # but a *different* registered scene might — full engine
            # release (which purges fingerprint-wide) is only safe when
            # no registered scene holds a ref on the loser's fingerprint.
            if not self._fingerprint_refs.get(loser.prepared.fingerprint):
                self.engine.release_scene(
                    loser.prepared, shed_types=self.shed_types_on_release)
            return
        if loser.prepared.environment is winner.prepared.environment:
            return            # replace()-style copy sharing all heavy state
        scene_key = loser.prepared.scene_key
        if (scene_key is not None
                and self.engine.scenes.peek(scene_key) is loser.prepared):
            self.engine.scenes.put(scene_key, winner.prepared)
        loser.prepared._synthesizers.clear()
        loser.prepared.environment.release_arena()
        loser.prepared.base_environment.release_arena()

    def _drop(self, scene: RegisteredScene, *, evicted: bool) -> None:
        """Shared removal tail: refcount bookkeeping + engine release.

        ``evicted`` distinguishes LRU pressure from an explicit client
        release; the two are counted (and surfaced to callbacks)
        separately so ``/v1/stats`` never reports a requested release as
        capacity pressure.
        """
        if evicted:
            self.evictions += 1
        else:
            self.releases += 1
        fingerprint = scene.prepared.fingerprint
        remaining = self._fingerprint_refs.get(fingerprint, 1) - 1
        if remaining > 0:
            self._fingerprint_refs[fingerprint] = remaining
        else:
            self._fingerprint_refs.pop(fingerprint, None)
            self.engine.release_scene(
                scene.prepared, shed_types=self.shed_types_on_release)
        callback = self.on_evict if evicted else self.on_release
        if callback is not None:
            callback(scene)

    def get(self, scene_id: str) -> RegisteredScene:
        """The registered scene (promoted), or :class:`UnknownSceneError`."""
        scene = self._scenes.get(scene_id)
        if scene is None:
            raise UnknownSceneError(scene_id)
        # Keep the engine's scene LRU in step with serving traffic, so a
        # hot registered scene is never the engine's eviction victim.
        if scene.prepared.scene_key is not None:
            self.engine.scenes.get(scene.prepared.scene_key)
        return scene

    def release(self, scene_id: str) -> bool:
        """Explicitly drop one scene (no-op on unknown ids)."""
        scene = self._scenes.pop(scene_id)            # pop skips on_evict
        if scene is None:
            return False
        self._drop(scene, evicted=False)
        return True

    def __len__(self) -> int:
        return len(self._scenes)

    def __contains__(self, scene_id: str) -> bool:
        return scene_id in self._scenes

    def describe(self) -> dict:
        return {
            "count": len(self._scenes),
            "limit": self.max_scenes,
            "evictions": self.evictions,
            "releases": self.releases,
            "scenes": [self._scenes.peek(scene_id).describe()
                       for scene_id in self._scenes],
        }
