"""Live serving metrics: counters, gauges and latency percentiles.

Everything here is mutated from the event loop only (the server records
latencies after ``await``-ing executor work, never inside it), so plain
ints and deques suffice — no locks.  ``/v1/stats`` serves
:meth:`ServerMetrics.snapshot` verbatim.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Optional


class LatencyWindow:
    """Percentiles over the most recent *window* samples.

    A bounded ring keeps the snapshot O(window log window) and makes the
    percentiles reflect *current* behaviour rather than the whole process
    lifetime (a cold start would otherwise poison p95 forever).
    """

    def __init__(self, window: int = 2048):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1
        self.total += seconds

    def percentile(self, fraction: float) -> Optional[float]:
        """The *fraction*-quantile (0..1) of the current window, or None."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(int(fraction * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def snapshot(self) -> dict:
        def _ms(seconds: Optional[float]) -> Optional[float]:
            return None if seconds is None else round(seconds * 1000, 3)

        # Like the percentiles, max covers the current window only — a
        # one-off cold-start spike ages out instead of poisoning the
        # gauge forever.  count/mean stay lifetime.
        mean = self.total / self.count if self.count else None
        return {
            "count": self.count,
            "p50_ms": _ms(self.percentile(0.50)),
            "p95_ms": _ms(self.percentile(0.95)),
            "max_ms": _ms(max(self._samples) if self._samples else None),
            "mean_ms": _ms(mean),
        }


class ServerMetrics:
    """Counters for one :class:`~repro.server.server.AsyncCompletionServer`."""

    def __init__(self, latency_window: int = 2048):
        self.started = time.time()
        self._started_monotonic = time.monotonic()
        self.requests = Counter()          # per endpoint
        self.completions = 0               # queries answered ok
        self.cache_hits = 0                # served from the result cache
        self.coalesced = 0                 # joined an in-flight synthesis
        self.synthesized = 0               # ran the pipeline
        self.rejected_overload = 0         # 429s from admission control
        self.shed_low_priority = 0         # of which: soft-watermark sheds
        self.deadline_partial = 0          # anytime results (truncated)
        self.errors = Counter()            # per error code
        self.scenes_registered = 0
        self.scenes_evicted = 0            # LRU pressure only
        self.scenes_released = 0           # client-requested releases
        self.scenes_edited = 0             # /v1/edit-scene deltas applied
        self.edits_reused = 0              # edits that re-hit prepared state
        self.streams = 0                   # streamed completions served
        self.stream_chunks = 0             # NDJSON chunks written to streams
        self.snapshot_restored = 0         # entries restored at startup
        self.snapshots_saved = 0           # snapshot files written
        self.queue_depth = 0               # pending/running syntheses now
        self.queue_peak = 0
        #: "complete" = every served query; "warm" = hits + coalesced;
        #: "synthesis" = executor wall-clock of actual pipeline runs.
        self.latency = {
            "complete": LatencyWindow(latency_window),
            "warm": LatencyWindow(latency_window),
            "synthesis": LatencyWindow(latency_window),
        }

    def enter_queue(self) -> None:
        self.queue_depth += 1
        if self.queue_depth > self.queue_peak:
            self.queue_peak = self.queue_depth

    def leave_queue(self) -> None:
        self.queue_depth -= 1

    def record_completion(self, seconds: float, *, cache_hit: bool,
                          coalesced: bool, partial: bool) -> None:
        self.completions += 1
        self.latency["complete"].record(seconds)
        if cache_hit:
            self.cache_hits += 1
        if coalesced:
            self.coalesced += 1
        if cache_hit or coalesced:
            self.latency["warm"].record(seconds)
        if partial:
            self.deadline_partial += 1

    def record_synthesis(self, seconds: float) -> None:
        self.synthesized += 1
        self.latency["synthesis"].record(seconds)

    def record_error(self, code: str) -> None:
        self.errors[code] += 1

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    def snapshot(self) -> dict:
        return {
            "uptime_s": round(self.uptime_seconds, 3),
            "requests": dict(self.requests),
            "completions": self.completions,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "synthesized": self.synthesized,
            "rejected_overload": self.rejected_overload,
            "shed_low_priority": self.shed_low_priority,
            "deadline_partial": self.deadline_partial,
            # Budget fast-fails, pulled out of the error map so dashboards
            # (and the router's cross-shard sum) can tell "shed on time"
            # from "failed" without string-keyed digging.
            "deadline_exceeded": self.errors["deadline_exceeded"],
            "errors": dict(self.errors),
            "scenes_registered": self.scenes_registered,
            "scenes_evicted": self.scenes_evicted,
            "scenes_released": self.scenes_released,
            "scenes_edited": self.scenes_edited,
            "edits_reused": self.edits_reused,
            "streams": self.streams,
            "stream_chunks": self.stream_chunks,
            "queue": {"depth": self.queue_depth, "peak": self.queue_peak},
            "latency": {name: window.snapshot()
                        for name, window in self.latency.items()},
        }
