"""Async client for the completion server.

A minimal stdlib HTTP/1.1 client over ``asyncio.open_connection`` with a
small keep-alive connection pool, so ``asyncio.gather`` over many
:meth:`AsyncCompletionClient.complete` calls genuinely runs concurrently
(one socket per in-flight request, reused afterwards).

Server-side failures surface as typed exceptions keyed by the protocol's
error codes: :class:`OverloadedError` (admission control said 429 — back
off and retry), :class:`SceneNotFoundError` (the scene id was evicted —
re-register), :class:`ServerError` (everything else), and
:class:`ClientConnectionError` for transport failures.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Any, Callable, Optional, Sequence

import hashlib

from repro.core.errors import ReproError
from repro.core.ranking import CompletionContext
from repro.server.protocol import (PROTOCOL_VERSION, AdminBackendsRequest,
                                   CompleteRequest, EditSceneRequest,
                                   RegisterSceneRequest, ReleaseSceneRequest,
                                   encode_body)


def _as_context(context) -> Optional[CompletionContext]:
    """Accept either a :class:`CompletionContext` or its dict wire form."""
    if context is None or isinstance(context, CompletionContext):
        return context
    return CompletionContext.from_payload(context)

#: Process-wide RNG for backoff jitter, seeded from OS entropy: every
#: client process draws different delays, which is the whole point.
_JITTER_RNG = random.Random()


def jittered_backoff_s(attempt: int, *, base: float = 0.05,
                       cap: float = 2.0,
                       rng: Optional[random.Random] = None) -> float:
    """Full-jitter exponential backoff delay for retry *attempt* (0-based).

    ``uniform(0, min(cap, base * 2**attempt))`` — the AWS "full jitter"
    scheme.  A *deterministic* backoff makes every client that was
    rejected in the same instant retry in the same instant: the
    coordinated wave re-overloads a respawning backend in lockstep,
    forever.  Spreading each delay uniformly over the exponential window
    decorrelates the wave while keeping the same mean pressure.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    window = min(cap, base * (2 ** attempt))
    return (rng or _JITTER_RNG).uniform(0.0, window)


class ServerError(ReproError):
    """The server answered with an error envelope."""

    def __init__(self, code: str, message: str, status: int):
        self.code = code
        self.status = status
        self.message = message              # unprefixed, for passthrough
        super().__init__(f"[{code}] {message}")


class OverloadedError(ServerError):
    """Admission control rejected the request (429); retry with backoff."""


class SceneNotFoundError(ServerError):
    """The scene id is unknown or was evicted; re-register the scene."""


class DeadlineExceededError(ServerError):
    """The end-to-end budget was spent before the request could be served.

    A deliberate fast-fail, not a transport flake: the server (or router)
    refused to start work it could not finish inside the client's
    ``budget_ms``.  Never retried — the budget that made the first
    attempt fail is even more spent now.
    """


class ClientConnectionError(ReproError):
    """The server could not be reached or the connection broke mid-call."""


def _error_for(payload: dict, status: int) -> ServerError:
    error = payload.get("error") or {}
    code = error.get("code", "internal")
    message = error.get("message", "unknown server error")
    if code == "overloaded":
        return OverloadedError(code, message, status)
    if code == "not_found" and "scene id" in message:
        return SceneNotFoundError(code, message, status)
    if code == "deadline_exceeded":
        return DeadlineExceededError(code, message, status)
    return ServerError(code, message, status)


class AsyncCompletionClient:
    """Talks the server's JSON protocol; safe for concurrent use."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8777, *,
                 timeout: float = 60.0, max_idle_connections: int = 32,
                 overload_retries: int = 0,
                 backoff_base_s: float = 0.05, backoff_cap_s: float = 2.0,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], Any] = asyncio.sleep):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._idle: list[tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []
        self._max_idle = max_idle_connections
        self._closed = False
        #: 429 handling: with ``overload_retries`` > 0 an
        #: :class:`OverloadedError` is retried up to that many times
        #: behind :func:`jittered_backoff_s` (full-jitter exponential
        #: over ``backoff_base_s``..``backoff_cap_s``).  Admission
        #: rejection happens before any work, so the retry is always
        #: safe.  ``rng`` and ``sleep`` are injectable for deterministic
        #: tests.
        self.overload_retries = overload_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = rng
        self._sleep = sleep
        #: text digest -> scene id, for :meth:`complete_text`'s
        #: register-once / re-register-on-eviction discipline.
        self._scene_ids: dict[str, str] = {}

    async def __aenter__(self) -> "AsyncCompletionClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        self._closed = True
        idle, self._idle = self._idle, []
        for _reader, writer in idle:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- transport -----------------------------------------------------------

    async def _connection(self) -> tuple[asyncio.StreamReader,
                                         asyncio.StreamWriter, bool]:
        """An idle pooled connection (pooled=True) or a fresh one."""
        if self._idle:
            reader, writer = self._idle.pop()
            return reader, writer, True
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            raise ClientConnectionError(
                f"cannot connect to {self.host}:{self.port}: {exc}") from exc
        return reader, writer, False

    async def _request(self, method: str, path: str,
                       payload: Optional[dict] = None) -> dict:
        attempt = 0
        while True:
            try:
                return await self._request_once(method, path, payload)
            except OverloadedError:
                if attempt >= self.overload_retries:
                    raise
                await self._sleep(jittered_backoff_s(
                    attempt, base=self.backoff_base_s,
                    cap=self.backoff_cap_s, rng=self._rng))
                attempt += 1

    async def _request_once(self, method: str, path: str,
                            payload: Optional[dict] = None) -> dict:
        if self._closed:
            raise ClientConnectionError("client is closed")
        # Requests carry the protocol version (the server rejects a
        # mismatch with ``unsupported_version`` instead of silently
        # reinterpreting fields under new semantics).
        if payload is not None:
            payload = {"v": PROTOCOL_VERSION, **payload}
        body = encode_body(payload) if payload is not None else b""
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n"
                f"\r\n")
        message = head.encode("latin-1") + body

        while True:
            reader, writer, pooled = await self._connection()
            reuse = False
            try:
                writer.write(message)
                await writer.drain()
                status, headers, response = await asyncio.wait_for(
                    self._read_response(reader), self.timeout)
                reuse = (headers.get("connection", "keep-alive").lower()
                         != "close")
            except (ConnectionError, OSError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError) as exc:
                writer.close()
                if pooled and not isinstance(exc, asyncio.TimeoutError):
                    # A pooled keep-alive socket can be stale (server
                    # restarted, idle timeout); retry once on a fresh
                    # connection before giving up.
                    continue
                raise ClientConnectionError(
                    f"request {method} {path} failed: {exc}") from exc
            finally:
                if reuse and not self._closed and \
                        len(self._idle) < self._max_idle:
                    self._idle.append((reader, writer))
                else:
                    # Not poolable (close-marked, pool full, or client
                    # closed): always close, never leak the socket.
                    writer.close()
            break

        try:
            decoded = json.loads(response.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ClientConnectionError(
                f"undecodable response body from {path}: {exc}") from exc
        if not isinstance(decoded, dict) or decoded.get("v") is None:
            raise ClientConnectionError(
                f"response from {path} is not a protocol envelope")
        if decoded["v"] != PROTOCOL_VERSION:
            raise ServerError(
                "internal",
                f"protocol version mismatch: server v{decoded['v']}, "
                f"client v{PROTOCOL_VERSION}", status)
        if not decoded.get("ok", False):
            raise _error_for(decoded, status)
        return decoded

    @staticmethod
    async def _read_response_head(reader: asyncio.StreamReader
                                  ) -> tuple[int, dict]:
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed status line {line!r}")
        status = int(parts[1])
        headers: dict = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    @classmethod
    async def _read_response(cls, reader: asyncio.StreamReader
                             ) -> tuple[int, dict, bytes]:
        status, headers = await cls._read_response_head(reader)
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return status, headers, body

    # -- protocol calls ------------------------------------------------------

    async def healthz(self) -> dict:
        return await self._request("GET", "/healthz")

    async def backends(self) -> list:
        """The topology's backend descriptions from ``/healthz``.

        Empty for a plain single server (no ``backends`` section); a
        router lists every shard with address, health, restart count and
        — when supervised — pid.  The load/chaos driver's view of the
        topology comes entirely through this call.
        """
        health = await self.healthz()
        backends = health.get("backends")
        return list(backends) if isinstance(backends, list) else []

    async def stats(self) -> dict:
        return await self._request("GET", "/v1/stats")

    async def register_scene(self, text: str,
                             name: Optional[str] = None) -> dict:
        request = RegisterSceneRequest(text=text, name=name)
        return await self._request("POST", "/v1/register-scene",
                                   request.to_payload())

    async def complete(self, scene_id: Optional[str] = None, *,
                       scene: Optional[str] = None,
                       goal: Optional[str] = None,
                       variant: Optional[str] = None,
                       n: Optional[int] = None,
                       deadline_ms: Optional[int] = None,
                       budget_ms: Optional[int] = None,
                       priority: Optional[int] = None,
                       context: Optional[CompletionContext | dict] = None,
                       ) -> dict:
        # A deadline doubles as the absolute end-to-end budget: the first
        # hop starts the clock, every later hop receives whatever is left.
        # Callers that want the anytime budget without the fast-fail
        # contract can pass budget_ms explicitly (or not at all).
        if budget_ms is None:
            budget_ms = deadline_ms
        request = CompleteRequest(scene_id=scene_id, scene=scene, goal=goal,
                                  variant=variant, n=n,
                                  deadline_ms=deadline_ms,
                                  budget_ms=budget_ms,
                                  priority=priority,
                                  context=_as_context(context))
        return await self._request("POST", "/v1/complete",
                                   request.to_payload())

    async def admin_backends(self) -> dict:
        """The router's live backend roster (``GET /v1/admin/backends``)."""
        return await self._request("GET", "/v1/admin/backends")

    async def admin_backend(self, action: str, *,
                            backend_id: Optional[str] = None,
                            address: Optional[str] = None) -> dict:
        """Live elasticity: ``add`` / ``drain`` / ``remove`` a backend."""
        request = AdminBackendsRequest(action=action, backend_id=backend_id,
                                       address=address)
        return await self._request("POST", "/v1/admin/backends",
                                   request.to_payload())

    async def release_scene(self, scene_id: str) -> dict:
        """Explicitly drop a registered scene (idempotent server-side)."""
        request = ReleaseSceneRequest(scene_id=scene_id)
        return await self._request("POST", "/v1/release-scene",
                                   request.to_payload())

    async def edit_scene(self, scene_id: str, ops: Sequence[dict], *,
                         name: Optional[str] = None) -> dict:
        """Apply declaration deltas; returns the edited scene's identity.

        *ops* is the wire form: ``{"op": "add", "decl": <line>}`` /
        ``{"op": "remove", "name": <name>}``, applied in order.  The
        response names the new content-derived ``scene_id`` (complete
        against it from now on) and carries the canonical serialized
        ``text`` of the edited scene.
        """
        request = EditSceneRequest(scene_id=scene_id,
                                   ops=tuple(dict(op) for op in ops),
                                   name=name)
        return await self._request("POST", "/v1/edit-scene",
                                   request.to_payload())

    async def complete_stream(self, scene_id: Optional[str] = None, *,
                              scene: Optional[str] = None,
                              goal: Optional[str] = None,
                              variant: Optional[str] = None,
                              n: Optional[int] = None,
                              deadline_ms: Optional[int] = None,
                              context: Optional[CompletionContext
                                                | dict] = None):
        """One completion as an async stream of NDJSON chunk dicts.

        Yields chunks in wire order: ``snippet`` chunks in rank order as
        the server emits them, then the terminal ``done`` chunk carrying
        the full batch-mode payload (so collected snippets can be checked
        against the final answer).  A mid-stream ``error`` chunk raises
        the matching typed exception.  Streams ride a dedicated
        connection, never the keep-alive pool — the server frames the
        body by closing the socket.
        """
        if self._closed:
            raise ClientConnectionError("client is closed")
        request = CompleteRequest(scene_id=scene_id, scene=scene, goal=goal,
                                  variant=variant, n=n,
                                  deadline_ms=deadline_ms,
                                  budget_ms=deadline_ms, stream=True,
                                  context=_as_context(context))
        body = encode_body({"v": PROTOCOL_VERSION, **request.to_payload()})
        head = (f"POST /v1/complete HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n"
                f"\r\n")
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            raise ClientConnectionError(
                f"cannot connect to {self.host}:{self.port}: {exc}") from exc
        try:
            try:
                writer.write(head.encode("latin-1") + body)
                await writer.drain()
                status, headers = await asyncio.wait_for(
                    self._read_response_head(reader), self.timeout)
                if headers.get("content-type", "").startswith(
                        "application/json"):
                    # Pre-stream failure: an ordinary error envelope.
                    length = int(headers.get("content-length", "0") or "0")
                    raw = (await asyncio.wait_for(
                        reader.readexactly(length), self.timeout)
                        if length else b"")
                    decoded = json.loads(raw.decode("utf-8")) if raw else {}
                    raise _error_for(decoded, status)
                while True:
                    line = await asyncio.wait_for(reader.readline(),
                                                  self.timeout)
                    if not line:
                        break               # EOF ends the stream
                    if not line.strip():
                        continue
                    try:
                        chunk = json.loads(line.decode("utf-8"))
                    except (UnicodeDecodeError,
                            json.JSONDecodeError) as exc:
                        raise ClientConnectionError(
                            f"undecodable stream chunk "
                            f"{line[:80]!r}: {exc}") from exc
                    if not isinstance(chunk, dict) or \
                            chunk.get("v") != PROTOCOL_VERSION:
                        raise ServerError(
                            "internal",
                            f"protocol version mismatch on stream chunk: "
                            f"{chunk!r:.80}", status)
                    if chunk.get("chunk") == "error":
                        raise _error_for(chunk, status)
                    yield chunk
                    if chunk.get("chunk") == "done":
                        break
            except (ConnectionError, OSError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError) as exc:
                raise ClientConnectionError(
                    f"stream POST /v1/complete failed: {exc}") from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def complete_text(self, text: str, *,
                            name: Optional[str] = None,
                            goal: Optional[str] = None,
                            variant: Optional[str] = None,
                            n: Optional[int] = None,
                            deadline_ms: Optional[int] = None,
                            context: Optional[CompletionContext
                                              | dict] = None) -> dict:
        """Complete against scene *text*, registering it as needed.

        The retry-on-unknown-scene helper: the scene is registered once
        (the id memoised per text digest), and a
        :class:`SceneNotFoundError` — the server evicted or restarted —
        transparently re-registers and retries, so callers never handle
        scene lifecycle themselves.  Registration is content-derived and
        therefore idempotent; one retry is always sufficient.
        """
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        scene_id = self._scene_ids.get(digest)
        context = _as_context(context)
        if scene_id is None:
            registered = await self.register_scene(text, name=name)
            scene_id = registered["scene_id"]
            self._scene_ids[digest] = scene_id
        try:
            return await self.complete(scene_id, goal=goal, variant=variant,
                                       n=n, deadline_ms=deadline_ms,
                                       context=context)
        except SceneNotFoundError:
            registered = await self.register_scene(text, name=name)
            self._scene_ids[digest] = registered["scene_id"]
            return await self.complete(registered["scene_id"], goal=goal,
                                       variant=variant, n=n,
                                       deadline_ms=deadline_ms,
                                       context=context)

    async def complete_batch(self,
                             queries: Sequence[CompleteRequest | dict]
                             ) -> list[dict]:
        payload = {"queries": [
            q.to_payload() if isinstance(q, CompleteRequest) else dict(q)
            for q in queries]}
        response = await self._request("POST", "/v1/complete-batch", payload)
        return list(response["results"])


async def wait_until_healthy(client: AsyncCompletionClient,
                             timeout: float = 10.0,
                             interval: float = 0.05) -> dict:
    """Poll ``/healthz`` until the server answers (startup helper)."""
    deadline = asyncio.get_running_loop().time() + timeout
    last: Any = None
    while asyncio.get_running_loop().time() < deadline:
        try:
            return await client.healthz()
        except ClientConnectionError as exc:
            last = exc
            await asyncio.sleep(interval)
    raise ClientConnectionError(
        f"server at {client.host}:{client.port} never became healthy "
        f"within {timeout}s: {last}")
