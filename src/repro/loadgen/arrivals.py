"""Popularity and arrival-process samplers for workload traces.

Everything here is driven by an explicit :class:`random.Random` so a
trace generated from seed ``s`` is byte-identical across runs and
machines — the determinism the trace regression test asserts.

* :class:`ZipfSampler` — scene popularity.  The corpus calibration
  (:mod:`repro.corpus.synthetic`) already establishes that API usage is
  Zipf-shaped; completion traffic against *scenes* follows the same law
  (a handful of hot files absorb most keystrokes, a long tail of cold
  ones trickles).
* :func:`poisson_arrivals` — open-loop steady traffic: exponential
  inter-arrival gaps at a fixed rate, the standard model for requests
  from many independent users.
* :func:`bursty_arrivals` — an on/off modulated Poisson process: each
  period opens with a high-rate burst window and relaxes to the base
  rate, which is what editor traffic looks like when a build finishes
  or a popular file is reopened across an organisation.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List, Sequence


class ZipfSampler:
    """Sample ranks ``0..n-1`` with probability proportional to
    ``1 / (rank + 1) ** exponent``.

    Rank 0 is the hottest item.  The cumulative weights are precomputed
    once, so each draw is one uniform variate plus a binary search.
    """

    def __init__(self, n: int, exponent: float = 1.0):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        total = 0.0
        self._cumulative: List[float] = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total

    def probability(self, rank: int) -> float:
        """The exact sampling probability of *rank* (for sanity tests)."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank {rank} out of range 0..{self.n - 1}")
        return (1.0 / (rank + 1) ** self.exponent) / self._total

    def sample(self, rng: random.Random) -> int:
        return bisect_left(self._cumulative, rng.random() * self._total)

    def sample_many(self, rng: random.Random, k: int) -> List[int]:
        return [self.sample(rng) for _ in range(k)]


def poisson_arrivals(rate_hz: float, duration_s: float,
                     rng: random.Random, *,
                     start_s: float = 0.0) -> List[float]:
    """Arrival times (seconds) of a Poisson process on
    ``[start_s, start_s + duration_s)``.
    """
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz}")
    if duration_s < 0:
        raise ValueError(f"duration_s must be >= 0, got {duration_s}")
    times: List[float] = []
    t = start_s
    end = start_s + duration_s
    while True:
        t += rng.expovariate(rate_hz)
        if t >= end:
            return times
        times.append(t)


def bursty_arrivals(base_hz: float, burst_hz: float, period_s: float,
                    burst_fraction: float, duration_s: float,
                    rng: random.Random) -> List[float]:
    """On/off modulated Poisson arrivals over ``[0, duration_s)``.

    Each period of ``period_s`` seconds opens with a burst window of
    ``burst_fraction * period_s`` seconds at ``burst_hz``, then relaxes
    to ``base_hz`` for the remainder.  Segments are generated in order,
    so the output is sorted and fully determined by *rng*.
    """
    if not 0.0 <= burst_fraction <= 1.0:
        raise ValueError(
            f"burst_fraction must be in [0, 1], got {burst_fraction}")
    if period_s <= 0:
        raise ValueError(f"period_s must be positive, got {period_s}")
    times: List[float] = []
    segment_start = 0.0
    while segment_start < duration_s:
        burst_end = min(segment_start + burst_fraction * period_s,
                        duration_s)
        if burst_end > segment_start and burst_hz > 0:
            times.extend(poisson_arrivals(
                burst_hz, burst_end - segment_start, rng,
                start_s=segment_start))
        period_end = min(segment_start + period_s, duration_s)
        if period_end > burst_end and base_hz > 0:
            times.extend(poisson_arrivals(
                base_hz, period_end - burst_end, rng, start_s=burst_end))
        segment_start += period_s
    return times


def interleave_sorted(streams: Sequence[Sequence[float]]) -> List[float]:
    """Merge already-sorted arrival streams into one sorted timeline."""
    merged: List[float] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort()
    return merged
