"""Trace-driven load generation, chaos, and SLO gating for the serving stack.

The package closes the loop the ROADMAP calls the serving-side perf
floor: :mod:`repro.loadgen.traces` synthesizes reproducible multi-tenant
workload traces from the corpus seams (Zipf scene popularity, bursty
arrivals, tenant churn), :mod:`repro.loadgen.driver` replays a trace
against a live ``repro serve`` / ``repro route`` topology through the
async client, :mod:`repro.loadgen.chaos` SIGKILLs backends mid-burst,
and :mod:`repro.loadgen.slo` turns the measured phases into a
``BENCH_serve.json`` report with declared SLOs and a ``--check``
regression gate — the exact shape ``BENCH_core.json`` gives the engine
side.  ``repro loadgen`` (see :mod:`repro.cli`) drives the identical
code path from the CLI, the benchmarks, and CI.
"""

from repro.loadgen.arrivals import ZipfSampler, bursty_arrivals, poisson_arrivals
from repro.loadgen.chaos import ChaosPlan
from repro.loadgen.driver import DriverConfig, replay_trace
from repro.loadgen.slo import SLO, SloAccountant, build_report, check_regression
from repro.loadgen.traces import Trace, TraceSpec, generate_trace, load_trace, trace_digest

__all__ = [
    "ZipfSampler",
    "poisson_arrivals",
    "bursty_arrivals",
    "ChaosPlan",
    "DriverConfig",
    "replay_trace",
    "SLO",
    "SloAccountant",
    "build_report",
    "check_regression",
    "Trace",
    "TraceSpec",
    "generate_trace",
    "load_trace",
    "trace_digest",
]
