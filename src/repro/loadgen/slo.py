"""SLO declarations, latency/error accounting, and the serve-side gate.

The accountant keeps **raw samples** per phase.  That is deliberate:
merged-window percentiles computed from summaries are approximations
(the router's stats merge has to conservatively max them), but the load
harness owns every sample it measured, so a p99 over any union of
phases is an exact order statistic — and the unit suite asserts the
merged computation equals a brute-force recompute over the
concatenation.

:func:`build_report` turns an accountant plus trace/topology metadata
into the ``BENCH_serve.json`` document; :func:`check_regression` is the
``--check`` gate CI runs against the committed copy, mirroring
``repro.bench.core_bench`` (non-blocking job, >25% p95 regression
fails).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.errors import ReproError

SCHEMA = "bench-serve/v1"


class SloError(ReproError):
    """A malformed SLO declaration or report."""


def percentile(samples: Sequence[float], fraction: float) -> Optional[float]:
    """The *fraction*-quantile of *samples* as an exact order statistic.

    Same convention as the server's live ``LatencyWindow``: sort, index
    ``min(int(fraction * n), n - 1)``.  ``None`` on no samples.
    """
    if not samples:
        return None
    if not 0.0 <= fraction <= 1.0:
        raise SloError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]


@dataclass
class PhaseAccount:
    """Everything measured for one phase."""

    name: str
    latencies_ms: List[float] = field(default_factory=list)  # ok requests
    errors: int = 0
    error_codes: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    completions: int = 0            # ok "complete" ops (hit-rate base)
    retries: int = 0                # overload backoffs that later succeeded
    degraded: int = 0               # last-known-good answers (stale, honest)
    #: Budget fast-fails (504 ``deadline_exceeded``): the stack *shed on
    #: time* rather than failing — counted in ``requests`` but kept out
    #: of ``errors``/``error_rate`` so chaos runs can tell deliberate
    #: sheds from broken serving.
    deadline_exceeded: int = 0

    @property
    def requests(self) -> int:
        return len(self.latencies_ms) + self.errors + self.deadline_exceeded

    @property
    def error_rate(self) -> float:
        """Fraction of requests that failed; 0.0 for an empty phase.

        The zero-request convention matters for error budgets: a phase
        that never ran consumed none of its budget — it must neither
        fail (0/0 is not 100% errors) nor divide by zero.  Deadline
        sheds are in the denominator (they were requests) but not the
        numerator (the deadline contract was honoured).
        """
        total = self.requests
        return self.errors / total if total else 0.0

    @property
    def cache_hit_rate(self) -> Optional[float]:
        if not self.completions:
            return None
        return self.cache_hits / self.completions

    def snapshot(self) -> dict:
        def _r(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value, 3)

        latencies = self.latencies_ms
        return {
            "requests": self.requests,
            "ok": len(latencies),
            "errors": self.errors,
            "error_rate": round(self.error_rate, 5),
            "error_codes": dict(sorted(self.error_codes.items())),
            "retries": self.retries,
            "cache_hits": self.cache_hits,
            "completions": self.completions,
            "degraded": self.degraded,
            "deadline_exceeded": self.deadline_exceeded,
            "cache_hit_rate": _r(self.cache_hit_rate),
            "p50_ms": _r(percentile(latencies, 0.50)),
            "p95_ms": _r(percentile(latencies, 0.95)),
            "p99_ms": _r(percentile(latencies, 0.99)),
            "mean_ms": _r(sum(latencies) / len(latencies)
                          if latencies else None),
            "max_ms": _r(max(latencies) if latencies else None),
        }


class SloAccountant:
    """Per-phase accounting with exact merged percentiles."""

    def __init__(self):
        self._phases: Dict[str, PhaseAccount] = {}

    def phase(self, name: str) -> PhaseAccount:
        account = self._phases.get(name)
        if account is None:
            account = self._phases[name] = PhaseAccount(name)
        return account

    def phases(self) -> List[PhaseAccount]:
        return list(self._phases.values())

    def record_ok(self, phase: str, latency_ms: float, *,
                  completion: bool = False, cache_hit: bool = False,
                  degraded: bool = False, retries: int = 0) -> None:
        account = self.phase(phase)
        account.latencies_ms.append(latency_ms)
        account.retries += retries
        if completion:
            account.completions += 1
            if cache_hit:
                account.cache_hits += 1
            if degraded:
                account.degraded += 1

    def record_error(self, phase: str, code: str, *,
                     retries: int = 0) -> None:
        account = self.phase(phase)
        account.errors += 1
        account.retries += retries
        account.error_codes[code] = account.error_codes.get(code, 0) + 1

    def record_deadline(self, phase: str, *, retries: int = 0) -> None:
        """One budget fast-fail: shed on time, not failed."""
        account = self.phase(phase)
        account.deadline_exceeded += 1
        account.retries += retries

    def merged(self, names: Optional[Iterable[str]] = None) -> PhaseAccount:
        """One account over the union of *names* (default: every phase).

        Raw samples are concatenated, so percentiles of the merged
        account are exact over the union — no summary-merge
        approximation.
        """
        selected = (self._phases.values() if names is None else
                    [self._phases[name] for name in names
                     if name in self._phases])
        merged = PhaseAccount("merged")
        for account in selected:
            merged.latencies_ms.extend(account.latencies_ms)
            merged.errors += account.errors
            merged.cache_hits += account.cache_hits
            merged.completions += account.completions
            merged.retries += account.retries
            merged.degraded += account.degraded
            merged.deadline_exceeded += account.deadline_exceeded
            for code, count in account.error_codes.items():
                merged.error_codes[code] = (
                    merged.error_codes.get(code, 0) + count)
        return merged


# -- SLO declarations ---------------------------------------------------------


@dataclass(frozen=True)
class SLO:
    """One declared objective over one or more phases.

    ``phases=()`` means "every phase merged".  Latency targets compare
    against the exact merged percentile; ``error_budget`` is the maximum
    tolerated error *fraction* over the merged requests; ``min_hit_rate``
    asserts warmness (the recovery SLO's teeth after a chaos kill).
    """

    name: str
    phases: tuple = ()
    p50_ms: Optional[float] = None
    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    error_budget: float = 0.01
    min_hit_rate: Optional[float] = None

    def to_doc(self) -> dict:
        return {"name": self.name, "phases": list(self.phases),
                "p50_ms": self.p50_ms, "p95_ms": self.p95_ms,
                "p99_ms": self.p99_ms, "error_budget": self.error_budget,
                "min_hit_rate": self.min_hit_rate}


@dataclass(frozen=True)
class SloVerdict:
    slo: SLO
    ok: bool
    failures: tuple
    measured: dict

    def to_doc(self) -> dict:
        return {"slo": self.slo.to_doc(), "ok": self.ok,
                "failures": list(self.failures),
                "measured": self.measured}


def evaluate_slos(accountant: SloAccountant,
                  slos: Sequence[SLO]) -> List[SloVerdict]:
    verdicts = []
    for slo in slos:
        merged = accountant.merged(slo.phases or None)
        snapshot = merged.snapshot()
        failures: List[str] = []
        for target_name in ("p50_ms", "p95_ms", "p99_ms"):
            target = getattr(slo, target_name)
            measured = snapshot[target_name]
            if target is None:
                continue
            if measured is None:
                # Latency targets over zero samples are vacuous only if
                # the error budget also passes (an all-error phase has no
                # latency samples, and must not sneak past its SLO).
                continue
            if measured > target:
                failures.append(f"{target_name} {measured:.1f} ms exceeds "
                                f"target {target:.1f} ms")
        if merged.error_rate > slo.error_budget:
            failures.append(
                f"error rate {merged.error_rate:.4f} exceeds budget "
                f"{slo.error_budget:.4f} "
                f"({merged.errors}/{merged.requests} requests)")
        if slo.min_hit_rate is not None:
            hit_rate = merged.cache_hit_rate
            if hit_rate is None or hit_rate < slo.min_hit_rate:
                failures.append(
                    f"cache hit rate "
                    f"{'n/a' if hit_rate is None else f'{hit_rate:.3f}'} "
                    f"below required {slo.min_hit_rate:.3f}")
        verdicts.append(SloVerdict(slo=slo, ok=not failures,
                                   failures=tuple(failures),
                                   measured=snapshot))
    return verdicts


#: The declared serving SLOs.  Latency targets are generous on purpose —
#: like ``BENCH_core.json`` the measured report carries the real
#: trajectory and the --check gate catches regressions; the SLOs bound
#: outright failure (editor keystroke budget blown, error budget burnt,
#: cold recovery after chaos).
DEFAULT_SLOS: tuple = (
    SLO("steady-latency", phases=("steady",), p95_ms=2000.0,
        error_budget=0.01),
    SLO("burst-latency", phases=("burst",), p99_ms=10000.0,
        error_budget=0.05),
    SLO("whole-run-errors", phases=(), error_budget=0.02),
    SLO("warm-recovery", phases=("recovery",), error_budget=0.0,
        min_hit_rate=0.99),
)


# -- the BENCH_serve.json document -------------------------------------------


def build_report(accountant: SloAccountant, *, trace_doc: dict,
                 trace_digest: str, topology: dict,
                 chaos: Optional[dict] = None,
                 slos: Sequence[SLO] = DEFAULT_SLOS) -> dict:
    """The ``BENCH_serve.json`` document for one replay."""
    verdicts = evaluate_slos(accountant, slos)
    phases = {account.name: account.snapshot()
              for account in accountant.phases()}
    overall = accountant.merged().snapshot()
    p95s = [snapshot["p95_ms"] for snapshot in phases.values()
            if snapshot["p95_ms"] is not None]
    report = {
        "schema": SCHEMA,
        "protocol": {
            "spec": trace_doc.get("spec", {}),
            "trace_digest": trace_digest,
            "scenes": len(trace_doc.get("scenes", {})),
            "events": len(trace_doc.get("events", [])),
            "topology": topology,
        },
        "phases": phases,
        "overall": overall,
        "summary": {
            "p95_ms_sum": round(sum(p95s), 2) if p95s else None,
            "overall_p95_ms": overall["p95_ms"],
            "overall_error_rate": overall["error_rate"],
        },
        "slo": [verdict.to_doc() for verdict in verdicts],
        "slo_ok": all(verdict.ok for verdict in verdicts),
    }
    if chaos is not None:
        report["chaos"] = chaos
    return report


def check_regression(committed: dict, measured: dict,
                     max_regression: float = 0.25) -> List[str]:
    """Findings of *measured* against the *committed* report.

    The gate is the summed per-phase p95 over phases both reports
    carry — summing damps single-phase scheduling noise exactly the way
    ``core_bench`` sums rows — plus a hard failure when the measured run
    violated its own SLOs or killed fewer backends than the committed
    run (a chaos run that stopped killing is not comparable).
    """
    failures: List[str] = []
    committed_phases = committed.get("phases", {})
    measured_phases = measured.get("phases", {})
    common = [name for name in committed_phases
              if name in measured_phases
              and committed_phases[name].get("p95_ms") is not None
              and measured_phases[name].get("p95_ms") is not None]
    if not common:
        return [f"no comparable phases between committed "
                f"({sorted(committed_phases)}) and measured "
                f"({sorted(measured_phases)}) reports"]
    committed_sum = sum(committed_phases[name]["p95_ms"]
                        for name in common)
    measured_sum = sum(measured_phases[name]["p95_ms"] for name in common)
    allowed = committed_sum * (1.0 + max_regression)
    if measured_sum > allowed:
        failures.append(
            f"p95 regression: {measured_sum:.1f} ms summed over phases "
            f"{common} exceeds the committed {committed_sum:.1f} ms by "
            f"more than {max_regression:.0%} (limit {allowed:.1f} ms)")
    if not measured.get("slo_ok", False):
        broken = [verdict["slo"]["name"]
                  for verdict in measured.get("slo", [])
                  if not verdict.get("ok")]
        failures.append(f"measured run violated its declared SLOs: "
                        f"{broken}")
    committed_kills = (committed.get("chaos") or {}).get("kills", 0)
    measured_kills = (measured.get("chaos") or {}).get("kills", 0)
    if committed_kills and measured_kills < committed_kills:
        failures.append(
            f"chaos coverage shrank: committed report kills "
            f"{committed_kills} backend(s), measured run killed "
            f"{measured_kills}")
    return failures


def load_report(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SloError(f"cannot load report {path}: {exc}")
    if not isinstance(report, dict) or report.get("schema") != SCHEMA:
        raise SloError(f"{path} is not a {SCHEMA} report")
    return report
