"""Replays a workload trace against a live serving topology.

The driver speaks only the public wire — the same
:class:`~repro.server.client.AsyncCompletionClient` every other consumer
uses — so whatever it measures is what a real editor fleet would see:

* **open-loop phases** dispatch each event at its trace timestamp
  (scaled by ``time_scale``) without waiting for earlier responses, the
  arrival model under which queueing delay is visible;
* **closed-loop phases** run N workers issuing events back-to-back,
  the model for a bounded worker fleet (prime and recovery sweeps);
* completions go through :meth:`AsyncCompletionClient.complete_text`,
  so scene registration, eviction, and unknown-scene retry behave
  exactly as they do for production clients;
* 429s (admission control) are retried behind full-jitter exponential
  backoff (:func:`~repro.server.client.jittered_backoff_s` — a
  deterministic backoff would march the whole simulated fleet back in
  lockstep) and counted as ``retries`` — only exhausted retries burn
  error budget;
* ``degraded: true`` answers (the router's last-known-good fallback
  when every replica of a scene is down) count as successes but are
  tallied separately, so a chaos run can assert exactly how much
  fidelity it gave up;
* a :class:`~repro.loadgen.chaos.ChaosPlan` strikes inside the
  chaos-eligible phase, between dispatches, mid-burst by construction.

The result is an :class:`~repro.loadgen.slo.SloAccountant` full of raw
samples plus the topology's own closing stats — everything
``BENCH_serve.json`` needs.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.loadgen.chaos import ChaosController, ChaosOutcome, ChaosPlan
from repro.loadgen.slo import SloAccountant
from repro.loadgen.traces import Trace, TraceEvent
from repro.server.client import (AsyncCompletionClient, ClientConnectionError,
                                 DeadlineExceededError, OverloadedError,
                                 SceneNotFoundError, ServerError,
                                 jittered_backoff_s, wait_until_healthy)


@dataclass
class DriverConfig:
    """How to replay: where, how fast, and how hard to push."""

    host: str = "127.0.0.1"
    port: int = 8787
    #: Multiplies every trace timestamp (0.5 = replay twice as fast).
    time_scale: float = 1.0
    request_timeout: float = 120.0
    #: Cap on concurrently in-flight requests (open-loop phases); keeps
    #: a slow topology from accumulating unbounded tasks.
    max_in_flight: int = 128
    #: Admission-control (429) retries per request before it counts
    #: against the error budget; the delay before retry *k* is drawn
    #: uniformly from ``[0, min(cap, base * 2**k)]`` (full jitter).
    overload_retries: int = 4
    overload_backoff_s: float = 0.05
    overload_backoff_cap_s: float = 2.0
    chaos: Optional[ChaosPlan] = None
    #: Client-stamped end-to-end deadline (and budget) per completion.
    #: ``None`` replays without deadlines — the pre-PR-9 behaviour.  A
    #: ``deadline_exceeded`` answer lands in its own accountant bucket:
    #: the stack shed on time, it did not fail.
    deadline_ms: Optional[int] = None


@dataclass
class ReplayResult:
    """Everything one replay measured."""

    accountant: SloAccountant
    wall_seconds: float
    stats: Optional[dict] = None            # closing /v1/stats
    healthz: Optional[dict] = None          # closing /healthz
    chaos: Optional[ChaosOutcome] = None
    scene_ids: Dict[str, str] = field(default_factory=dict)

    @property
    def topology_doc(self) -> dict:
        """The report's ``topology`` section."""
        doc: dict = {"backends": None, "router": False}
        if self.healthz is not None:
            backends = self.healthz.get("backends")
            if backends is not None:
                doc["router"] = True
                doc["backends"] = len(backends)
                doc["restarts"] = sum(backend.get("restarts", 0)
                                      for backend in backends)
        return doc


async def _execute(event: TraceEvent, trace: Trace,
                   client: AsyncCompletionClient, config: DriverConfig,
                   accountant: SloAccountant,
                   scene_ids: Dict[str, str]) -> None:
    """Run one event, with bounded 429 backoff, into the accountant."""
    scene = trace.scenes[event.scene]
    retries = 0
    while True:
        start = time.perf_counter()
        try:
            if event.op == "register":
                response = await client.register_scene(scene["text"],
                                                       name=scene["name"])
                scene_ids[event.scene] = response["scene_id"]
                accountant.record_ok(
                    event.phase, (time.perf_counter() - start) * 1000.0,
                    retries=retries)
            elif event.op == "complete":
                response = await client.complete_text(
                    scene["text"], name=scene["name"], n=event.n,
                    deadline_ms=config.deadline_ms)
                scene_ids[event.scene] = response.get(
                    "scene_id", scene_ids.get(event.scene, ""))
                accountant.record_ok(
                    event.phase, (time.perf_counter() - start) * 1000.0,
                    completion=True,
                    cache_hit=bool(response.get("cache_hit")),
                    degraded=bool(response.get("degraded")),
                    retries=retries)
            elif event.op == "release":
                scene_id = scene_ids.get(event.scene)
                if scene_id is None:
                    scene_id = (await client.register_scene(
                        scene["text"], name=scene["name"]))["scene_id"]
                await client.release_scene(scene_id)
                scene_ids.pop(event.scene, None)
                accountant.record_ok(
                    event.phase, (time.perf_counter() - start) * 1000.0,
                    retries=retries)
            else:
                accountant.record_error(event.phase,
                                        f"bad_op:{event.op}")
            return
        except OverloadedError:
            if retries < config.overload_retries:
                await asyncio.sleep(jittered_backoff_s(
                    retries, base=config.overload_backoff_s,
                    cap=config.overload_backoff_cap_s))
                retries += 1
                continue
            accountant.record_error(event.phase, "overloaded",
                                    retries=retries)
            return
        except SceneNotFoundError:
            accountant.record_error(event.phase, "not_found",
                                    retries=retries)
            return
        except DeadlineExceededError:
            # The stack refused to serve a spent budget — the deadline
            # contract working, never retried, never an error.
            accountant.record_deadline(event.phase, retries=retries)
            return
        except ServerError as exc:
            accountant.record_error(event.phase, exc.code,
                                    retries=retries)
            return
        except (ClientConnectionError, asyncio.TimeoutError):
            accountant.record_error(event.phase, "connection",
                                    retries=retries)
            return


async def _strike(controller: ChaosController,
                  client: AsyncCompletionClient, phase: str,
                  event_index: int, accountant: SloAccountant,
                  config: DriverConfig) -> None:
    try:
        healthz = await client.healthz()
        controller.strike(healthz, phase=phase, event_index=event_index)
    except (ClientConnectionError, ServerError):
        # The front door itself is unreachable — that is an error the
        # in-flight requests will surface; don't crash the dispatcher.
        accountant.record_error(phase, "chaos_strike_failed")
        return
    if controller.plan.mode == "slow":
        # Schedule the SIGCONT: the stall window scales with the replay
        # clock so it covers a comparable slice of the burst at any
        # --time-scale.  resume_all is idempotent — the end-of-replay
        # sweep catches anything the timer missed.
        delay = max(0.0, controller.plan.stall_s * config.time_scale)
        asyncio.get_running_loop().call_later(delay,
                                              controller.resume_all)


async def _run_open_phase(phase_name: str, events: List[TraceEvent],
                          trace: Trace, client: AsyncCompletionClient,
                          config: DriverConfig,
                          accountant: SloAccountant,
                          scene_ids: Dict[str, str],
                          controller: Optional[ChaosController],
                          kill_indices: List[int]) -> None:
    loop = asyncio.get_running_loop()
    in_flight = asyncio.Semaphore(config.max_in_flight)
    tasks: List[asyncio.Task] = []
    phase_start = loop.time()

    async def _guarded(event: TraceEvent) -> None:
        async with in_flight:
            await _execute(event, trace, client, config, accountant,
                           scene_ids)

    kills = set(kill_indices)
    for index, event in enumerate(events):
        if controller is not None and index in kills:
            await _strike(controller, client, phase_name, index,
                          accountant, config)
        target = phase_start + (event.t_ms / 1000.0) * config.time_scale
        delay = target - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(_guarded(event)))
    if tasks:
        await asyncio.gather(*tasks)


async def _run_closed_phase(events: List[TraceEvent], workers: int,
                            trace: Trace, client: AsyncCompletionClient,
                            config: DriverConfig,
                            accountant: SloAccountant,
                            scene_ids: Dict[str, str]) -> None:
    queue: asyncio.Queue = asyncio.Queue()
    for event in events:
        queue.put_nowait(event)

    async def _worker() -> None:
        while True:
            try:
                event = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            await _execute(event, trace, client, config, accountant,
                           scene_ids)

    await asyncio.gather(*(_worker() for _ in range(max(1, workers))))


async def _await_chaos_recovery(client: AsyncCompletionClient, kills: int,
                                *, timeout_s: float = 30.0) -> None:
    """Poll ``/healthz`` until every kill has respawned and all backends
    report healthy, or the window closes (the report judges failure)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            health = await client.healthz()
        except (ClientConnectionError, ServerError):
            return                          # front door gone; report judges
        backends = health.get("backends") or []
        restarts = sum(backend.get("restarts", 0) for backend in backends)
        if restarts >= kills and all(backend.get("healthy")
                                     for backend in backends):
            return
        await asyncio.sleep(0.1)


async def replay_trace(trace: Trace, config: DriverConfig) -> ReplayResult:
    """Replay every phase of *trace*, in order, against the topology."""
    accountant = SloAccountant()
    scene_ids: Dict[str, str] = {}
    controller = (ChaosController(config.chaos)
                  if config.chaos is not None else None)
    started = time.perf_counter()
    async with AsyncCompletionClient(
            config.host, config.port,
            timeout=config.request_timeout) as client:
        await wait_until_healthy(client)
        for phase in trace.phases:
            events = trace.events_for(phase.name)
            if not events:
                continue
            kill_indices: List[int] = []
            if controller is not None and phase.chaos_eligible:
                kill_indices = config.chaos.kill_indices(len(events))
            if phase.mode == "open":
                await _run_open_phase(phase.name, events, trace, client,
                                      config, accountant, scene_ids,
                                      controller, kill_indices)
            else:
                if controller is not None and kill_indices:
                    # Closed-loop chaos phase: strike before the sweep.
                    await _strike(controller, client, phase.name, 0,
                                  accountant, config)
                await _run_closed_phase(events, phase.workers, trace,
                                        client, config, accountant,
                                        scene_ids)
        wall = time.perf_counter() - started

        if controller is not None and (controller.kills
                                       or controller.stalls):
            # Respawn is a background concern on the router (failover
            # serves the traffic); give it a bounded window to land so
            # the closing stats reflect recovery, not a race.  A timeout
            # is not an error here — the chaos report's ``recovered``
            # field carries the verdict.  Slow-mode stalls are resumed
            # first (idempotent belt-and-braces over the scheduled
            # SIGCONT) and recover by turning healthy, not restarting.
            controller.resume_all()
            await _await_chaos_recovery(client, controller.kills)

        stats: Optional[dict] = None
        healthz: Optional[dict] = None
        try:
            stats = await client.stats()
            healthz = await client.healthz()
        except (ClientConnectionError, ServerError):
            pass                            # report survives a dead topology

    chaos_outcome: Optional[ChaosOutcome] = None
    if controller is not None:
        router_stats = (stats or {}).get("router")
        journal_scenes = 0
        if router_stats is not None:
            journal_scenes = (router_stats.get("journal") or {}).get(
                "scenes", 0)
        chaos_outcome = ChaosOutcome(plan=config.chaos,
                                     controller=controller,
                                     router_stats=router_stats,
                                     journal_scenes=journal_scenes)
    return ReplayResult(accountant=accountant, wall_seconds=wall,
                        stats=stats, healthz=healthz, chaos=chaos_outcome,
                        scene_ids=scene_ids)
