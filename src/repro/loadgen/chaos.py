"""Chaos injection: strike a live backend mid-burst, then prove recovery.

The controller is deliberately dumb — it learns the topology the same
way any operator would (``GET /healthz``, which lists every backend with
its pid when the router supervises the process) and sends signals.  Two
fault modes:

* ``kill`` — ``SIGKILL``, the one signal a process cannot trap.  The
  router must notice the dead shard, respawn it once (not once per
  queued request), replay the journal, restore the snapshot, and keep
  answering.
* ``slow`` — ``SIGSTOP`` for ``stall_s`` seconds, then ``SIGCONT``.
  The gray failure: the process stays alive, its sockets keep
  accepting, in-flight requests (streams included) simply *stall* —
  breakers see no connection failure, so only deadline clamps, hedged
  retries and latency-outlier ejection can save the traffic.  Recovery
  means the stalled backend rejoins candidate ordering, with zero
  restarts expected.

Everything interesting happens in the serving stack; the driver's
recovery phase plus the SLO gates assert it all from the outside.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import ReproError


class ChaosError(ReproError):
    """Chaos was requested but cannot be delivered."""


@dataclass(frozen=True)
class ChaosPlan:
    """When and how hard to strike.

    ``at_fraction`` positions the kill inside the chaos-eligible phase
    (0.5 = halfway through its events) so the burst is genuinely
    mid-flight; ``kills`` > 1 strikes repeatedly, evenly spaced over the
    remaining events.  ``mode`` picks the fault: ``kill`` (SIGKILL, the
    crash PR 8 conquered) or ``slow`` (SIGSTOP for ``stall_s`` seconds,
    the gray failure — ``kills`` then counts stalls).
    """

    kills: int = 1
    at_fraction: float = 0.5
    seed: int = 2013
    mode: str = "kill"                      # "kill" | "slow"
    stall_s: float = 2.0                    # SIGSTOP hold (slow mode)

    def kill_indices(self, events_in_phase: int) -> List[int]:
        """Event indices (within the chaos phase) that trigger a strike."""
        if self.kills < 1 or events_in_phase < 1:
            return []
        first = min(int(self.at_fraction * events_in_phase),
                    events_in_phase - 1)
        if self.kills == 1:
            return [first]
        remaining = events_in_phase - first
        step = max(1, remaining // self.kills)
        return [min(first + index * step, events_in_phase - 1)
                for index in range(self.kills)]


@dataclass
class KillRecord:
    backend_id: str
    pid: int
    phase: str
    event_index: int
    at_monotonic: float

    def to_doc(self) -> dict:
        return {"backend_id": self.backend_id, "pid": self.pid,
                "phase": self.phase, "event_index": self.event_index}


@dataclass
class StallRecord:
    """One SIGSTOP delivered (and, eventually, its SIGCONT)."""

    backend_id: str
    pid: int
    phase: str
    event_index: int
    at_monotonic: float
    resumed: bool = False

    def to_doc(self) -> dict:
        return {"backend_id": self.backend_id, "pid": self.pid,
                "phase": self.phase, "event_index": self.event_index,
                "resumed": self.resumed}


class ChaosController:
    """Picks victims (deterministically, per plan seed) and strikes."""

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self.records: List[KillRecord] = []
        self.stall_records: List[StallRecord] = []
        self._rng = random.Random(plan.seed)

    @property
    def kills(self) -> int:
        return len(self.records)

    @property
    def stalls(self) -> int:
        return len(self.stall_records)

    @staticmethod
    def killable_backends(healthz: dict) -> List[dict]:
        """Backends the controller can strike: managed, with a pid."""
        backends = healthz.get("backends") or []
        return [backend for backend in backends
                if backend.get("managed") and backend.get("pid")]

    def strike(self, healthz: dict, *, phase: str, event_index: int):
        """Deliver one fault of the plan's mode to a managed backend."""
        if self.plan.mode == "slow":
            return self.stall(healthz, phase=phase,
                              event_index=event_index)
        victims = self.killable_backends(healthz)
        if not victims:
            raise ChaosError(
                "no managed backend with a pid to kill — chaos needs a "
                "router-supervised topology (repro route), not attached "
                "backends")
        victim = victims[self._rng.randrange(len(victims))]
        pid = int(victim["pid"])
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            # Already dead (e.g. crashed on its own); the respawn path is
            # exercised either way, so record the strike as delivered.
            pass
        except OSError as exc:
            raise ChaosError(f"cannot kill backend pid {pid}: {exc}")
        record = KillRecord(backend_id=str(victim.get("backend_id")),
                            pid=pid, phase=phase, event_index=event_index,
                            at_monotonic=time.monotonic())
        self.records.append(record)
        return record

    def stall(self, healthz: dict, *, phase: str,
              event_index: int) -> StallRecord:
        """SIGSTOP one managed backend (skipping ones already stalled).

        The victim keeps its sockets open and its pending work parked —
        the canonical gray failure.  :meth:`resume_all` (or the driver's
        scheduled SIGCONT) un-stalls it; a backend that died while
        stopped is simply recorded as resumed (nothing left to
        continue).
        """
        stalled = {record.pid for record in self.stall_records
                   if not record.resumed}
        victims = [victim for victim in self.killable_backends(healthz)
                   if int(victim["pid"]) not in stalled]
        if not victims:
            raise ChaosError(
                "no managed backend with a pid to stall — chaos needs a "
                "router-supervised topology (repro route) with an "
                "un-stalled backend left")
        victim = victims[self._rng.randrange(len(victims))]
        pid = int(victim["pid"])
        try:
            os.kill(pid, signal.SIGSTOP)
        except ProcessLookupError:
            pass                            # died first; stall moot
        except OSError as exc:
            raise ChaosError(f"cannot stall backend pid {pid}: {exc}")
        record = StallRecord(backend_id=str(victim.get("backend_id")),
                             pid=pid, phase=phase,
                             event_index=event_index,
                             at_monotonic=time.monotonic())
        self.stall_records.append(record)
        return record

    def resume_all(self) -> int:
        """SIGCONT every outstanding stall; idempotent.  Returns how
        many were resumed by this call."""
        resumed = 0
        for record in self.stall_records:
            if record.resumed:
                continue
            try:
                os.kill(record.pid, signal.SIGCONT)
            except (ProcessLookupError, OSError):
                pass                        # gone; nothing to continue
            record.resumed = True
            resumed += 1
        return resumed

    def report(self, router_stats: Optional[dict],
               journal_scenes: int) -> dict:
        """The report's ``chaos`` section, including recovery evidence.

        ``reregistration_storm_bounded`` is the "no retry storm" check:
        after a kill, the router re-teaches scenes one ``unknown scene``
        retry at a time, so the re-registration count across the run
        must stay within the journaled scene population per kill — if
        each query of each scene re-registered, this blows up
        immediately.
        """
        section = {
            "mode": self.plan.mode,
            "kills": self.kills,
            "records": [record.to_doc() for record in self.records],
            "stalls": self.stalls,
            "stall_records": [record.to_doc()
                              for record in self.stall_records],
            "resumed": (all(record.resumed
                            for record in self.stall_records)
                        if self.stall_records else None),
            "observed_restarts": None,
            "observed_reregistrations": None,
            "observed_failovers": None,
            "degraded_served": None,
            "retry_budget": None,
            "observed_hedges": None,
            "observed_deadline_exceeded": None,
            "observed_slow_timeouts": None,
            "observed_ejections": None,
            "observed_rebalances": None,
            "reregistration_storm_bounded": None,
            "recovered": None,
        }
        if router_stats is not None:
            restarts = router_stats.get("restarts", 0)
            reregistrations = router_stats.get("reregistrations", 0)
            section["observed_restarts"] = restarts
            section["observed_reregistrations"] = reregistrations
            section["observed_failovers"] = router_stats.get("failovers")
            section["degraded_served"] = router_stats.get(
                "degraded_served")
            section["retry_budget"] = router_stats.get("retry_budget")
            section["observed_hedges"] = router_stats.get("hedges")
            section["observed_deadline_exceeded"] = router_stats.get(
                "deadline_exceeded")
            section["observed_slow_timeouts"] = router_stats.get(
                "slow_timeouts")
            section["observed_ejections"] = router_stats.get("ejections")
            section["observed_rebalances"] = router_stats.get(
                "rebalances")
            bound = max(1, self.kills + self.stalls) * max(journal_scenes,
                                                           1)
            section["reregistration_storm_bounded"] = (
                reregistrations <= bound)
            if self.plan.mode == "slow":
                # A stall recovers by *rejoining*, not respawning: every
                # SIGSTOP got its SIGCONT.  (Restarts stay visible above
                # — a stalled backend that died anyway shows up there.)
                section["recovered"] = (self.stalls == 0
                                        or bool(section["resumed"]))
            else:
                section["recovered"] = (self.kills == 0
                                        or restarts >= self.kills)
        return section


@dataclass
class ChaosOutcome:
    """What the driver hands the report builder."""

    plan: ChaosPlan
    controller: ChaosController
    router_stats: Optional[dict] = None
    journal_scenes: int = 0
    extra: dict = field(default_factory=dict)

    def to_doc(self) -> dict:
        doc = self.controller.report(self.router_stats,
                                     self.journal_scenes)
        doc.update(self.extra)
        return doc
